//! The serving engine: a bounded request queue, a dynamic batcher, and
//! the plan cache, composed into a long-running throughput pipeline.
//!
//! ```text
//!  clients ──▶ ServeQueue (bounded, admission control)
//!                  │ pop_batch(max_batch, batch_window)
//!                  ▼
//!             worker thread ──▶ PlanCache (search + transforms once)
//!                  │                 │ Arc<PlanEntry>
//!                  ▼                 ▼
//!             concat_frames ──▶ batched executor / fused runner
//!                  │
//!                  ▼
//!             per-frame split ──▶ response slots ──▶ Ticket::wait
//! ```
//!
//! The one-shot CLI pays strategy search and Winograd filter transforms
//! on every invocation. The engine pays them once — the first request
//! for a configuration builds a [`PlanEntry`]; every later request is a
//! hash lookup (`serve.plan_hits`) plus a batched kernel invocation that
//! amortizes packing across coalesced frames.
//!
//! Failure is contained per batch: execution runs under
//! `catch_unwind`, so a poisoned request fails its own batch's tickets
//! with an error while the engine keeps serving (the lenient-mode
//! kernel fallback ladder underneath degrades Winograd → direct before
//! anything panics out). Overload is a typed, synchronous rejection at
//! [`ServeEngine::submit`] — no silent queue growth.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use winofuse_conv::tensor::Tensor;
use winofuse_core::cache::{PlanCache, PlanEntry, PlanKey};
use winofuse_core::framework::Framework;
use winofuse_model::runtime::NetworkWeights;
use winofuse_model::{DataType, Network};
use winofuse_runtime::faults::FaultMode;
use winofuse_runtime::serve::ServeQueue;
use winofuse_telemetry::Telemetry;

use crate::TaskError;

/// Batching and admission-control knobs for a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most frames coalesced into one batched invocation.
    pub max_batch: usize,
    /// How long the batcher waits for followers after the first request
    /// of a batch arrives.
    pub batch_window: Duration,
    /// Queue capacity; pushes beyond it are rejected with
    /// [`ServeError::Overloaded`](winofuse_runtime::serve::ServeError).
    pub queue_depth: usize,
    /// Feature-map transfer budget for the cached strategy search.
    pub budget_bytes: u64,
    /// Precision axis of the plan key.
    pub precision: DataType,
    /// Execute batches on the fused-group runner (conv body, per-group
    /// DRAM reconciliation) instead of the batched layer executor.
    pub fused: bool,
    /// Fault handling for the execution substrate; lenient degrades a
    /// faulty Winograd kernel to direct instead of failing the batch.
    pub fault_mode: FaultMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_depth: 64,
            budget_bytes: 8 * 1024 * 1024,
            precision: DataType::Fixed16,
            fused: false,
            fault_mode: FaultMode::Lenient,
        }
    }
}

/// One-slot rendezvous between the worker and a waiting client.
///
/// Both sides recover from mutex poisoning: the slot holds a single
/// `Option` that is written exactly once, so there is no multi-step
/// invariant a mid-update panic could leave half-applied. A panicking
/// client must not stop the worker from answering, and a batch panic
/// (already contained by `catch_unwind` in [`process_batch`]) must not
/// turn every later [`Ticket::wait`] into a poison panic.
struct ResponseSlot {
    result: Mutex<Option<Result<Tensor<f32>, String>>>,
    cond: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            result: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    fn lock_result(&self) -> MutexGuard<'_, Option<Result<Tensor<f32>, String>>> {
        self.result.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fill(&self, r: Result<Tensor<f32>, String>) {
        *self.lock_result() = Some(r);
        self.cond.notify_all();
    }

    fn wait(&self) -> Result<Tensor<f32>, String> {
        let mut guard = self.lock_result();
        loop {
            match guard.take() {
                Some(r) => return r,
                None => {
                    guard = self
                        .cond
                        .wait(guard)
                        .unwrap_or_else(PoisonError::into_inner)
                }
            }
        }
    }
}

/// A pending request's handle; [`Ticket::wait`] blocks until the batch
/// carrying the request completes (or fails).
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the engine answers this request.
    ///
    /// # Errors
    ///
    /// [`TaskError::Other`] carrying the batch's failure message when the
    /// request's batch errored or panicked.
    pub fn wait(self) -> Result<Tensor<f32>, TaskError> {
        self.slot.wait().map_err(TaskError::Other)
    }
}

/// One queued inference request.
struct Request {
    input: Tensor<f32>,
    enqueued: Instant,
    slot: Arc<ResponseSlot>,
}

/// Everything the worker thread needs, shared with the front end.
struct Shared {
    fw: Framework,
    net: Arc<Network>,
    weights: Arc<NetworkWeights>,
    key: PlanKey,
    cache: PlanCache,
    telemetry: Telemetry,
    cfg: ServeConfig,
}

impl Shared {
    fn plan(&self) -> Result<Arc<PlanEntry>, TaskError> {
        self.cache
            .get_or_build(&self.key, || {
                self.fw.plan_entry(
                    Arc::clone(&self.net),
                    Arc::clone(&self.weights),
                    self.cfg.budget_bytes,
                    self.cfg.precision,
                )
            })
            .map_err(TaskError::from)
    }

    /// Runs one coalesced batch through the cached plan. The error side
    /// is a plain message: it fans out to every ticket in the batch.
    fn execute(&self, entry: &PlanEntry, batched: &Tensor<f32>) -> Result<Tensor<f32>, String> {
        if self.cfg.fused {
            entry
                .runner
                .run_batch(batched)
                .map(|r| r.output)
                .map_err(|e| format!("fused batch failed: {e}"))
        } else {
            let exec = entry
                .executor()
                .map_err(|e| format!("executor setup failed: {e}"))?
                .with_threads(self.fw.threads())
                .with_telemetry(self.telemetry.clone())
                .with_fault_mode(self.cfg.fault_mode);
            exec.run(batched).map_err(|e| format!("batch failed: {e}"))
        }
    }
}

/// The long-running serving pipeline. Submit from any thread; one worker
/// coalesces, executes, and answers.
pub struct ServeEngine {
    queue: Arc<ServeQueue<Request>>,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts the engine: spawns the batching worker and returns the
    /// submission front end. `fw` supplies the device, policy, thread
    /// count, and fault injector the cached plans are built with;
    /// `telemetry` receives the serve counters and latency histograms.
    ///
    /// The plan cache starts cold — call [`ServeEngine::warm`] to pay
    /// the first build eagerly, or let the first request pay it.
    ///
    /// # Errors
    ///
    /// [`TaskError::Model`] when the network has no valid shape chain.
    pub fn start(
        fw: Framework,
        net: Network,
        weights: NetworkWeights,
        telemetry: Telemetry,
        cfg: ServeConfig,
    ) -> Result<Self, TaskError> {
        net.shapes()?;
        let key = fw.plan_key(&net, &weights, cfg.budget_bytes, cfg.precision);
        let shared = Arc::new(Shared {
            cache: PlanCache::new(telemetry.clone()),
            net: Arc::new(net),
            weights: Arc::new(weights),
            key,
            telemetry,
            fw,
            cfg,
        });
        let queue = Arc::new(ServeQueue::bounded(shared.cfg.queue_depth));
        let worker = {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("winofuse-serve".into())
                .spawn(move || worker_loop(&queue, &shared))
                .map_err(|e| TaskError::Other(format!("cannot spawn serve worker: {e}")))?
        };
        Ok(ServeEngine {
            queue,
            shared,
            worker: Some(worker),
        })
    }

    /// Builds (or confirms) the cached plan for the configured key, so
    /// the first real request doesn't pay strategy search.
    ///
    /// # Errors
    ///
    /// Whatever [`Framework::optimize`] or plan lowering fails with.
    pub fn warm(&self) -> Result<(), TaskError> {
        self.shared.plan().map(|_| ())
    }

    /// Enqueues one frame for inference. Non-blocking: returns a
    /// [`Ticket`] immediately, or a typed rejection when the queue is at
    /// capacity ([`TaskError::Serve`], exit code 9 at the CLI).
    ///
    /// # Errors
    ///
    /// [`TaskError::Model`] when `input` is not a single frame of the
    /// network's input shape; [`TaskError::Serve`] when the queue is full
    /// or the engine is shutting down.
    pub fn submit(&self, input: Tensor<f32>) -> Result<Ticket, TaskError> {
        let want = self.shared.net.input_shape();
        if input.n() != 1
            || input.c() != want.channels
            || input.h() != want.height
            || input.w() != want.width
        {
            return Err(TaskError::Model(winofuse_model::ModelError::Execution(
                format!(
                    "request tensor {}x{}x{}x{} does not match network input 1x{want}",
                    input.n(),
                    input.c(),
                    input.h(),
                    input.w()
                ),
            )));
        }
        self.shared.telemetry.counter("serve.requests").incr();
        let slot = Arc::new(ResponseSlot::new());
        let req = Request {
            input,
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        };
        match self.queue.push(req) {
            Ok(_depth) => Ok(Ticket { slot }),
            Err((e, _)) => {
                self.shared.telemetry.counter("serve.rejected").incr();
                Err(TaskError::Serve(e))
            }
        }
    }

    /// Runs `frames` as one batch through the plan cache synchronously,
    /// bypassing the queue — the deterministic entry point the
    /// bit-identity tests and the serve benchmark use. Shares every
    /// downstream stage (cache, concat, batched execution, split) with
    /// the queued path.
    ///
    /// # Errors
    ///
    /// Plan-build errors as in [`ServeEngine::warm`]; execution errors as
    /// [`TaskError::Other`].
    pub fn run_batch_now(&self, frames: &[Tensor<f32>]) -> Result<Vec<Tensor<f32>>, TaskError> {
        let entry = self.shared.plan()?;
        let batched = Tensor::concat_frames(frames)?;
        let out = self
            .shared
            .execute(&entry, &batched)
            .map_err(TaskError::Other)?;
        Ok((0..out.n()).map(|b| out.frame(b)).collect())
    }

    /// Current queue depth (requests admitted but not yet batched).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Plan-cache hits so far (`serve.plan_hits`).
    pub fn plan_hits(&self) -> u64 {
        self.shared.cache.hits()
    }

    /// Plan-cache misses so far (`serve.plan_misses`).
    pub fn plan_misses(&self) -> u64 {
        self.shared.cache.misses()
    }

    /// Graceful drain: stops admission, lets the worker finish every
    /// queued request, and joins it.
    ///
    /// # Errors
    ///
    /// [`TaskError::Other`] if the worker thread itself panicked (batch
    /// panics are contained and do *not* trigger this).
    pub fn shutdown(mut self) -> Result<(), TaskError> {
        self.queue.close();
        match self.worker.take() {
            Some(h) => h
                .join()
                .map_err(|_| TaskError::Other("serve worker panicked".into())),
            None => Ok(()),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// The batching loop: block for a batch, answer it, repeat until the
/// queue is closed and drained.
fn worker_loop(queue: &ServeQueue<Request>, shared: &Shared) {
    while let Some(batch) = queue.pop_batch(shared.cfg.max_batch, shared.cfg.batch_window) {
        process_batch(shared, batch);
    }
}

fn process_batch(shared: &Shared, batch: Vec<Request>) {
    let t = &shared.telemetry;
    let started = Instant::now();
    t.counter("serve.batches").incr();
    t.histogram("serve.batch_size").record(batch.len() as u64);
    let mut frames = Vec::with_capacity(batch.len());
    let mut slots = Vec::with_capacity(batch.len());
    for r in batch {
        t.histogram("serve.queue_wait_us")
            .record(started.duration_since(r.enqueued).as_micros() as u64);
        frames.push(r.input);
        slots.push(r.slot);
    }
    let fail_all = |msg: String| {
        t.counter("serve.failed").add(slots.len() as u64);
        for s in &slots {
            s.fill(Err(msg.clone()));
        }
    };
    let entry = match shared.plan() {
        Ok(e) => e,
        Err(e) => {
            return fail_all(format!(
                "plan build failed: {}",
                crate::error::render_chain(&e)
            ))
        }
    };
    let batched = match Tensor::concat_frames(&frames) {
        Ok(b) => b,
        Err(e) => return fail_all(format!("batch assembly failed: {e}")),
    };
    // Panic isolation: a poisoned request takes down its own batch's
    // tickets, never the worker. (Kernel-level faults are already caught
    // below this by the lenient fallback ladder; this is the backstop.)
    let result = catch_unwind(AssertUnwindSafe(|| shared.execute(&entry, &batched)));
    t.histogram("serve.batch_exec_us")
        .record(started.elapsed().as_micros() as u64);
    match result {
        Ok(Ok(out)) => {
            t.counter("serve.completed").add(slots.len() as u64);
            for (b, s) in slots.iter().enumerate() {
                s.fill(Ok(out.frame(b)));
            }
        }
        Ok(Err(msg)) => fail_all(msg),
        Err(panic) => {
            t.counter("serve.batch_panics").incr();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            fail_all(format!("batch panicked: {msg}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winofuse_conv::tensor::random_tensor;
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::zoo;

    fn engine(telemetry: Telemetry, cfg: ServeConfig) -> ServeEngine {
        let net = zoo::small_test_net().conv_body().unwrap();
        let weights = NetworkWeights::random(&net, 7).unwrap();
        let fw = Framework::new(FpgaDevice::zc706())
            .with_threads(1)
            .with_telemetry(telemetry.clone());
        ServeEngine::start(fw, net, weights, telemetry, cfg).unwrap()
    }

    fn frame(seed: u64) -> Tensor<f32> {
        random_tensor(1, 3, 32, 32, seed)
    }

    #[test]
    fn queued_requests_match_the_synchronous_path() {
        let t = Telemetry::enabled();
        let eng = engine(t.clone(), ServeConfig::default());
        eng.warm().unwrap();
        let tickets: Vec<Ticket> = (0..4).map(|i| eng.submit(frame(i)).unwrap()).collect();
        let queued: Vec<Tensor<f32>> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let frames: Vec<Tensor<f32>> = (0..4).map(frame).collect();
        let sync = eng.run_batch_now(&frames).unwrap();
        for (q, s) in queued.iter().zip(&sync) {
            assert_eq!(
                q.as_slice(),
                s.as_slice(),
                "queued vs sync must be bit-identical"
            );
        }
        let s = t.summary();
        assert_eq!(s.counter("serve.requests"), 4);
        assert_eq!(s.counter("serve.completed"), 4);
        assert_eq!(
            s.counter("serve.plan_misses"),
            1,
            "warm() pays the only build"
        );
        assert!(s.counter("serve.plan_hits") >= 1);
        eng.shutdown().unwrap();
    }

    #[test]
    fn overload_is_a_typed_rejection() {
        // A zero-width window and batch 1 keep the worker busy enough to
        // fill a depth-1 queue deterministically: submit while holding
        // the worker on an earlier batch.
        let cfg = ServeConfig {
            queue_depth: 1,
            max_batch: 1,
            batch_window: Duration::from_millis(0),
            ..ServeConfig::default()
        };
        let t = Telemetry::enabled();
        let eng = engine(t.clone(), cfg);
        eng.warm().unwrap();
        // Saturate: keep pushing until a rejection surfaces. The queue
        // has capacity 1, so at most 2 in flight before the third push
        // races the worker; retry until the race loses.
        let mut pending = Vec::new();
        let mut rejected = None;
        for i in 0..200 {
            match eng.submit(frame(i)) {
                Ok(ticket) => pending.push(ticket),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let e = rejected.expect("a depth-1 queue must eventually reject");
        assert_eq!(e.exit_code(), 9);
        assert!(e.to_string().contains("serve"));
        assert!(t.summary().counter("serve.rejected") >= 1);
        for ticket in pending {
            ticket.wait().unwrap();
        }
        eng.shutdown().unwrap();
    }

    #[test]
    fn shape_mismatch_is_rejected_at_submit() {
        let eng = engine(Telemetry::enabled(), ServeConfig::default());
        let bad = random_tensor(1, 3, 16, 16, 1);
        assert!(eng.submit(bad).is_err());
        let batched = frame(1).repeat_frames(2);
        assert!(eng.submit(batched).is_err(), "submit takes single frames");
        eng.shutdown().unwrap();
    }

    #[test]
    fn response_slot_survives_a_poisoning_client() {
        // A client thread panics while holding the slot lock; the worker
        // must still be able to fill it and a later waiter must still get
        // the answer instead of a PoisonError panic.
        let slot = Arc::new(ResponseSlot::new());
        let poisoner = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let _guard = slot.lock_result();
                panic!("injected fault while holding the slot lock");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner must panic");
        assert!(slot.result.is_poisoned(), "lock must actually be poisoned");
        slot.fill(Err("answer after poisoning".into()));
        assert_eq!(slot.wait(), Err("answer after poisoning".to_string()));
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let cfg = ServeConfig {
            batch_window: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let t = Telemetry::enabled();
        let eng = engine(t.clone(), cfg);
        let tickets: Vec<Ticket> = (0..3).map(|i| eng.submit(frame(i)).unwrap()).collect();
        let shared = Arc::clone(&eng.shared);
        eng.shutdown().unwrap();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        assert_eq!(shared.telemetry.summary().counter("serve.completed"), 3);
    }
}
