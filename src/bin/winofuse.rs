//! `winofuse` — command-line driver for the whole tool-flow.
//!
//! ```text
//! winofuse info     <model.prototxt>
//! winofuse optimize <model.prototxt> [--budget-mb N] [--device zc706|vx485t]
//!                   [--policy hetero|conv|wino] [--max-group N] [--threads N]
//! winofuse curve    <model.prototxt> [--device ...] [--policy ...]
//! winofuse codegen  <model.prototxt> --out DIR [--budget-mb N] [--testbench]
//! winofuse simulate <model.prototxt> [--budget-mb N] [--seed N]
//! winofuse run      <model.prototxt> [--exec-algo auto|wino|direct]
//!                   [--threads N] [--frames N] [--batch N] [--seed N]
//! winofuse run      <model.prototxt> --fused [--budget-mb N] [--threads N]
//! winofuse profile  <model.prototxt | --network NAME> [--threads N] [--fused]
//!                   [--trace-out PATH] [--profile-json PATH]
//! winofuse serve    <model.prototxt> [--requests N] [--concurrency N]
//!                   [--max-batch N] [--batch-window-ms N] [--queue-depth N]
//!                   [--threads N] [--seed N] [--fused]
//! ```
//!
//! This is the paper's Fig. 3 pipeline as a single executable: Caffe
//! configuration in, strategy / HLS project / simulation report out.

use std::path::PathBuf;
use std::process::ExitCode;

use winofuse::codegen::{check, testbench, HlsProject};
use winofuse::core::bnb::AlgoPolicy;
use winofuse::fpga::engine::{computational_roof_gops, Algorithm};
use winofuse::fpga::roofline::Roofline;
use winofuse::fusion::simulator::FusedGroupSim;
use winofuse::model::runtime::{ExecAlgo, LayerProfile, NetworkExecutor, NetworkWeights};
use winofuse::model::{prototxt, zoo, DataType, LayerKind, Network};
use winofuse::prelude::{FpgaDevice, Framework};
use winofuse::runtime::faults::{install_quiet_panic_hook, FaultInjector, FaultMode};
use winofuse::telemetry::{ChromeTraceSink, JsonLinesSink, Telemetry, TraceSink};
use winofuse::{error::render_chain, ServeConfig, ServeEngine, TaskError};

const MB: u64 = 1024 * 1024;

/// Default kept-coefficient density for `--exec-algo sparse` /
/// `--policy sparse` when `--sparsity` is not given: 25%, the regime the
/// sparse-Winograd literature prunes to after retraining.
const DEFAULT_SPARSITY_PM: u16 = 250;

fn usage() -> ! {
    eprintln!(
        "usage: winofuse <info|optimize|curve|codegen|simulate|run|profile|serve> \
         <model.prototxt> [options]\n\
         options:\n\
           --budget-mb N     feature-map transfer budget in MiB (default 8)\n\
           --budget-kb N     ... or in KiB (overrides --budget-mb)\n\
           --device NAME     zc706 (default), vx485t, zedboard, vc709, ku060\n\
           --policy NAME     hetero (default), conv, wino, or sparse (hetero\n\
                             plus sparse Winograd in the optimizer's menu)\n\
           --max-group N     max layers per fusion group (default 8)\n\
           --threads N       worker threads for the strategy search and the\n\
                             `run` executor; 0 = all cores (default),\n\
                             1 = serial — results are identical\n\
           --out DIR         output directory (codegen)\n\
           --testbench       also emit golden-vector C testbenches (codegen)\n\
           --seed N          synthetic weight/input seed (simulate, run; default 42)\n\
           --frames N        sequential repetitions for amortized timing (optimize,\n\
                             run; default 1)\n\
           --batch N         `run` only: replicate the input into an N-frame batch\n\
                             and execute it through the batched kernels in one\n\
                             invocation (default 1; not valid with --fused)\n\
           --exec-algo NAME  CPU convolution backend for `run`: auto (default),\n\
                             wino (batched Winograd F(4,3)), direct\n\
                             (blocked im2col+GEMM), or sparse (transform-domain\n\
                             pruned Winograd; see --sparsity)\n\
           --sparsity T      sparse density: fraction of transformed\n\
                             coefficients kept, in (0, 1] (default 0.25); only\n\
                             valid with --exec-algo sparse or --policy sparse\n\
           --inject SPEC     deterministic fault injection (run, profile):\n\
                             comma-separated rules `kind@site[#occ]` with kind\n\
                             panic | slow:<ms> | sat | dram:<±bytes>; site is a\n\
                             literal or prefix `...*` (e.g. pool.conv2/wino.*,\n\
                             exec.conv2, fused.group0, fused.dram0); occ is an\n\
                             occurrence number, `*` (every), or s<seed>\n\
           --fault-mode M    strict (typed error, per-class exit code) or\n\
                             lenient (degrade: winograd->direct rerun, fused\n\
                             group -> unfused; default for run/profile)\n\
           --fused           `run` only: optimize first, then execute the\n\
                             strategy's fusion groups with the fast kernels and\n\
                             reconcile measured DRAM traffic per group against\n\
                             the DP's analytic budget (conv body only)\n\
           --reconfig-cycles N  inter-group reconfiguration cost (default 0)\n\
           --trace-out PATH  write a Chrome trace (load in Perfetto or\n\
                             chrome://tracing); .jsonl streams JSON-lines instead\n\
                             (`profile` defaults to profile.trace.json)\n\
           --telemetry-json PATH  write the run's counter/histogram summary\n\
           --network NAME    `profile` only: use a built-in network instead of a\n\
                             prototxt — alexnet, vgg16, vgg-e, vgg-e-prefix,\n\
                             small, mixed\n\
           --profile-json PATH  `profile` only: machine-readable per-layer\n\
                             attribution (default profile.json)\n\
         serve options (the long-running engine; conv body, plan cached):\n\
           --requests N      total requests the built-in load generator submits\n\
                             (default 32)\n\
           --concurrency N   client threads submitting concurrently (default 4)\n\
           --max-batch N     most frames coalesced per batched invocation\n\
                             (default 8)\n\
           --batch-window-ms N  how long the batcher waits for followers after\n\
                             the first request of a batch (default 2)\n\
           --queue-depth N   admission-control queue capacity; pushes beyond it\n\
                             are rejected with exit-code-9 errors (default 64)\n\
           --fused           serve batches on the fused-group runner instead of\n\
                             the batched layer executor"
    );
    std::process::exit(2);
}

#[derive(Debug)]
struct Options {
    budget_bytes: u64,
    device: FpgaDevice,
    policy: AlgoPolicy,
    max_group: usize,
    /// Strategy-search worker threads; 0 = auto (all cores).
    threads: usize,
    out: Option<PathBuf>,
    testbench: bool,
    seed: u64,
    frames: u64,
    /// `run` only: replicate the input into an N-frame batch.
    batch: Option<usize>,
    /// `serve` only: load-generator request count.
    requests: Option<u64>,
    /// `serve` only: load-generator client threads.
    concurrency: Option<usize>,
    /// `serve` only: batcher coalescing cap.
    max_batch: Option<usize>,
    /// `serve` only: batcher deadline in milliseconds.
    batch_window_ms: Option<u64>,
    /// `serve` only: admission-control queue capacity.
    queue_depth: Option<usize>,
    /// Convolution backend for `run`; other commands must not set it.
    exec_algo: Option<ExecAlgo>,
    /// `--sparsity`: kept-coefficient density in per mille; only valid
    /// alongside a sparse backend or policy.
    sparsity_pm: Option<u16>,
    /// `run` executes the optimized strategy's fusion groups instead of
    /// the layer-by-layer executor.
    fused: bool,
    reconfig_cycles: Option<u64>,
    trace_out: Option<PathBuf>,
    telemetry_json: Option<PathBuf>,
    /// `profile` only: built-in zoo network instead of a prototxt path.
    network: Option<String>,
    /// `profile` only: machine-readable attribution output path.
    profile_json: Option<PathBuf>,
    /// Shared observability context; enabled when either flag is given.
    telemetry: Telemetry,
    /// Deterministic fault injector from `--inject` (disabled without it).
    faults: FaultInjector,
    /// `--fault-mode`; `None` keeps each command's default.
    fault_mode: Option<FaultMode>,
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        budget_bytes: 8 * MB,
        device: FpgaDevice::zc706(),
        policy: AlgoPolicy::heterogeneous(),
        max_group: winofuse::core::MAX_FUSION_LAYERS,
        threads: 0,
        out: None,
        testbench: false,
        seed: 42,
        frames: 1,
        batch: None,
        requests: None,
        concurrency: None,
        max_batch: None,
        batch_window_ms: None,
        queue_depth: None,
        exec_algo: None,
        sparsity_pm: None,
        fused: false,
        reconfig_cycles: None,
        trace_out: None,
        telemetry_json: None,
        network: None,
        profile_json: None,
        telemetry: Telemetry::disabled(),
        faults: FaultInjector::disabled(),
        fault_mode: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--budget-mb" => {
                o.budget_bytes = value("--budget-mb")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage())
                    * MB
            }
            "--budget-kb" => {
                o.budget_bytes = value("--budget-kb")
                    .parse::<u64>()
                    .unwrap_or_else(|_| usage())
                    * 1024
            }
            "--device" => {
                let name = value("--device");
                o.device = FpgaDevice::by_name(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown device `{name}` (zc706 | vx485t | zedboard | vc709 | ku060)"
                    );
                    usage()
                })
            }
            "--frames" => o.frames = value("--frames").parse().unwrap_or_else(|_| usage()),
            "--batch" => o.batch = Some(value("--batch").parse().unwrap_or_else(|_| usage())),
            "--requests" => {
                o.requests = Some(value("--requests").parse().unwrap_or_else(|_| usage()))
            }
            "--concurrency" => {
                o.concurrency = Some(value("--concurrency").parse().unwrap_or_else(|_| usage()))
            }
            "--max-batch" => {
                o.max_batch = Some(value("--max-batch").parse().unwrap_or_else(|_| usage()))
            }
            "--batch-window-ms" => {
                o.batch_window_ms = Some(
                    value("--batch-window-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--queue-depth" => {
                o.queue_depth = Some(value("--queue-depth").parse().unwrap_or_else(|_| usage()))
            }
            "--reconfig-cycles" => {
                let c = value("--reconfig-cycles")
                    .parse()
                    .unwrap_or_else(|_| usage());
                o.reconfig_cycles = Some(c)
            }
            "--policy" => {
                o.policy = match value("--policy").as_str() {
                    "hetero" => AlgoPolicy::heterogeneous(),
                    "conv" => AlgoPolicy::conventional_only(),
                    "wino" => AlgoPolicy::winograd_preferred(),
                    // Density is patched in after the parse loop once
                    // --sparsity (order-independent) is known.
                    "sparse" => AlgoPolicy::heterogeneous_sparse(DEFAULT_SPARSITY_PM),
                    other => {
                        eprintln!("unknown policy `{other}` (hetero | conv | wino | sparse)");
                        usage()
                    }
                }
            }
            "--exec-algo" => {
                o.exec_algo = Some(match value("--exec-algo").as_str() {
                    "auto" => ExecAlgo::Auto,
                    "wino" => ExecAlgo::Winograd,
                    "direct" => ExecAlgo::Direct,
                    "sparse" => ExecAlgo::Sparse {
                        density_pm: DEFAULT_SPARSITY_PM,
                    },
                    other => {
                        eprintln!("unknown exec algo `{other}` (auto | wino | direct | sparse)");
                        usage()
                    }
                })
            }
            "--sparsity" => {
                let t: f64 = value("--sparsity").parse().unwrap_or_else(|_| usage());
                if !(t > 0.0 && t <= 1.0) {
                    eprintln!("--sparsity must be a density in (0, 1], got {t}");
                    usage()
                }
                o.sparsity_pm = Some(((t * 1000.0).round() as u16).clamp(1, 1000))
            }
            "--max-group" => o.max_group = value("--max-group").parse().unwrap_or_else(|_| usage()),
            "--threads" => o.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--out" => o.out = Some(PathBuf::from(value("--out"))),
            "--network" => o.network = Some(value("--network")),
            "--profile-json" => o.profile_json = Some(PathBuf::from(value("--profile-json"))),
            "--trace-out" => o.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--telemetry-json" => o.telemetry_json = Some(PathBuf::from(value("--telemetry-json"))),
            "--inject" => {
                let spec = value("--inject");
                o.faults = FaultInjector::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bad --inject spec: {e}");
                    usage()
                })
            }
            "--fault-mode" => {
                o.fault_mode = Some(value("--fault-mode").parse().unwrap_or_else(|e| {
                    eprintln!("bad --fault-mode: {e}");
                    usage()
                }))
            }
            "--testbench" => o.testbench = true,
            "--fused" => o.fused = true,
            "--seed" => o.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            other => {
                eprintln!("unknown option `{other}`");
                usage()
            }
        }
    }
    if let Some(pm) = o.sparsity_pm {
        if let Some(ExecAlgo::Sparse { density_pm }) = &mut o.exec_algo {
            *density_pm = pm;
        }
        if o.policy.sparse {
            o.policy.sparse_density_pm = pm;
        }
    }
    if o.trace_out.is_some() || o.telemetry_json.is_some() {
        o.telemetry = match &o.trace_out {
            None => Telemetry::enabled(),
            Some(path) => {
                let is_jsonl = path.extension().is_some_and(|e| e == "jsonl");
                let sink: Result<Box<dyn TraceSink + Send>, std::io::Error> = if is_jsonl {
                    JsonLinesSink::create(path).map(|s| Box::new(s) as _)
                } else {
                    ChromeTraceSink::create(path).map(|s| Box::new(s) as _)
                };
                match sink {
                    Ok(sink) => Telemetry::with_sink(sink),
                    Err(e) => {
                        eprintln!("cannot create trace file `{}`: {e}", path.display());
                        usage()
                    }
                }
            }
        };
    }
    if o.faults.is_enabled() {
        // Injection without observability would hide the recovery story;
        // force counters on (a sink-backed context from --trace-out wins)
        // and keep injected panics off stderr.
        if !o.telemetry.is_enabled() {
            o.telemetry = Telemetry::enabled();
        }
        install_quiet_panic_hook();
    }
    o
}

/// Flushes the trace sink and writes the telemetry summary, if requested.
fn finish_telemetry(o: &Options) -> Result<(), TaskError> {
    o.telemetry
        .finish_sink()
        .map_err(|e| format!("writing trace: {e}"))?;
    if let Some(path) = &o.telemetry_json {
        std::fs::write(path, o.telemetry.summary().to_json())
            .map_err(|e| format!("writing `{}`: {e}", path.display()))?;
    }
    if let Some(path) = &o.trace_out {
        eprintln!(
            "trace written to {} (load in Perfetto / chrome://tracing)",
            path.display()
        );
    }
    Ok(())
}

fn load_network(path: &str) -> Result<Network, TaskError> {
    let net = load_full_network(path)?;
    // The accelerator maps the convolutional body only (the paper omits
    // FC layers, §7.3).
    Ok(net.conv_body()?)
}

/// Parses the network with its FC/softmax tail intact — the CPU executor
/// runs the whole thing, unlike the accelerator flow.
fn load_full_network(path: &str) -> Result<Network, TaskError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TaskError::Other(format!("cannot read `{path}`: {e}")))?;
    Ok(prototxt::parse(&text)?)
}

fn framework(o: &Options) -> Framework {
    let mut device = o.device.clone();
    if let Some(c) = o.reconfig_cycles {
        device = device.with_reconfig_cycles(c);
    }
    Framework::new(device)
        .with_policy(o.policy)
        .with_max_group_layers(o.max_group)
        .with_threads(o.threads)
        .with_telemetry(o.telemetry.clone())
        .with_faults(o.faults.clone())
}

fn cmd_info(net: &Network, o: &Options) -> Result<(), TaskError> {
    println!("network: {net}");
    println!("device:  {}", o.device);
    let shapes = net.shapes()?;
    println!(
        "\n{:<16} {:<8} {:>14} {:>14} {:>12}",
        "layer", "kind", "input", "output", "MMACs"
    );
    for (i, layer) in net.layers().iter().enumerate() {
        println!(
            "{:<16} {:<8} {:>14} {:>14} {:>12.2}",
            layer.name,
            layer.kind.tag(),
            shapes[i].to_string(),
            shapes[i + 1].to_string(),
            layer.macs(shapes[i]) as f64 / 1e6
        );
    }
    println!(
        "\ntotal: {:.2} GMACs, {:.2} Gops, {:.2} M weights",
        net.total_macs() as f64 / 1e9,
        net.total_ops() as f64 / 1e9,
        net.total_weights() as f64 / 1e6
    );
    let fused = net.fused_transfer_bytes(0..net.len(), DataType::Fixed16)?;
    let unfused = net.unfused_transfer_bytes(0..net.len(), DataType::Fixed16)?;
    println!(
        "feature-map transfer: {:.2} MB unfused, {:.2} MB fully fused",
        unfused as f64 / MB as f64,
        fused as f64 / MB as f64
    );
    Ok(())
}

fn cmd_optimize(net: &Network, o: &Options) -> Result<(), TaskError> {
    let fw = framework(o);
    let design = fw.optimize(net, o.budget_bytes)?;
    println!("strategy:\n{}", design.partition.strategy);
    print!("{}", fw.report(net, &design));
    println!(
        "power: {:.1} W, energy/frame: {:.1} mJ",
        fw.power_watts(&design),
        fw.energy_joules(&design) * 1e3
    );
    if o.frames > 1 {
        let batch = fw.batch_timing(&design, o.frames)?;
        println!(
            "batch of {}: {} cycles total ({:.0} cycles/frame, reconfig {} cycles)",
            batch.frames, batch.total_cycles, batch.cycles_per_frame, batch.reconfig_cycles
        );
    }
    Ok(())
}

fn cmd_curve(net: &Network, o: &Options) -> Result<(), TaskError> {
    let fw = framework(o);
    let curve = fw.tradeoff_curve(net)?;
    let ops = net.total_ops();
    println!("{:>12} {:>14} {:>9}", "transfer", "latency (cyc)", "GOPS");
    for (t, l) in curve {
        println!(
            "{:>9.2} MB {:>14} {:>9.1}",
            t as f64 / MB as f64,
            l,
            o.device.effective_gops(ops, l)
        );
    }
    Ok(())
}

fn cmd_codegen(net: &Network, o: &Options) -> Result<(), TaskError> {
    let out = o
        .out
        .clone()
        .ok_or_else(|| TaskError::usage("codegen requires --out DIR"))?;
    let fw = framework(o);
    let design = fw.optimize(net, o.budget_bytes)?;
    let project = HlsProject::generate(net, &design)?;
    check::verify_project(net, &design, &project)?;
    project.write_to_dir(&out)?;
    let mut n_files = project.files().len();
    if o.testbench {
        let weights = NetworkWeights::random(net, o.seed)?;
        let input = winofuse::conv::tensor::random_tensor(
            1,
            net.input_shape().channels,
            net.input_shape().height,
            net.input_shape().width,
            o.seed + 1,
        );
        let tbs = testbench::generate_testbenches(net, &design, &weights, &input, &o.device)?;
        for (name, contents) in &tbs {
            std::fs::write(out.join(name), contents)?;
        }
        n_files += tbs.len();
    }
    println!(
        "wrote {n_files} files to {} (pragma check passed)",
        out.display()
    );
    Ok(())
}

fn cmd_simulate(net: &Network, o: &Options) -> Result<(), TaskError> {
    let fw = framework(o);
    let design = fw.optimize(net, o.budget_bytes)?;
    let weights = NetworkWeights::random(net, o.seed)?;
    let input = winofuse::conv::tensor::random_tensor(
        1,
        net.input_shape().channels,
        net.input_shape().height,
        net.input_shape().width,
        o.seed + 1,
    );
    let reference = winofuse::model::runtime::forward(net, &weights, &input)?;

    let mut cur = input;
    let mut total_cycles = 0u64;
    let mut tid_base = 1u64;
    println!(
        "{:>6} {:>10} {:>14} {:>12} {:>12}",
        "group", "layers", "cycles", "read (B)", "max |err|"
    );
    for plan in &design.partition.groups {
        let mut sim = FusedGroupSim::new(net, plan.start, &plan.configs, &weights, &o.device)?;
        if o.telemetry.is_enabled() {
            // Stage lanes are consecutive across groups; each group's
            // slices start where the previous group finished.
            sim.set_telemetry(o.telemetry.clone(), tid_base, total_cycles);
            tid_base += plan.configs.len() as u64;
        }
        let r = sim.run(&cur)?;
        let gold = &reference[plan.end - 1];
        let err = r.output.max_abs_diff(gold)?;
        println!(
            "{:>6} {:>7}..{:<2} {:>14} {:>12} {:>12.2e}",
            plan.start, plan.start, plan.end, r.cycles, r.dram_bytes_read, err
        );
        if err > 1e-3 {
            return Err(TaskError::Other(format!(
                "group {}..{} diverged: {err}",
                plan.start, plan.end
            )));
        }
        total_cycles += r.cycles;
        cur = r.output;
    }
    println!(
        "\nsimulated {} cycles total ({:.2} ms at {:.0} MHz); analytic model: {} cycles",
        total_cycles,
        o.device.cycles_to_seconds(total_cycles) * 1e3,
        o.device.clock_hz() as f64 / 1e6,
        design.timing.latency
    );
    println!("fused execution matches the layer-by-layer reference ✓");
    Ok(())
}

fn cmd_run_fused(net: &Network, o: &Options) -> Result<(), TaskError> {
    let fw = framework(o);
    let design = fw.optimize(net, o.budget_bytes)?;
    let weights = NetworkWeights::random(net, o.seed)?;
    let shape = net.input_shape();
    let input = winofuse::conv::tensor::random_tensor(
        1,
        shape.channels,
        shape.height,
        shape.width,
        o.seed + 1,
    );
    // Lenient mode by default: collect every group's delta (and any
    // fault-driven fallbacks) for the table, then fail once at the end
    // so the operator sees the whole picture. `--fault-mode strict`
    // surfaces the first fault as a typed error instead.
    let runner = fw
        .fused_runner(net, &design, &weights)?
        .with_fault_mode(o.fault_mode.unwrap_or(FaultMode::Lenient));
    let start = std::time::Instant::now();
    let report = runner.run(&input)?;
    let elapsed = start.elapsed().as_secs_f64();
    println!("network: {net}");
    println!("strategy:\n{}", design.partition.strategy);
    println!(
        "{:>6} {:>10} {:>13} {:>13} {:>13} {:>7}",
        "group", "layers", "read (B)", "written (B)", "analytic (B)", "delta"
    );
    for g in &report.groups {
        println!(
            "{:>6} {:>7}..{:<2} {:>13} {:>13} {:>13} {:>7}",
            g.start,
            g.start,
            g.end,
            g.dram_bytes_read,
            g.dram_bytes_written,
            g.analytic_dram_bytes,
            g.delta()
        );
    }
    let exec = NetworkExecutor::with_algo(net, &weights, ExecAlgo::Auto)?.with_threads(o.threads);
    let reference = exec.run(&input)?;
    let err = report.output.max_abs_diff(&reference)?;
    println!(
        "\nfused run: {:.1} ms, max |err| vs layer-by-layer executor: {err:.2e}",
        elapsed * 1e3
    );
    if err > 1e-3 {
        return Err(TaskError::Other(format!(
            "fused output diverged from the reference: {err}"
        )));
    }
    if !report.fallbacks.is_empty() {
        println!("recovered group faults (degraded to unfused execution):");
        for fb in &report.fallbacks {
            println!("  group {}: {}", fb.start, fb.reason);
        }
    }
    if o.faults.is_enabled() {
        print_recovery_counters(&o.telemetry);
    }
    // A fallen-back group ran unfused, so its meter legitimately
    // diverges from the fused-plan budget — reconcile the rest.
    let fallen: std::collections::HashSet<usize> =
        report.fallbacks.iter().map(|f| f.start).collect();
    let max_delta = report
        .groups
        .iter()
        .filter(|g| !fallen.contains(&g.start))
        .map(|g| g.delta())
        .max()
        .unwrap_or(0);
    if max_delta != 0 {
        return Err(TaskError::Other(format!(
            "DRAM reconciliation failed: max per-group delta {max_delta} B"
        )));
    }
    if fallen.is_empty() {
        println!("DRAM traffic reconciles with the DP budget in every group ✓");
    } else {
        println!(
            "DRAM traffic reconciles in every fused group; {} group(s) degraded to unfused ✓",
            fallen.len()
        );
    }
    Ok(())
}

/// One-line summary of the fault-tolerance counters after an injected
/// (or naturally faulty) run.
fn print_recovery_counters(telemetry: &Telemetry) {
    let s = telemetry.summary();
    println!(
        "fault recovery: {} job panic(s), {} retry(ies), {} deadline(s) blown, \
         {} fallback(s), {} fix16 saturation(s)",
        s.counter("pool.job_panics"),
        s.counter("pool.job_retries"),
        s.counter("pool.deadline_exceeded"),
        s.counter("exec.fallbacks"),
        s.counter("fix16.saturations"),
    );
}

fn cmd_run(net: &Network, o: &Options) -> Result<(), TaskError> {
    let algo = o.exec_algo.unwrap_or_default();
    let batch = o.batch.unwrap_or(1);
    if batch == 0 {
        return Err(TaskError::usage("--batch must be at least 1"));
    }
    let weights = NetworkWeights::random(net, o.seed)?;
    let shape = net.input_shape();
    let input = winofuse::conv::tensor::random_tensor(
        1,
        shape.channels,
        shape.height,
        shape.width,
        o.seed + 1,
    );
    // `--batch N` exercises the batched kernel path: one invocation over
    // an N-frame tensor (frames replicated, so the per-frame outputs
    // must come back bit-identical).
    let input = if batch > 1 {
        input.repeat_frames(batch)
    } else {
        input
    };
    // Kernel counters are always collected for the report; when the user
    // asked for a trace/summary, reuse their context so the per-layer
    // spans land in it too.
    let telemetry = if o.telemetry.is_enabled() {
        o.telemetry.clone()
    } else {
        Telemetry::enabled()
    };
    let exec = NetworkExecutor::with_algo(net, &weights, algo)?
        .with_threads(o.threads)
        .with_telemetry(telemetry.clone())
        .with_faults(o.faults.clone())
        .with_fault_mode(o.fault_mode.unwrap_or(FaultMode::Lenient));
    let frames = o.frames.max(1);
    let start = std::time::Instant::now();
    let mut last = None;
    for _ in 0..frames {
        last = Some(exec.run(&input)?);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let out = last.expect("at least one frame");
    let summary = telemetry.summary();
    println!("network: {net}");
    println!(
        "backend: {algo:?}, threads: {}",
        if o.threads == 0 {
            "auto".to_string()
        } else {
            o.threads.to_string()
        }
    );
    println!("output:  {}x{}x{}x{}", out.n(), out.c(), out.h(), out.w());
    println!(
        "conv kernels: {} GEMM calls, {} Winograd tiles, {:.1} MiB packed",
        summary.counter("conv.gemm_calls"),
        summary.counter("conv.tiles"),
        summary.counter("conv.bytes_packed") as f64 / MB as f64
    );
    let total_frames = frames * batch as u64;
    println!(
        "{} frame(s) in {:.1} ms ({:.1} ms/frame, {:.2} effective GOPS)",
        total_frames,
        elapsed * 1e3,
        elapsed * 1e3 / total_frames as f64,
        net.total_ops() as f64 * total_frames as f64 / elapsed / 1e9
    );
    if batch > 1 {
        // Identical inputs through the batched kernels must produce
        // identical outputs — anything else is a frame-indexing bug.
        let first = out.frame(0);
        for b in 1..batch {
            if out.frame(b).as_slice() != first.as_slice() {
                return Err(TaskError::Other(format!(
                    "batched frame {b} diverged from frame 0"
                )));
            }
        }
        println!("batch of {batch}: replicated frames are bit-identical ✓");
    }
    if o.faults.is_enabled() {
        print_recovery_counters(&telemetry);
    }
    Ok(())
}

/// `winofuse serve`: start the long-running engine (bounded queue →
/// dynamic batcher → plan cache → batched execution), drive it with the
/// built-in load generator, and report throughput, tail latency, and
/// plan-cache traffic.
fn cmd_serve(net: &Network, o: &Options) -> Result<(), TaskError> {
    use std::time::{Duration, Instant};
    let telemetry = if o.telemetry.is_enabled() {
        o.telemetry.clone()
    } else {
        Telemetry::enabled()
    };
    let mut fw = Framework::new(o.device.clone())
        .with_policy(o.policy)
        .with_max_group_layers(o.max_group)
        .with_threads(o.threads)
        .with_telemetry(telemetry.clone())
        .with_faults(o.faults.clone());
    if let Some(mode) = o.fault_mode {
        fw = fw.with_fault_mode(mode);
    }
    let threads = fw.threads();
    let weights = NetworkWeights::random(net, o.seed)?;
    let cfg = ServeConfig {
        max_batch: o.max_batch.unwrap_or(8).max(1),
        batch_window: Duration::from_millis(o.batch_window_ms.unwrap_or(2)),
        queue_depth: o.queue_depth.unwrap_or(64).max(1),
        budget_bytes: o.budget_bytes,
        precision: DataType::Fixed16,
        fused: o.fused,
        fault_mode: o.fault_mode.unwrap_or(FaultMode::Lenient),
    };
    let requests = o.requests.unwrap_or(32);
    let concurrency = o.concurrency.unwrap_or(4).max(1);
    println!("network: {net}");
    println!(
        "engine:  device {}, threads {threads}, max-batch {}, window {} ms, queue depth {}, {}",
        o.device.name(),
        cfg.max_batch,
        cfg.batch_window.as_millis(),
        cfg.queue_depth,
        if cfg.fused {
            "fused-group runner"
        } else {
            "batched layer executor"
        }
    );
    let engine = ServeEngine::start(fw, net.clone(), weights, telemetry.clone(), cfg)?;
    let warm_start = Instant::now();
    engine.warm()?;
    println!(
        "plan cached in {:.1} ms (strategy search + filter transforms paid once)",
        warm_start.elapsed().as_secs_f64() * 1e3
    );

    let shape = net.input_shape();
    let wall = Instant::now();
    let rejected = std::thread::scope(|s| -> Result<u64, TaskError> {
        let mut clients = Vec::new();
        for c in 0..concurrency {
            let engine = &engine;
            let telemetry = telemetry.clone();
            clients.push(s.spawn(move || -> Result<u64, TaskError> {
                let mut rejected = 0u64;
                let mut i = c as u64;
                while i < requests {
                    let input = winofuse::conv::tensor::random_tensor(
                        1,
                        shape.channels,
                        shape.height,
                        shape.width,
                        o.seed + 1 + i,
                    );
                    let t0 = Instant::now();
                    match engine.submit(input) {
                        Ok(ticket) => {
                            ticket.wait()?;
                            telemetry
                                .histogram("serve.request_us")
                                .record(t0.elapsed().as_micros() as u64);
                            i += concurrency as u64;
                        }
                        Err(TaskError::Serve(_)) => {
                            // Backpressure worked as designed: back off
                            // and retry the same request.
                            rejected += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(rejected)
            }));
        }
        let mut rejected = 0u64;
        for h in clients {
            rejected += h.join().expect("load-generator client panicked")?;
        }
        Ok(rejected)
    })?;
    let elapsed = wall.elapsed().as_secs_f64();
    let (hits, misses) = (engine.plan_hits(), engine.plan_misses());
    engine.shutdown()?;

    let s = telemetry.summary();
    let batches = s.counter("serve.batches").max(1);
    println!(
        "\n{} request(s) from {concurrency} client(s) in {:.1} ms — {:.1} req/s",
        s.counter("serve.completed"),
        elapsed * 1e3,
        requests as f64 / elapsed
    );
    println!(
        "batches: {batches} (mean size {:.2}); backpressure rejections: {rejected}",
        s.counter("serve.completed") as f64 / batches as f64
    );
    if let Some(h) = s.histograms.get("serve.request_us") {
        println!(
            "request latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
            h.p50() as f64 / 1e3,
            h.p95() as f64 / 1e3,
            h.p99() as f64 / 1e3
        );
    }
    if let Some(h) = s.histograms.get("serve.queue_wait_us") {
        println!(
            "queue wait:      p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
            h.p50() as f64 / 1e3,
            h.p95() as f64 / 1e3,
            h.p99() as f64 / 1e3
        );
    }
    println!("plan cache: {hits} hit(s), {misses} miss(es)");
    if misses != 1 {
        return Err(TaskError::Other(format!(
            "expected exactly one plan build for one configuration, saw {misses}"
        )));
    }
    println!("strategy search ran exactly once; every request reused the cached plan ✓");
    if o.faults.is_enabled() {
        print_recovery_counters(&telemetry);
    }
    Ok(())
}

/// Resolves a `--network` name to a built-in zoo network.
fn zoo_network(name: &str) -> Result<Network, TaskError> {
    Ok(match name {
        "alexnet" => zoo::alexnet(),
        "vgg16" => zoo::vgg16(),
        "vgg-e" | "vgg_e" => zoo::vgg_e(),
        "vgg-e-prefix" => zoo::vgg_e_fused_prefix(),
        "small" => zoo::small_test_net(),
        "mixed" => zoo::mixed_test_net(),
        other => {
            return Err(TaskError::usage(format!(
                "unknown built-in network `{other}` \
                 (alexnet | vgg16 | vgg-e | vgg-e-prefix | small | mixed)"
            )))
        }
    })
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The sparse density in effect for roofline math: the backend's own if
/// a sparse backend is selected, else the flag (or its default).
fn sparse_density(o: &Options) -> u16 {
    match o.exec_algo {
        Some(ExecAlgo::Sparse { density_pm }) => density_pm,
        _ => o.sparsity_pm.unwrap_or(DEFAULT_SPARSITY_PM),
    }
}

/// Roofline attribution for one profiled layer: attainable GOPS at the
/// layer's arithmetic intensity (on the selected device) and the achieved
/// fraction of it. `None` for layers with no counted kernel flops.
fn roofline_attribution(
    layer_kind: &LayerKind,
    p: &LayerProfile,
    roofline: &Roofline,
    device: &FpgaDevice,
    sparsity_pm: u16,
) -> Option<(f64, f64)> {
    let LayerKind::Conv(c) = layer_kind else {
        return None;
    };
    let achieved = p.achieved_gflops()?;
    let algorithm = match p.algo {
        "winograd" => Algorithm::Winograd { m: 4 },
        "sparse" => Algorithm::SparseWinograd {
            m: 4,
            density_pm: sparsity_pm,
        },
        _ => Algorithm::Conventional,
    };
    let roof = computational_roof_gops(device, algorithm, c.kernel);
    let point = roofline.evaluate(&p.name, p.conv.arithmetic_intensity(), roof);
    if point.attainable_gops <= 0.0 {
        return None;
    }
    Some((
        point.attainable_gops,
        100.0 * achieved / point.attainable_gops,
    ))
}

fn cmd_profile(net: &Network, o: &Options) -> Result<(), TaskError> {
    let algo = o.exec_algo.unwrap_or_default();
    let weights = NetworkWeights::random(net, o.seed)?;
    let shape = net.input_shape();
    let input = winofuse::conv::tensor::random_tensor(
        1,
        shape.channels,
        shape.height,
        shape.width,
        o.seed + 1,
    );
    let exec = NetworkExecutor::with_algo(net, &weights, algo)?
        .with_threads(o.threads)
        .with_telemetry(o.telemetry.clone())
        .with_faults(o.faults.clone())
        .with_fault_mode(o.fault_mode.unwrap_or(FaultMode::Lenient));
    let start = std::time::Instant::now();
    let (out, profiles) = exec.run_profiled(&input)?;
    let elapsed = start.elapsed().as_secs_f64();
    let roofline = Roofline::for_device(&o.device);

    println!("network: {net}");
    println!("device:  {} (roofline reference)", o.device);
    println!("output:  {}x{}x{}", out.c(), out.h(), out.w());
    println!(
        "\n{:<16} {:<5} {:<9} {:>9} {:>10} {:>9} {:>12} {:>7}",
        "layer", "kind", "algo", "wall ms", "GFLOP/s", "AI op/B", "attain GOPS", "%roof"
    );
    let mut total_flops = 0u64;
    for (layer, p) in net.layers().iter().zip(&profiles) {
        total_flops += p.conv.total_flops();
        let wall_ms = p.wall_ns as f64 / 1e6;
        match (
            p.achieved_gflops(),
            roofline_attribution(&layer.kind, p, &roofline, &o.device, sparse_density(o)),
        ) {
            (Some(gflops), Some((attain, pct))) => println!(
                "{:<16} {:<5} {:<9} {:>9.2} {:>10.2} {:>9.2} {:>12.1} {:>7.1}",
                p.name,
                p.kind,
                p.algo,
                wall_ms,
                gflops,
                p.conv.arithmetic_intensity(),
                attain,
                pct
            ),
            _ => println!(
                "{:<16} {:<5} {:<9} {:>9.2} {:>10} {:>9} {:>12} {:>7}",
                p.name, p.kind, p.algo, wall_ms, "-", "-", "-", "-"
            ),
        }
    }
    println!(
        "\ntotal: {:.1} ms, {:.2} counted Gflop, {:.2} effective GFLOP/s",
        elapsed * 1e3,
        total_flops as f64 / 1e9,
        total_flops as f64 / elapsed / 1e9
    );
    if let Some(path) = &o.profile_json {
        write_profile_json(path, net, o, &profiles, &roofline)?;
        eprintln!("per-layer attribution written to {}", path.display());
    }
    Ok(())
}

/// Serializes the per-layer attribution (hand-rolled JSON, matching the
/// telemetry crate's no-serde convention).
fn write_profile_json(
    path: &std::path::Path,
    net: &Network,
    o: &Options,
    profiles: &[LayerProfile],
    roofline: &Roofline,
) -> Result<(), TaskError> {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"network\": {},\n", json_str(net.name())));
    s.push_str(&format!("  \"device\": {},\n", json_str(o.device.name())));
    s.push_str(&format!("  \"threads\": {},\n", o.threads));
    s.push_str(&format!("  \"seed\": {},\n", o.seed));
    s.push_str("  \"layers\": [\n");
    for (idx, (layer, p)) in net.layers().iter().zip(profiles).enumerate() {
        let c = &p.conv;
        let attribution = roofline_attribution(&layer.kind, p, roofline, &o.device, sparse_density(o));
        s.push_str("    {");
        s.push_str(&format!("\"name\": {}, ", json_str(&p.name)));
        s.push_str(&format!("\"kind\": {}, ", json_str(p.kind)));
        s.push_str(&format!("\"algo\": {}, ", json_str(p.algo)));
        s.push_str(&format!("\"wall_ns\": {}, ", p.wall_ns));
        s.push_str(&format!("\"model_ops\": {}, ", p.model_ops));
        s.push_str(&format!("\"flops\": {}, ", c.total_flops()));
        s.push_str(&format!("\"bytes\": {}, ", c.total_bytes()));
        s.push_str(&format!(
            "\"arithmetic_intensity\": {:.6}, ",
            c.arithmetic_intensity()
        ));
        match (p.achieved_gflops(), attribution) {
            (Some(g), Some((attain, pct))) => s.push_str(&format!(
                "\"achieved_gflops\": {g:.6}, \"attainable_gops\": {attain:.6}, \
                 \"pct_of_roofline\": {pct:.3}, "
            )),
            _ => s.push_str(
                "\"achieved_gflops\": null, \"attainable_gops\": null, \
                 \"pct_of_roofline\": null, ",
            ),
        }
        s.push_str(&format!(
            "\"gemm_calls\": {}, \"tiles\": {}, \"bytes_packed\": {}, ",
            c.gemm_calls, c.tiles, c.bytes_packed
        ));
        s.push_str(&format!(
            "\"phases\": {{\"scatter\": {{\"flops\": {}, \"bytes\": {}, \"ns\": {}}}, \
             \"gemm\": {{\"flops\": {}, \"bytes\": {}, \"ns\": {}, \"pack_ns\": {}, \
             \"kernel_ns\": {}}}, \
             \"gather\": {{\"flops\": {}, \"bytes\": {}, \"ns\": {}}}}}",
            c.flops_scatter,
            c.bytes_scatter,
            c.scatter_ns,
            c.flops_gemm,
            c.bytes_gemm,
            c.gemm_ns,
            c.pack_ns,
            c.kernel_ns,
            c.flops_gather,
            c.bytes_gather,
            c.gather_ns
        ));
        s.push('}');
        if idx + 1 < profiles.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating `{}`: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, s).map_err(|e| format!("writing `{}`: {e}", path.display()))?;
    Ok(())
}

/// `profile --fused`: execute the optimized strategy's fusion groups with
/// worker-lane tracing on, reporting per-group DRAM traffic and the
/// kernel counters; the Chrome trace carries the per-stage lanes.
fn cmd_profile_fused(net: &Network, o: &Options) -> Result<(), TaskError> {
    let fw = framework(o);
    let design = fw.optimize(net, o.budget_bytes)?;
    let weights = NetworkWeights::random(net, o.seed)?;
    let shape = net.input_shape();
    let input = winofuse::conv::tensor::random_tensor(
        1,
        shape.channels,
        shape.height,
        shape.width,
        o.seed + 1,
    );
    let runner = fw
        .fused_runner(net, &design, &weights)?
        .with_fault_mode(o.fault_mode.unwrap_or(FaultMode::Lenient));
    let start = std::time::Instant::now();
    let report = runner.run(&input)?;
    let elapsed = start.elapsed().as_secs_f64();
    println!("network: {net}");
    println!("strategy:\n{}", design.partition.strategy);
    println!(
        "{:>6} {:>10} {:>13} {:>13} {:>13} {:>7}",
        "group", "layers", "read (B)", "written (B)", "analytic (B)", "delta"
    );
    for g in &report.groups {
        println!(
            "{:>6} {:>7}..{:<2} {:>13} {:>13} {:>13} {:>7}",
            g.start,
            g.start,
            g.end,
            g.dram_bytes_read,
            g.dram_bytes_written,
            g.analytic_dram_bytes,
            g.delta()
        );
    }
    if !report.fallbacks.is_empty() {
        println!("recovered group faults (degraded to unfused execution):");
        for fb in &report.fallbacks {
            println!("  group {}: {}", fb.start, fb.reason);
        }
    }
    if o.faults.is_enabled() {
        print_recovery_counters(&o.telemetry);
    }
    let summary = o.telemetry.summary();
    println!(
        "\nfused run: {:.1} ms; {} pool jobs across {} pool runs",
        elapsed * 1e3,
        summary.counter("pool.jobs"),
        summary.counter("pool.runs")
    );
    if let Some(path) = &o.profile_json {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"network\": {},\n", json_str(net.name())));
        s.push_str(&format!("  \"device\": {},\n", json_str(o.device.name())));
        s.push_str(&format!("  \"threads\": {},\n", o.threads));
        s.push_str("  \"fused\": true,\n  \"groups\": [\n");
        for (idx, g) in report.groups.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"start\": {}, \"end\": {}, \"dram_bytes_read\": {}, \
                 \"dram_bytes_written\": {}, \"analytic_dram_bytes\": {}, \"delta\": {}}}{}\n",
                g.start,
                g.end,
                g.dram_bytes_read,
                g.dram_bytes_written,
                g.analytic_dram_bytes,
                g.delta(),
                if idx + 1 < report.groups.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating `{}`: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, s).map_err(|e| format!("writing `{}`: {e}", path.display()))?;
        eprintln!("per-group attribution written to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let cmd = args[0].as_str();
    // `profile --network NAME` has no model path; every other command
    // (and `profile <model.prototxt>`) takes one as the second argument.
    let (path, rest): (&str, &[String]) = if args[1].starts_with("--") {
        ("", &args[1..])
    } else {
        (args[1].as_str(), &args[2..])
    };
    let mut opts = parse_options(rest);

    if opts.exec_algo.is_some() && cmd != "run" && cmd != "profile" {
        eprintln!("error: --exec-algo only applies to the `run` and `profile` commands");
        return ExitCode::FAILURE;
    }
    if opts.sparsity_pm.is_some()
        && !matches!(opts.exec_algo, Some(ExecAlgo::Sparse { .. }))
        && !opts.policy.sparse
    {
        eprintln!("error: --sparsity requires --exec-algo sparse or --policy sparse");
        return ExitCode::from(2);
    }
    if opts.fused && cmd != "run" && cmd != "profile" && cmd != "serve" {
        eprintln!("error: --fused only applies to the `run`, `profile`, and `serve` commands");
        return ExitCode::FAILURE;
    }
    if opts.fused && opts.exec_algo.is_some() {
        eprintln!("error: --exec-algo does not apply to fused execution");
        return ExitCode::FAILURE;
    }
    if (opts.faults.is_enabled() || opts.fault_mode.is_some())
        && cmd != "run"
        && cmd != "profile"
        && cmd != "serve"
    {
        eprintln!(
            "error: --inject / --fault-mode only apply to the `run`, `profile`, and \
             `serve` commands"
        );
        return ExitCode::from(2);
    }
    if opts.batch.is_some() && cmd != "run" {
        eprintln!("error: --batch only applies to the `run` command");
        return ExitCode::from(2);
    }
    if opts.batch.is_some() && opts.fused {
        eprintln!("error: --batch does not apply to fused execution");
        return ExitCode::from(2);
    }
    let serve_only_flags = opts.requests.is_some()
        || opts.concurrency.is_some()
        || opts.max_batch.is_some()
        || opts.batch_window_ms.is_some()
        || opts.queue_depth.is_some();
    if serve_only_flags && cmd != "serve" {
        eprintln!(
            "error: --requests / --concurrency / --max-batch / --batch-window-ms / \
             --queue-depth only apply to the `serve` command"
        );
        return ExitCode::from(2);
    }
    if (opts.network.is_some() || opts.profile_json.is_some()) && cmd != "profile" {
        eprintln!("error: --network / --profile-json only apply to the `profile` command");
        return ExitCode::FAILURE;
    }
    if cmd == "profile" {
        // A profile run always produces its two artifacts; honor explicit
        // paths, default the rest.
        if opts.trace_out.is_none() {
            let p = PathBuf::from("profile.trace.json");
            match ChromeTraceSink::create(&p) {
                Ok(sink) => {
                    opts.telemetry = Telemetry::with_sink(Box::new(sink));
                    opts.trace_out = Some(p);
                }
                Err(e) => {
                    eprintln!("error: cannot create trace file `{}`: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if opts.profile_json.is_none() {
            opts.profile_json = Some(PathBuf::from("profile.json"));
        }
    }

    // `run` and layer-wise `profile` execute the network on the CPU,
    // FC/softmax tail included; the accelerator commands — including
    // fused execution of an optimized strategy — map the convolutional
    // body only.
    let loaded = if cmd == "profile" {
        match &opts.network {
            Some(name) => zoo_network(name).and_then(|n| {
                if opts.fused {
                    n.conv_body().map_err(TaskError::from)
                } else {
                    Ok(n)
                }
            }),
            None if !path.is_empty() => {
                if opts.fused {
                    load_network(path)
                } else {
                    load_full_network(path)
                }
            }
            None => Err(TaskError::usage(
                "profile requires a model path or --network NAME",
            )),
        }
    } else if path.is_empty() {
        Err(TaskError::usage(format!(
            "the `{cmd}` command requires a model path"
        )))
    } else if cmd == "run" && !opts.fused {
        load_full_network(path)
    } else {
        load_network(path)
    };
    let net = match loaded {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {}", render_chain(&e));
            return ExitCode::from(e.exit_code());
        }
    };
    let result = match cmd {
        "info" => cmd_info(&net, &opts),
        "optimize" => cmd_optimize(&net, &opts),
        "curve" => cmd_curve(&net, &opts),
        "codegen" => cmd_codegen(&net, &opts),
        "simulate" => cmd_simulate(&net, &opts),
        "run" if opts.fused => cmd_run_fused(&net, &opts),
        "run" => cmd_run(&net, &opts),
        "profile" if opts.fused => cmd_profile_fused(&net, &opts),
        "profile" => cmd_profile(&net, &opts),
        "serve" => cmd_serve(&net, &opts),
        _ => {
            usage();
        }
    };
    let result = result.and_then(|()| finish_telemetry(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Full source chain on stderr, per-class exit code (see
            // `winofuse::error` for the documented map).
            eprintln!("error: {}", render_chain(&e));
            ExitCode::from(e.exit_code())
        }
    }
}
