//! # winofuse
//!
//! A from-scratch Rust reproduction of **"Exploring Heterogeneous
//! Algorithms for Accelerating Deep Convolutional Neural Networks on
//! FPGAs"** (Xiao, Liang, Lu, Yan, Tai — DAC 2017).
//!
//! The paper's insight: the conventional convolution algorithm is
//! DSP-bound while the Winograd minimal-filtering algorithm is
//! bandwidth-bound, so a *heterogeneous* assignment — chosen per layer,
//! inside a line-buffer-based layer-fusion architecture, by a dynamic
//! program over the feature-map transfer budget — beats any homogeneous
//! design. This crate re-exports the whole reproduction:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`conv`] | `winofuse-conv` | direct / im2col / Winograd convolution, Cook–Toom transform generation, 16-bit fixed point |
//! | [`model`] | `winofuse-model` | CNN descriptions, AlexNet/VGG zoo, prototxt parser, reference executor |
//! | [`fpga`] | `winofuse-fpga` | device catalog, resource vectors, roofline, engine cost models, energy |
//! | [`fusion`] | `winofuse-fusion` | pyramid math, line buffers, pipeline timing, behavioral simulator, Alwani (MICRO'16) baseline |
//! | [`core`] | `winofuse-core` | strategy triples, branch-and-bound (Alg. 2), transfer-budget DP (Alg. 1), framework driver |
//! | [`codegen`] | `winofuse-codegen` | Vivado-HLS-style source emission + pragma consistency checks |
//! | [`telemetry`] | `winofuse-telemetry` | counters, spans, Chrome-trace / JSON-lines export, run summaries |
//!
//! ## Quickstart
//!
//! ```
//! use winofuse::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A network (from the zoo, or parse a Caffe-style prototxt).
//! let net = winofuse::model::zoo::vgg_e_fused_prefix();
//!
//! // 2. A device (the paper's ZC706) and the framework.
//! let fw = Framework::new(FpgaDevice::zc706());
//!
//! // 3. Optimize under a 2 MB feature-map transfer budget (Table 1).
//! let design = fw.optimize(&net, 2 * 1024 * 1024)?;
//! assert!(design.partition.strategy.is_heterogeneous());
//!
//! // 4. Emit the Vivado HLS project.
//! let project = HlsProject::generate(&net, &design)?;
//! assert!(project.file("build.tcl").is_some());
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod serve;

pub use error::TaskError;
pub use serve::{ServeConfig, ServeEngine, Ticket};
pub use winofuse_codegen as codegen;
pub use winofuse_conv as conv;
pub use winofuse_core as core;
pub use winofuse_fpga as fpga;
pub use winofuse_fusion as fusion;
pub use winofuse_model as model;
pub use winofuse_runtime as runtime;
pub use winofuse_telemetry as telemetry;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use winofuse_codegen::HlsProject;
    pub use winofuse_core::bnb::{AlgoPolicy, GroupPlanner};
    pub use winofuse_core::framework::{Framework, OptimizedDesign};
    pub use winofuse_core::{LayerStrategy, Strategy};
    pub use winofuse_fpga::device::FpgaDevice;
    pub use winofuse_fpga::engine::Algorithm;
    pub use winofuse_fpga::ResourceVec;
    pub use winofuse_model::{ConvParams, DataType, FmShape, Layer, LayerKind, Network};
    pub use winofuse_telemetry::{RunTelemetry, Telemetry};
}
