//! The CLI-facing error taxonomy: one source-chained type wrapping every
//! substrate crate's errors, with a documented exit code per class.
//!
//! # Exit codes
//!
//! | code | class | examples |
//! |---|---|---|
//! | 0 | success | |
//! | 1 | generic failure | I/O, unclassified messages |
//! | 2 | usage error | unknown flag, malformed `--inject` spec |
//! | 3 | model / configuration | prototxt parse, shape inference |
//! | 4 | convolution numeric | bad geometry, unsupported transform |
//! | 5 | planning / resource | infeasible budget, FPGA or codegen model |
//! | 6 | DRAM reconciliation | strict-mode [`FusionError::DramMismatch`] |
//! | 7 | kernel fault | caught panic, pool fault, strict group fault |
//! | 8 | deadline exceeded | worker-pool watchdog fired |
//! | 9 | serve admission | queue overloaded, engine shutting down |
//!
//! The kernel-fault and deadline classes are the fault-tolerance
//! machinery's strict-mode surface (see `DESIGN.md` §12); everything
//! else is the pre-existing error space, now chained via
//! [`std::error::Error::source`] so `caused by:` trails print from any
//! layer.

use std::error::Error;
use std::fmt;

use winofuse_codegen::CodegenError;
use winofuse_conv::ConvError;
use winofuse_core::CoreError;
use winofuse_fpga::FpgaError;
use winofuse_fusion::FusionError;
use winofuse_model::ModelError;
use winofuse_runtime::serve::ServeError;
use winofuse_runtime::PoolError;

/// One top-level error for everything a `winofuse` task can fail with.
///
/// Each variant wraps the originating crate's typed error (preserved as
/// [`Error::source`]) except [`TaskError::Usage`] and
/// [`TaskError::Other`], which carry plain messages.
#[derive(Debug)]
#[non_exhaustive]
pub enum TaskError {
    /// Command-line misuse: unknown flag, missing argument, malformed
    /// `--inject` spec.
    Usage(String),
    /// Network description or configuration problem.
    Model(ModelError),
    /// Numeric convolution substrate failure.
    Conv(ConvError),
    /// Strategy search / planning failure.
    Core(CoreError),
    /// FPGA cost-model failure.
    Fpga(FpgaError),
    /// HLS emission failure.
    Codegen(CodegenError),
    /// Fused-execution failure (including strict-mode DRAM mismatches
    /// and group faults).
    Fusion(FusionError),
    /// Worker-pool fault that escaped every fallback rung.
    Pool(PoolError),
    /// Serving admission failure: queue at capacity or engine draining.
    Serve(ServeError),
    /// Anything else (I/O, free-form messages).
    Other(String),
}

impl TaskError {
    /// A usage error (exit code 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        TaskError::Usage(msg.into())
    }

    /// The documented process exit code for this error's class (see the
    /// [module docs](self)).
    pub fn exit_code(&self) -> u8 {
        match self {
            TaskError::Usage(_) => 2,
            TaskError::Model(ModelError::KernelFault { .. }) => 7,
            TaskError::Model(_) => 3,
            TaskError::Conv(ConvError::KernelFault { .. }) => 7,
            TaskError::Conv(_) => 4,
            TaskError::Core(_) | TaskError::Fpga(_) | TaskError::Codegen(_) => 5,
            TaskError::Fusion(FusionError::DramMismatch { .. }) => 6,
            TaskError::Fusion(FusionError::GroupFault { .. })
            | TaskError::Fusion(FusionError::KernelFault { .. }) => 7,
            TaskError::Fusion(_) => 3,
            TaskError::Pool(PoolError::DeadlineExceeded { .. }) => 8,
            TaskError::Pool(_) => 7,
            TaskError::Serve(_) => 9,
            TaskError::Other(_) => 1,
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Usage(m) => write!(f, "usage error: {m}"),
            TaskError::Model(_) => write!(f, "model error"),
            TaskError::Conv(_) => write!(f, "convolution error"),
            TaskError::Core(_) => write!(f, "planning error"),
            TaskError::Fpga(_) => write!(f, "fpga model error"),
            TaskError::Codegen(_) => write!(f, "codegen error"),
            TaskError::Fusion(_) => write!(f, "fused execution error"),
            TaskError::Pool(_) => write!(f, "worker pool error"),
            TaskError::Serve(_) => write!(f, "serve admission error"),
            TaskError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl Error for TaskError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TaskError::Usage(_) | TaskError::Other(_) => None,
            TaskError::Model(e) => Some(e),
            TaskError::Conv(e) => Some(e),
            TaskError::Core(e) => Some(e),
            TaskError::Fpga(e) => Some(e),
            TaskError::Codegen(e) => Some(e),
            TaskError::Fusion(e) => Some(e),
            TaskError::Pool(e) => Some(e),
            TaskError::Serve(e) => Some(e),
        }
    }
}

impl From<ModelError> for TaskError {
    fn from(e: ModelError) -> Self {
        TaskError::Model(e)
    }
}

impl From<ConvError> for TaskError {
    fn from(e: ConvError) -> Self {
        TaskError::Conv(e)
    }
}

impl From<CoreError> for TaskError {
    fn from(e: CoreError) -> Self {
        TaskError::Core(e)
    }
}

impl From<FpgaError> for TaskError {
    fn from(e: FpgaError) -> Self {
        TaskError::Fpga(e)
    }
}

impl From<CodegenError> for TaskError {
    fn from(e: CodegenError) -> Self {
        TaskError::Codegen(e)
    }
}

impl From<FusionError> for TaskError {
    fn from(e: FusionError) -> Self {
        TaskError::Fusion(e)
    }
}

impl From<PoolError> for TaskError {
    fn from(e: PoolError) -> Self {
        TaskError::Pool(e)
    }
}

impl From<ServeError> for TaskError {
    fn from(e: ServeError) -> Self {
        TaskError::Serve(e)
    }
}

impl From<std::io::Error> for TaskError {
    fn from(e: std::io::Error) -> Self {
        TaskError::Other(format!("i/o error: {e}"))
    }
}

impl From<String> for TaskError {
    fn from(m: String) -> Self {
        TaskError::Other(m)
    }
}

/// Renders the full `caused by:` chain of any error, one line per layer.
pub fn render_chain(e: &dyn Error) -> String {
    let mut out = e.to_string();
    let mut cur = e.source();
    while let Some(c) = cur {
        out.push_str("\n  caused by: ");
        out.push_str(&c.to_string());
        cur = c.source();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_documented_map() {
        assert_eq!(TaskError::usage("bad flag").exit_code(), 2);
        assert_eq!(
            TaskError::from(ModelError::InvalidNetwork("empty".into())).exit_code(),
            3
        );
        assert_eq!(TaskError::from(ConvError::RationalOverflow).exit_code(), 4);
        assert_eq!(
            TaskError::from(CoreError::Infeasible("budget".into())).exit_code(),
            5
        );
        assert_eq!(
            TaskError::from(FusionError::DramMismatch {
                start: 0,
                measured: 1,
                analytic: 2
            })
            .exit_code(),
            6
        );
        assert_eq!(
            TaskError::from(ModelError::KernelFault {
                layer: "conv2".into(),
                reason: "boom".into()
            })
            .exit_code(),
            7
        );
        assert_eq!(
            TaskError::from(FusionError::GroupFault {
                start: 0,
                reason: "boom".into()
            })
            .exit_code(),
            7
        );
        assert_eq!(
            TaskError::from(PoolError::DeadlineExceeded {
                label: "x".into(),
                deadline: std::time::Duration::from_millis(1),
                completed: 0,
                total: 4
            })
            .exit_code(),
            8
        );
        assert_eq!(
            TaskError::from(ServeError::Overloaded {
                depth: 64,
                capacity: 64
            })
            .exit_code(),
            9
        );
        assert_eq!(TaskError::from(String::from("misc")).exit_code(), 1);
    }

    #[test]
    fn source_chain_renders_every_layer() {
        let e = TaskError::from(ModelError::KernelFault {
            layer: "conv2".into(),
            reason: "2 of 14 jobs panicked".into(),
        });
        let chain = render_chain(&e);
        assert!(chain.contains("model error"));
        assert!(chain.contains("caused by: kernel fault at layer `conv2`"));
    }
}
