//! Edge-case suite for the panic-isolated pool entry points: job-count
//! boundaries (0, 1, jobs ≫ workers), a panicking job at *every* index,
//! bounded retries, the watchdog deadline, and telemetry parity.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use winofuse_runtime::faults::{install_quiet_panic_hook, FaultInjector};
use winofuse_runtime::{
    run_jobs_isolated, run_sliced_jobs_isolated, split_chunks, GuardPolicy, PoolError, PoolProfiler,
};
use winofuse_telemetry::Telemetry;

const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn zero_jobs_is_a_noop_success() {
    for threads in THREADS {
        let n = run_jobs_isolated(threads, 0, &PoolProfiler::disabled(), |_| {
            panic!("injected: no jobs should run")
        })
        .unwrap();
        assert_eq!(n, 1);
        let slices: Vec<&mut [u8]> = Vec::new();
        run_sliced_jobs_isolated(
            threads,
            slices,
            &PoolProfiler::disabled(),
            || (),
            |(), _, _| {},
        )
        .unwrap();
    }
}

#[test]
fn single_job_runs_inline() {
    for threads in THREADS {
        let hits = AtomicU64::new(0);
        let used = run_jobs_isolated(threads, 1, &PoolProfiler::disabled(), |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(used, 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}

#[test]
fn jobs_much_greater_than_workers_all_complete() {
    for threads in THREADS {
        let jobs = 997; // prime, far above any worker count
        let hits: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
        run_jobs_isolated(threads, jobs, &PoolProfiler::disabled(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A job panicking at any single index is isolated: every other job
    /// still completes, and the error names exactly the failed index.
    #[test]
    fn panicking_job_at_every_index_is_isolated(
        jobs in 1usize..12,
        threads in 1usize..9,
    ) {
        install_quiet_panic_hook();
        for bad in 0..jobs {
            let hits: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
            let err = run_jobs_isolated(threads, jobs, &PoolProfiler::disabled(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                if i == bad {
                    panic!("injected: job {i} down");
                }
            })
            .unwrap_err();
            match err {
                PoolError::JobsPanicked { panics, completed, total, .. } => {
                    prop_assert_eq!(panics.len(), 1);
                    prop_assert_eq!(panics[0].index, bad);
                    prop_assert_eq!(panics[0].attempts, 1);
                    prop_assert!(panics[0].message.contains("injected"));
                    prop_assert_eq!(completed, jobs - 1);
                    prop_assert_eq!(total, jobs);
                }
                other => prop_assert!(false, "unexpected error {other:?}"),
            }
            // Isolation: every index was attempted exactly once.
            for (i, h) in hits.iter().enumerate() {
                prop_assert_eq!(h.load(Ordering::Relaxed), 1, "job {} attempts", i);
            }
        }
    }

    /// Multiple panicking jobs are all collected, sorted by index.
    #[test]
    fn all_panics_are_collected_and_sorted(
        jobs in 2usize..24,
        threads in 1usize..9,
        stride in 2usize..5,
    ) {
        install_quiet_panic_hook();
        let err = run_jobs_isolated(threads, jobs, &PoolProfiler::disabled(), |i| {
            if i % stride == 0 {
                panic!("injected: job {i} down");
            }
        })
        .unwrap_err();
        let expect: Vec<usize> = (0..jobs).filter(|i| i % stride == 0).collect();
        match err {
            PoolError::JobsPanicked { panics, completed, .. } => {
                let got: Vec<usize> = panics.iter().map(|p| p.index).collect();
                prop_assert_eq!(&got, &expect);
                prop_assert_eq!(completed, jobs - expect.len());
            }
            other => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}

#[test]
fn bounded_retry_recovers_a_flaky_job() {
    install_quiet_panic_hook();
    for threads in THREADS {
        let sink = Telemetry::enabled();
        let prof = PoolProfiler::new(sink.clone(), "flaky").with_guard(GuardPolicy {
            retries: 2,
            deadline: None,
        });
        let failures_left = AtomicU64::new(2); // job 3 fails twice, then works
        let used = run_jobs_isolated(threads, 8, &prof, |i| {
            if i == 3 {
                let left = failures_left.load(Ordering::Relaxed);
                if left > 0 {
                    failures_left.store(left - 1, Ordering::Relaxed);
                    panic!("injected: transient");
                }
            }
        })
        .unwrap();
        assert!(used >= 1);
        let s = sink.summary();
        assert_eq!(s.counter("pool.job_panics"), 2);
        assert_eq!(s.counter("pool.job_retries"), 2);
        assert_eq!(s.counter("pool.jobs"), 8); // lane accounting sees the successes
        failures_left.store(2, Ordering::Relaxed);
    }
}

#[test]
fn retries_exhausted_reports_attempt_count() {
    install_quiet_panic_hook();
    let prof = PoolProfiler::disabled().with_guard(GuardPolicy {
        retries: 3,
        deadline: None,
    });
    let err = run_jobs_isolated(2, 4, &prof, |i| {
        if i == 1 {
            panic!("injected: persistent");
        }
    })
    .unwrap_err();
    match err {
        PoolError::JobsPanicked { panics, .. } => {
            assert_eq!(panics.len(), 1);
            assert_eq!(panics[0].attempts, 4); // 1 try + 3 retries
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn watchdog_deadline_stops_claiming() {
    let sink = Telemetry::enabled();
    let prof = PoolProfiler::new(sink.clone(), "slowpool").with_guard(GuardPolicy {
        retries: 0,
        deadline: Some(Duration::from_millis(5)),
    });
    // Single worker, each job sleeps well past the deadline: job 0 runs to
    // completion (never interrupted), later claims are refused.
    let err = run_jobs_isolated(1, 64, &prof, |_| {
        std::thread::sleep(Duration::from_millis(20));
    })
    .unwrap_err();
    match err {
        PoolError::DeadlineExceeded {
            completed, total, ..
        } => {
            assert!(completed >= 1 && completed < total);
            assert_eq!(total, 64);
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert_eq!(sink.summary().counter("pool.deadline_exceeded"), 1);
}

#[test]
fn injected_slowdown_trips_the_watchdog() {
    // A `slow` fault at every pool job plus a short deadline: the watchdog
    // must fire — this is the recovery pairing the faults module documents.
    let inj = FaultInjector::parse("slow:20@pool.victim#*").unwrap();
    let prof = PoolProfiler::new(Telemetry::disabled(), "victim")
        .with_faults(inj)
        .with_guard(GuardPolicy {
            retries: 0,
            deadline: Some(Duration::from_millis(5)),
        });
    let err = run_jobs_isolated(1, 32, &prof, |_| {}).unwrap_err();
    assert!(matches!(err, PoolError::DeadlineExceeded { .. }));
}

#[test]
fn injected_pool_panic_is_reported_with_site() {
    install_quiet_panic_hook();
    let inj = FaultInjector::parse("panic@pool.conv2/wino.gemm#2").unwrap();
    let prof = PoolProfiler::new(Telemetry::disabled(), "conv2")
        .with_faults(inj)
        .scoped("wino.gemm");
    let err = run_jobs_isolated(1, 8, &prof, |_| {}).unwrap_err();
    match err {
        PoolError::JobsPanicked {
            panics, completed, ..
        } => {
            assert_eq!(panics.len(), 1);
            assert_eq!(panics[0].index, 1); // occurrence 2 = second claim
            assert!(panics[0].message.contains("pool.conv2/wino.gemm"));
            assert_eq!(completed, 7);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn scoping_preserves_faults_without_telemetry() {
    install_quiet_panic_hook();
    let inj = FaultInjector::parse("panic@pool.conv2/wino.gemm#1").unwrap();
    let base = PoolProfiler::new(Telemetry::disabled(), "conv2").with_faults(inj);
    let prof = base.scoped("wino.gemm"); // label must join even when telemetry is off
    let err = run_jobs_isolated(2, 4, &prof, |_| {}).unwrap_err();
    assert!(matches!(err, PoolError::JobsPanicked { .. }));
}

#[test]
fn sliced_isolated_retry_rewrites_the_same_region() {
    install_quiet_panic_hook();
    for threads in THREADS {
        let mut data = vec![0u64; 60];
        let slices = split_chunks(&mut data, 6);
        let first_attempt_failed = AtomicU64::new(0);
        let prof = PoolProfiler::disabled().with_guard(GuardPolicy {
            retries: 1,
            deadline: None,
        });
        run_sliced_jobs_isolated(
            threads,
            slices,
            &prof,
            || (),
            |(), i, s| {
                // Job 4 writes half its slice, then dies once — the retry
                // must get the same slice back and complete the write.
                for (off, v) in s.iter_mut().enumerate() {
                    if i == 4 && off == 3 && first_attempt_failed.swap(1, Ordering::Relaxed) == 0 {
                        panic!("injected: mid-write crash");
                    }
                    *v = (i * 10 + off) as u64;
                }
            },
        )
        .unwrap();
        for (idx, v) in data.iter().enumerate() {
            assert_eq!(*v, ((idx / 6) * 10 + idx % 6) as u64, "element {idx}");
        }
    }
}

#[test]
fn sliced_isolated_panic_spares_sibling_slices() {
    install_quiet_panic_hook();
    for threads in THREADS {
        let mut data = vec![0u64; 50];
        let slices = split_chunks(&mut data, 5);
        let err = run_sliced_jobs_isolated(
            threads,
            slices,
            &PoolProfiler::disabled(),
            || (),
            |(), i, s| {
                if i == 2 {
                    panic!("injected: slice job down");
                }
                for v in s.iter_mut() {
                    *v = i as u64 + 1;
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, PoolError::JobsPanicked { .. }));
        for (idx, v) in data.iter().enumerate() {
            let job = idx / 5;
            let expect = if job == 2 { 0 } else { job as u64 + 1 };
            assert_eq!(*v, expect, "element {idx}");
        }
    }
}

#[test]
fn telemetry_parity_with_traced_pool() {
    // The isolated path must emit the same per-run counters the traced
    // path does, so switching kernels over cannot perturb profiling.
    let traced = Telemetry::enabled();
    let isolated = Telemetry::enabled();
    winofuse_runtime::run_jobs_traced(3, 17, &PoolProfiler::new(traced.clone(), "par"), |_| {
        std::hint::black_box(0u64);
    });
    run_jobs_isolated(3, 17, &PoolProfiler::new(isolated.clone(), "par"), |_| {
        std::hint::black_box(0u64);
    })
    .unwrap();
    let a = traced.summary();
    let b = isolated.summary();
    assert_eq!(a.counter("pool.jobs"), b.counter("pool.jobs"));
    assert_eq!(a.counter("pool.runs"), b.counter("pool.runs"));
    assert_eq!(
        a.histograms["pool.job_wait_us"].count,
        b.histograms["pool.job_wait_us"].count
    );
    assert_eq!(b.counter("pool.job_panics"), 0);
}
