//! # winofuse-runtime — the shared scoped worker pool
//!
//! Both halves of the system need the same minimal parallel substrate: the
//! strategy search fills its plan table from scoped workers, and the
//! execution backend spreads tile and output-channel blocks across cores.
//! This crate is that substrate — plain `std::thread::scope` workers pulling
//! job indices from an atomic counter, with longest-job-first ordering as a
//! scheduling helper. No work-stealing deques, no channels, no `unsafe`:
//! jobs are indices, and mutable state is handed out as pre-split disjoint
//! slices.
//!
//! Determinism contract: a job's *result* may only depend on its index,
//! never on which worker ran it or how many workers exist. Every helper
//! here preserves that property — the worker count changes wall-clock time
//! and nothing else — which is what lets `--threads N` default on without
//! perturbing bit-exact comparisons (see `tests/determinism.rs` and
//! `tests/conv_equiv.rs` at the workspace root).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use when the caller asks for "auto" (`threads == 0`):
/// the machine's available parallelism, or 1 when that cannot be
/// determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread request: `0` means auto-detect.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Runs `jobs` independent jobs (`f(index)` for `index` in `0..jobs`) on up
/// to `threads` scoped workers, returning the worker count actually used.
///
/// Workers pull indices in ascending order from a shared atomic counter, so
/// earlier jobs start no later than later ones — pair with
/// [`longest_first_order`] for longest-job-first scheduling. With one
/// worker (or one job) everything runs inline on the caller's thread.
pub fn run_jobs<F>(threads: usize, jobs: usize, f: F) -> usize
where
    F: Fn(usize) + Sync,
{
    let workers = threads.min(jobs).max(1);
    if workers <= 1 {
        for i in 0..jobs {
            f(i);
        }
        return workers;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                f(i);
            });
        }
    });
    workers
}

/// Like [`run_jobs`], but each job receives exclusive ownership of its
/// pre-split `&mut` slice — the safe way to let workers write disjoint
/// regions of one output buffer in parallel. Job `i` gets `slices[i]`.
///
/// Returns the worker count actually used.
pub fn run_sliced_jobs<T, F>(threads: usize, slices: Vec<&mut [T]>, f: F) -> usize
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    run_sliced_jobs_with(threads, slices, || (), |(), i, s| f(i, s))
}

/// [`run_sliced_jobs`] with per-worker scratch state: `init()` runs once on
/// each worker thread and the resulting state is threaded through every job
/// that worker executes. Use it to reuse allocation-heavy scratch (packed
/// GEMM panels, transform tiles) across jobs without sharing it across
/// workers.
///
/// Returns the worker count actually used.
pub fn run_sliced_jobs_with<T, S, I, F>(
    threads: usize,
    slices: Vec<&mut [T]>,
    init: I,
    f: F,
) -> usize
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let jobs = slices.len();
    let workers = threads.min(jobs).max(1);
    if workers <= 1 {
        let mut state = init();
        for (i, s) in slices.into_iter().enumerate() {
            f(&mut state, i, s);
        }
        return workers;
    }
    // Each slice is claimed exactly once through its mutex; the job index
    // comes from the same ascending atomic pull as `run_jobs`.
    let cells: Vec<Mutex<Option<&mut [T]>>> =
        slices.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let slice = cell
                        .lock()
                        .expect("job slice lock poisoned")
                        .take()
                        .expect("job slice claimed twice");
                    f(&mut state, i, slice);
                }
            });
        }
    });
    workers
}

/// Splits `data` into consecutive slices of the given lengths. The lengths
/// must sum to exactly `data.len()` — this is how a flat output buffer is
/// carved into the disjoint per-job regions [`run_sliced_jobs`] hands out.
///
/// # Panics
///
/// Panics when the lengths do not sum to `data.len()`.
pub fn split_lengths<'a, T>(mut data: &'a mut [T], lengths: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lengths.len());
    for &len in lengths {
        let (head, tail) = data.split_at_mut(len);
        out.push(head);
        data = tail;
    }
    assert!(data.is_empty(), "split_lengths: lengths do not cover data");
    out
}

/// Splits `data` into `⌈len/chunk⌉` consecutive slices of `chunk` elements
/// (the last possibly shorter). Convenience wrapper over `chunks_mut` that
/// collects into the `Vec` shape [`run_sliced_jobs`] expects.
///
/// # Panics
///
/// Panics when `chunk == 0`.
pub fn split_chunks<T>(data: &mut [T], chunk: usize) -> Vec<&mut [T]> {
    assert!(chunk > 0, "split_chunks: chunk must be positive");
    data.chunks_mut(chunk).collect()
}

/// Job order that schedules the heaviest jobs first: indices of `weights`
/// sorted by descending weight, ties broken by ascending index. Feeding
/// jobs to [`run_jobs`] in this order avoids tail stragglers when job costs
/// are skewed (the plan-table fill is the canonical case: range search cost
/// grows exponentially with range depth).
pub fn longest_first_order(weights: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn run_jobs_covers_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 8] {
            let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
            let used = run_jobs(threads, hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(used >= 1 && used <= threads.max(1));
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn run_jobs_with_zero_jobs_is_a_noop() {
        assert_eq!(run_jobs(4, 0, |_| panic!("no jobs to run")), 1);
    }

    #[test]
    fn sliced_jobs_write_disjoint_regions() {
        for threads in [1usize, 3, 8] {
            let mut data = vec![0u64; 100];
            let slices = split_chunks(&mut data, 7);
            run_sliced_jobs(threads, slices, |i, s| {
                for v in s.iter_mut() {
                    *v = i as u64 + 1;
                }
            });
            for (idx, v) in data.iter().enumerate() {
                assert_eq!(*v, (idx / 7) as u64 + 1);
            }
        }
    }

    #[test]
    fn sliced_jobs_state_is_per_worker() {
        // Worker-local state must never be shared: each job stamps its
        // slice with the state's running job count, so any cross-worker
        // sharing would produce counts exceeding the per-worker total.
        let total = AtomicU64::new(0);
        let mut data = vec![0u64; 64];
        let slices = split_chunks(&mut data, 1);
        run_sliced_jobs_with(
            4,
            slices,
            || 0u64,
            |state, _, s| {
                *state += 1;
                s[0] = *state;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 64);
        // No worker can have run more jobs than exist.
        assert!(data.iter().all(|&v| (1..=64).contains(&v)));
    }

    #[test]
    fn split_lengths_covers_buffer() {
        let mut data = vec![0u32; 10];
        let parts = split_lengths(&mut data, &[3, 0, 4, 3]);
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![3, 0, 4, 3]
        );
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn split_lengths_rejects_short_cover() {
        let mut data = vec![0u32; 10];
        let _ = split_lengths(&mut data, &[3, 3]);
    }

    #[test]
    fn longest_first_order_sorts_descending_with_stable_ties() {
        assert_eq!(longest_first_order(&[1, 9, 4, 9, 2]), vec![1, 3, 2, 4, 0]);
        assert_eq!(longest_first_order(&[]), Vec::<usize>::new());
    }
}
