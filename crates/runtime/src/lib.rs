//! # winofuse-runtime — the shared scoped worker pool
//!
//! Both halves of the system need the same minimal parallel substrate: the
//! strategy search fills its plan table from scoped workers, and the
//! execution backend spreads tile and output-channel blocks across cores.
//! This crate is that substrate — plain `std::thread::scope` workers pulling
//! job indices from an atomic counter, with longest-job-first ordering as a
//! scheduling helper. No work-stealing deques, no channels, no `unsafe`:
//! jobs are indices, and mutable state is handed out as pre-split disjoint
//! slices.
//!
//! Determinism contract: a job's *result* may only depend on its index,
//! never on which worker ran it or how many workers exist. Every helper
//! here preserves that property — the worker count changes wall-clock time
//! and nothing else — which is what lets `--threads N` default on without
//! perturbing bit-exact comparisons (see `tests/determinism.rs` and
//! `tests/conv_equiv.rs` at the workspace root).

pub mod faults;
pub mod serve;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use winofuse_telemetry::{Counter, Histogram, Telemetry, PID_WALL};

use faults::{describe_panic, FaultInjector};

/// First Chrome-trace thread id used for worker lanes: worker `w` emits
/// its job slices on `(PID_WALL, WORKER_TID_BASE + w)`. The base keeps
/// worker lanes clear of tid 1, where `Telemetry::span` puts the main
/// thread's wall-clock spans.
pub const WORKER_TID_BASE: u64 = 100;

// ---------------------------------------------------------------------------
// Pool profiler
// ---------------------------------------------------------------------------

/// Observability context for the worker pool: carries a [`Telemetry`]
/// handle plus a label that names the job spans it emits (e.g.
/// `"wino.scatter"` → slices `wino.scatter[0..n]` on the worker lanes).
///
/// A disabled profiler (the default, [`PoolProfiler::disabled`]) routes
/// every `*_traced` entry point straight to the uninstrumented loop — the
/// cost of instrumentation when telemetry is off is exactly one branch per
/// pool invocation.
#[derive(Clone)]
pub struct PoolProfiler {
    telemetry: Telemetry,
    label: Arc<str>,
    faults: FaultInjector,
    guard: GuardPolicy,
}

impl Default for PoolProfiler {
    fn default() -> Self {
        PoolProfiler::disabled()
    }
}

impl PoolProfiler {
    /// The no-op profiler: traced pool entry points fall back to the
    /// plain untraced path.
    pub fn disabled() -> Self {
        PoolProfiler {
            telemetry: Telemetry::disabled(),
            label: Arc::from("job"),
            faults: FaultInjector::disabled(),
            guard: GuardPolicy::default(),
        }
    }

    /// A profiler emitting onto `telemetry`, naming job spans `label[i]`.
    pub fn new(telemetry: Telemetry, label: &str) -> Self {
        PoolProfiler {
            telemetry,
            label: Arc::from(label),
            faults: FaultInjector::disabled(),
            guard: GuardPolicy::default(),
        }
    }

    /// A view of this profiler with `label` appended to the span label
    /// (`"conv3_1"` scoped by `"wino.gemm"` → spans `conv3_1/wino.gemm[i]`)
    /// — the cheap way to tag each kernel phase distinctly while sharing
    /// one telemetry registry. The fault injector and guard policy are
    /// always carried through (the joined label doubles as the pool's
    /// fault-injection site name, `pool.<label>`); when both telemetry and
    /// faults are off this allocates nothing.
    pub fn scoped(&self, label: &str) -> PoolProfiler {
        let mut out = self.clone();
        if self.is_enabled() || self.faults.is_enabled() {
            let joined = if self.label.is_empty() {
                label.to_string()
            } else {
                format!("{}/{label}", self.label)
            };
            out.label = Arc::from(joined.as_str());
        }
        out
    }

    /// Attaches a fault injector: the isolated pool entry points check the
    /// site `pool.<label>` before every job attempt.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the retry/deadline policy applied by the isolated entry points.
    pub fn with_guard(mut self, guard: GuardPolicy) -> Self {
        self.guard = guard;
        self
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    pub fn guard(&self) -> GuardPolicy {
        self.guard
    }

    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// Fault-injection hook run inside each isolated job attempt's
    /// `catch_unwind` region: checks (and applies) the `pool.<label>`
    /// site. One branch when no injector is attached.
    #[inline]
    fn trip_job(&self) {
        if self.faults.is_enabled() {
            self.faults.trip(&format!("pool.{}", self.label));
        }
    }
}

// ---------------------------------------------------------------------------
// Panic isolation: guard policy + pool errors
// ---------------------------------------------------------------------------

/// Retry/watchdog policy for the `*_isolated` pool entry points.
///
/// `retries` is the number of *additional* attempts a panicking job gets
/// before its panic is reported (jobs must be idempotent: every attempt
/// rewrites the job's full output region, which all kernels in this
/// workspace satisfy). `deadline` is a soft watchdog per pool invocation:
/// workers stop claiming new jobs once it has elapsed — an already-running
/// job is never interrupted, so the granularity is one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardPolicy {
    pub retries: u32,
    pub deadline: Option<Duration>,
}

/// One job's final (post-retry) panic, as collected by the isolated pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    pub index: usize,
    /// Total attempts made (1 = no retry).
    pub attempts: u32,
    pub message: String,
}

/// Failure of an isolated pool invocation. The pool itself never unwinds:
/// per-job panics are caught, retried per [`GuardPolicy`], and collected
/// here with the invocation's completion tally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// One or more jobs panicked on every attempt. `completed` counts the
    /// jobs that did finish — the pool drains all claimable work before
    /// reporting, so a single bad job never poisons its siblings.
    JobsPanicked {
        label: String,
        panics: Vec<JobPanic>,
        completed: usize,
        total: usize,
    },
    /// The watchdog deadline elapsed before all jobs were claimed.
    DeadlineExceeded {
        label: String,
        deadline: Duration,
        completed: usize,
        total: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobsPanicked {
                label,
                panics,
                completed,
                total,
            } => {
                let first = panics.first().expect("invariant: JobsPanicked is nonempty");
                write!(
                    f,
                    "pool `{label}`: {} of {total} jobs panicked ({completed} completed; \
                     first: job {} after {} attempt(s): {})",
                    panics.len(),
                    first.index,
                    first.attempts,
                    first.message
                )
            }
            PoolError::DeadlineExceeded {
                label,
                deadline,
                completed,
                total,
            } => write!(
                f,
                "pool `{label}`: deadline {deadline:?} exceeded with {completed}/{total} jobs completed"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// Per-invocation shared state for an instrumented pool run: cached
/// counter/histogram handles plus the pool start time that queue waits are
/// measured from.
struct PoolRun<'a> {
    prof: &'a PoolProfiler,
    start: Instant,
    jobs: Counter,
    runs: Counter,
    idle_ns: Counter,
    worker_busy_ns: Histogram,
    job_wait_us: Histogram,
}

impl<'a> PoolRun<'a> {
    fn start(prof: &'a PoolProfiler) -> Self {
        let t = &prof.telemetry;
        let run = PoolRun {
            prof,
            start: Instant::now(),
            jobs: t.counter("pool.jobs"),
            runs: t.counter("pool.runs"),
            idle_ns: t.counter("pool.idle_ns"),
            worker_busy_ns: t.histogram("pool.worker_busy_ns"),
            job_wait_us: t.histogram("pool.job_wait_us"),
        };
        run.runs.incr();
        run
    }

    fn lane(&self, worker: usize) -> WorkerLane<'_> {
        let tid = WORKER_TID_BASE + worker as u64;
        self.prof
            .telemetry
            .name_thread_once(PID_WALL, tid, &format!("worker {worker}"));
        WorkerLane {
            run: self,
            tid,
            busy_ns: 0,
            jobs: 0,
        }
    }
}

/// One worker's view of an instrumented pool run. Accumulates busy time
/// locally; `finish` folds it into the pool-level imbalance metrics.
struct WorkerLane<'a> {
    run: &'a PoolRun<'a>,
    tid: u64,
    busy_ns: u64,
    jobs: u64,
}

impl WorkerLane<'_> {
    /// Runs one job, emitting its complete slice on this worker's lane.
    /// The queue wait (pool start → claim) lands in `pool.job_wait_us`;
    /// the slice name carries the job index.
    fn run_job(&mut self, index: usize, f: impl FnOnce()) {
        let wait_us = self.run.start.elapsed().as_micros() as u64;
        let ts = self.run.prof.telemetry.now_us();
        let t0 = Instant::now();
        f();
        let elapsed = t0.elapsed();
        self.busy_ns += elapsed.as_nanos() as u64;
        self.jobs += 1;
        self.run.job_wait_us.record(wait_us);
        self.run.prof.telemetry.slice_at(
            "pool",
            &format!("{}[{index}]", self.run.prof.label),
            PID_WALL,
            self.tid,
            ts,
            elapsed.as_micros() as u64,
        );
    }

    /// Called when the worker's claim loop ends: records this worker's
    /// busy time (the min/max spread of `pool.worker_busy_ns` within one
    /// run is the imbalance) and charges the unproductive remainder of
    /// its lifetime to `pool.idle_ns`.
    fn finish(self) {
        let lifetime_ns = self.run.start.elapsed().as_nanos() as u64;
        self.run.jobs.add(self.jobs);
        self.run.worker_busy_ns.record(self.busy_ns);
        self.run
            .idle_ns
            .add(lifetime_ns.saturating_sub(self.busy_ns));
    }
}

/// Worker threads to use when the caller asks for "auto" (`threads == 0`):
/// the machine's available parallelism, or 1 when that cannot be
/// determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread request: `0` means auto-detect.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Runs `jobs` independent jobs (`f(index)` for `index` in `0..jobs`) on up
/// to `threads` scoped workers, returning the worker count actually used.
///
/// Workers pull indices in ascending order from a shared atomic counter, so
/// earlier jobs start no later than later ones — pair with
/// [`longest_first_order`] for longest-job-first scheduling. With one
/// worker (or one job) everything runs inline on the caller's thread.
pub fn run_jobs<F>(threads: usize, jobs: usize, f: F) -> usize
where
    F: Fn(usize) + Sync,
{
    let workers = threads.min(jobs).max(1);
    if workers <= 1 {
        for i in 0..jobs {
            f(i);
        }
        return workers;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                f(i);
            });
        }
    });
    workers
}

/// [`run_jobs`] with worker-lane tracing: when `prof` is enabled, each
/// worker emits one Chrome-trace complete slice per job on its own stable
/// tid ([`WORKER_TID_BASE`]` + worker`), and the pool-level counters
/// (`pool.jobs`, `pool.runs`, `pool.idle_ns`) and histograms
/// (`pool.worker_busy_ns`, `pool.job_wait_us`) accumulate. When `prof` is
/// disabled this is exactly [`run_jobs`] plus one branch.
pub fn run_jobs_traced<F>(threads: usize, jobs: usize, prof: &PoolProfiler, f: F) -> usize
where
    F: Fn(usize) + Sync,
{
    if !prof.is_enabled() {
        return run_jobs(threads, jobs, f);
    }
    let workers = threads.min(jobs).max(1);
    let run = PoolRun::start(prof);
    if workers <= 1 {
        let mut lane = run.lane(0);
        for i in 0..jobs {
            lane.run_job(i, || f(i));
        }
        lane.finish();
        return workers;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let run = &run;
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                let mut lane = run.lane(w);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    lane.run_job(i, || f(i));
                }
                lane.finish();
            });
        }
    });
    workers
}

/// Like [`run_jobs`], but each job receives exclusive ownership of its
/// pre-split `&mut` slice — the safe way to let workers write disjoint
/// regions of one output buffer in parallel. Job `i` gets `slices[i]`.
///
/// Returns the worker count actually used.
pub fn run_sliced_jobs<T, F>(threads: usize, slices: Vec<&mut [T]>, f: F) -> usize
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    run_sliced_jobs_with(threads, slices, || (), |(), i, s| f(i, s))
}

/// [`run_sliced_jobs`] with per-worker scratch state: `init()` runs once on
/// each worker thread and the resulting state is threaded through every job
/// that worker executes. Use it to reuse allocation-heavy scratch (packed
/// GEMM panels, transform tiles) across jobs without sharing it across
/// workers.
///
/// Returns the worker count actually used.
pub fn run_sliced_jobs_with<T, S, I, F>(
    threads: usize,
    slices: Vec<&mut [T]>,
    init: I,
    f: F,
) -> usize
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let jobs = slices.len();
    let workers = threads.min(jobs).max(1);
    if workers <= 1 {
        let mut state = init();
        for (i, s) in slices.into_iter().enumerate() {
            f(&mut state, i, s);
        }
        return workers;
    }
    // Each slice is claimed exactly once through its mutex; the job index
    // comes from the same ascending atomic pull as `run_jobs`.
    let cells: Vec<Mutex<Option<&mut [T]>>> =
        slices.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let slice = cell
                        .lock()
                        .expect("job slice lock poisoned")
                        .take()
                        .expect("job slice claimed twice");
                    f(&mut state, i, slice);
                }
            });
        }
    });
    workers
}

/// [`run_sliced_jobs_with`] with worker-lane tracing — the sliced
/// counterpart of [`run_jobs_traced`], with identical metrics and lanes.
/// When `prof` is disabled this is exactly [`run_sliced_jobs_with`] plus
/// one branch.
pub fn run_sliced_jobs_with_traced<T, S, I, F>(
    threads: usize,
    slices: Vec<&mut [T]>,
    prof: &PoolProfiler,
    init: I,
    f: F,
) -> usize
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    if !prof.is_enabled() {
        return run_sliced_jobs_with(threads, slices, init, f);
    }
    let jobs = slices.len();
    let workers = threads.min(jobs).max(1);
    let run = PoolRun::start(prof);
    if workers <= 1 {
        let mut state = init();
        let mut lane = run.lane(0);
        for (i, s) in slices.into_iter().enumerate() {
            lane.run_job(i, || f(&mut state, i, s));
        }
        lane.finish();
        return workers;
    }
    let cells: Vec<Mutex<Option<&mut [T]>>> =
        slices.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let run = &run;
            let next = &next;
            let cells = &cells;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                let mut lane = run.lane(w);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let slice = cell
                        .lock()
                        .expect("job slice lock poisoned")
                        .take()
                        .expect("job slice claimed twice");
                    lane.run_job(i, || f(&mut state, i, slice));
                }
                lane.finish();
            });
        }
    });
    workers
}

// ---------------------------------------------------------------------------
// Panic-isolated pool entry points
// ---------------------------------------------------------------------------

/// Shared bookkeeping for one isolated pool invocation.
struct IsolatedRun {
    start: Instant,
    completed: AtomicUsize,
    deadline_hit: AtomicBool,
    panics: Mutex<Vec<JobPanic>>,
}

impl IsolatedRun {
    fn new() -> Self {
        IsolatedRun {
            start: Instant::now(),
            completed: AtomicUsize::new(0),
            deadline_hit: AtomicBool::new(false),
            panics: Mutex::new(Vec::new()),
        }
    }

    /// Watchdog check before a claim: true = stop claiming.
    fn past_deadline(&self, guard: GuardPolicy) -> bool {
        match guard.deadline {
            Some(d) if self.start.elapsed() > d => {
                self.deadline_hit.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Runs one job attempt loop: `catch_unwind` around every attempt,
    /// bounded retry per `guard`, telemetry on the rare path only.
    fn attempt_job(
        &self,
        prof: &PoolProfiler,
        index: usize,
        guard: GuardPolicy,
        mut run: impl FnMut(),
    ) {
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            match catch_unwind(AssertUnwindSafe(|| {
                prof.trip_job();
                run();
            })) {
                Ok(()) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(payload) => {
                    prof.telemetry.counter("pool.job_panics").incr();
                    if attempt <= guard.retries {
                        prof.telemetry.counter("pool.job_retries").incr();
                        continue;
                    }
                    self.panics
                        .lock()
                        .expect("invariant: job panic list lock never poisoned")
                        .push(JobPanic {
                            index,
                            attempts: attempt,
                            message: describe_panic(payload.as_ref()),
                        });
                    return;
                }
            }
        }
    }

    /// Folds the invocation into a result, emitting the deadline counter
    /// when the watchdog fired.
    fn finish(self, prof: &PoolProfiler, workers: usize, total: usize) -> Result<usize, PoolError> {
        let mut panics = self
            .panics
            .into_inner()
            .expect("invariant: job panic list lock never poisoned");
        let completed = self.completed.into_inner();
        if !panics.is_empty() {
            panics.sort_by_key(|p| p.index);
            return Err(PoolError::JobsPanicked {
                label: prof.label.to_string(),
                panics,
                completed,
                total,
            });
        }
        if self.deadline_hit.into_inner() && completed < total {
            prof.telemetry.counter("pool.deadline_exceeded").incr();
            return Err(PoolError::DeadlineExceeded {
                label: prof.label.to_string(),
                deadline: prof
                    .guard
                    .deadline
                    .expect("invariant: deadline_hit implies deadline set"),
                completed,
                total,
            });
        }
        Ok(workers)
    }
}

/// [`run_jobs_traced`] with per-job panic isolation: every job attempt runs
/// inside `catch_unwind`, panicking jobs are retried per the profiler's
/// [`GuardPolicy`] and finally *collected* instead of unwinding through the
/// pool — one bad job never poisons its siblings, and the caller gets a
/// typed [`PoolError`] naming every failed index. An optional watchdog
/// deadline stops workers from claiming new jobs once elapsed.
///
/// Telemetry parity: with an enabled profiler this emits exactly the lanes
/// and counters of [`run_jobs_traced`], plus `pool.job_panics` /
/// `pool.job_retries` / `pool.deadline_exceeded` on the respective rare
/// paths. Fault injection (see [`faults`]) checks site `pool.<label>`
/// before each attempt.
///
/// # Errors
///
/// [`PoolError::JobsPanicked`] when any job panicked on all attempts;
/// [`PoolError::DeadlineExceeded`] when the watchdog cut the run short.
pub fn run_jobs_isolated<F>(
    threads: usize,
    jobs: usize,
    prof: &PoolProfiler,
    f: F,
) -> Result<usize, PoolError>
where
    F: Fn(usize) + Sync,
{
    let workers = threads.min(jobs).max(1);
    if jobs == 0 {
        return Ok(workers);
    }
    let guard = prof.guard;
    let run = prof.is_enabled().then(|| PoolRun::start(prof));
    let iso = IsolatedRun::new();
    let next = AtomicUsize::new(0);
    let worker = |w: usize| {
        let mut lane = run.as_ref().map(|r| r.lane(w));
        loop {
            if iso.past_deadline(guard) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            iso.attempt_job(prof, i, guard, || match lane.as_mut() {
                Some(l) => l.run_job(i, || f(i)),
                None => f(i),
            });
        }
        if let Some(l) = lane {
            l.finish();
        }
    };
    if workers <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let worker = &worker;
                scope.spawn(move || worker(w));
            }
        });
    }
    iso.finish(prof, workers, jobs)
}

/// [`run_sliced_jobs_with_traced`] with the panic isolation, retry, and
/// watchdog semantics of [`run_jobs_isolated`]. A retried job gets its
/// slice back (reborrowed), so retries rewrite the same disjoint region.
///
/// # Errors
///
/// Same conditions as [`run_jobs_isolated`].
pub fn run_sliced_jobs_isolated<T, S, I, F>(
    threads: usize,
    slices: Vec<&mut [T]>,
    prof: &PoolProfiler,
    init: I,
    f: F,
) -> Result<usize, PoolError>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let jobs = slices.len();
    let workers = threads.min(jobs).max(1);
    if jobs == 0 {
        return Ok(workers);
    }
    let guard = prof.guard;
    let run = prof.is_enabled().then(|| PoolRun::start(prof));
    let iso = IsolatedRun::new();
    let cells: Vec<Mutex<Option<&mut [T]>>> =
        slices.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    let worker = |w: usize| {
        let mut state = init();
        let mut lane = run.as_ref().map(|r| r.lane(w));
        loop {
            if iso.past_deadline(guard) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(cell) = cells.get(i) else { break };
            let slice = cell
                .lock()
                .expect("invariant: slice cell lock never poisoned")
                .take()
                .expect("invariant: each slice cell is claimed exactly once");
            iso.attempt_job(prof, i, guard, || {
                let s: &mut [T] = slice;
                match lane.as_mut() {
                    Some(l) => l.run_job(i, || f(&mut state, i, s)),
                    None => f(&mut state, i, s),
                }
            });
        }
        if let Some(l) = lane {
            l.finish();
        }
    };
    if workers <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let worker = &worker;
                scope.spawn(move || worker(w));
            }
        });
    }
    iso.finish(prof, workers, jobs)
}

/// [`run_sliced_jobs_isolated`] for jobs that own a *group* of disjoint
/// output fragments instead of one contiguous slice — the shape a
/// tile-block Winograd job has, owning the same output rows across every
/// channel plane of an NCHW tensor. Build the groups with [`split_spans`].
///
/// Panic isolation, retry, and watchdog semantics match
/// [`run_jobs_isolated`]; a retried job gets its whole fragment group back
/// (reborrowed), so retries rewrite the same disjoint regions.
///
/// # Errors
///
/// Same conditions as [`run_jobs_isolated`].
pub fn run_grouped_jobs_isolated<T, S, I, F>(
    threads: usize,
    groups: Vec<Vec<&mut [T]>>,
    prof: &PoolProfiler,
    init: I,
    f: F,
) -> Result<usize, PoolError>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [&mut [T]]) + Sync,
{
    let jobs = groups.len();
    let workers = threads.min(jobs).max(1);
    if jobs == 0 {
        return Ok(workers);
    }
    let guard = prof.guard;
    let run = prof.is_enabled().then(|| PoolRun::start(prof));
    let iso = IsolatedRun::new();
    let cells: Vec<Mutex<Option<Vec<&mut [T]>>>> =
        groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
    let next = AtomicUsize::new(0);
    let worker = |w: usize| {
        let mut state = init();
        let mut lane = run.as_ref().map(|r| r.lane(w));
        loop {
            if iso.past_deadline(guard) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(cell) = cells.get(i) else { break };
            let mut group = cell
                .lock()
                .expect("invariant: group cell lock never poisoned")
                .take()
                .expect("invariant: each group cell is claimed exactly once");
            iso.attempt_job(prof, i, guard, || {
                let g: &mut [&mut [T]] = &mut group;
                match lane.as_mut() {
                    Some(l) => l.run_job(i, || f(&mut state, i, g)),
                    None => f(&mut state, i, g),
                }
            });
        }
        if let Some(l) = lane {
            l.finish();
        }
    };
    if workers <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let worker = &worker;
                scope.spawn(move || worker(w));
            }
        });
    }
    iso.finish(prof, workers, jobs)
}

/// Carves `data` into per-owner fragment groups for
/// [`run_grouped_jobs_isolated`]: `spans` lists `(owner, len)` pairs in
/// memory order covering all of `data`, and the returned `Vec` holds, for
/// each owner `0..owners`, its fragments in memory order. Owners may
/// interleave arbitrarily in the span list — that is the point: a job can
/// own non-contiguous regions (e.g. the same rows of every channel plane)
/// with no `unsafe` and no copying.
///
/// # Panics
///
/// Panics when the span lengths do not sum to `data.len()` or an owner
/// index is out of range.
pub fn split_spans<'a, T>(
    mut data: &'a mut [T],
    spans: &[(usize, usize)],
    owners: usize,
) -> Vec<Vec<&'a mut [T]>> {
    let mut groups: Vec<Vec<&'a mut [T]>> = (0..owners).map(|_| Vec::new()).collect();
    for &(owner, len) in spans {
        let (head, tail) = data.split_at_mut(len);
        groups[owner].push(head);
        data = tail;
    }
    assert!(data.is_empty(), "split_spans: spans do not cover data");
    groups
}

/// Splits `data` into consecutive slices of the given lengths. The lengths
/// must sum to exactly `data.len()` — this is how a flat output buffer is
/// carved into the disjoint per-job regions [`run_sliced_jobs`] hands out.
///
/// # Panics
///
/// Panics when the lengths do not sum to `data.len()`.
pub fn split_lengths<'a, T>(mut data: &'a mut [T], lengths: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lengths.len());
    for &len in lengths {
        let (head, tail) = data.split_at_mut(len);
        out.push(head);
        data = tail;
    }
    assert!(data.is_empty(), "split_lengths: lengths do not cover data");
    out
}

/// Splits `data` into `⌈len/chunk⌉` consecutive slices of `chunk` elements
/// (the last possibly shorter). Convenience wrapper over `chunks_mut` that
/// collects into the `Vec` shape [`run_sliced_jobs`] expects.
///
/// # Panics
///
/// Panics when `chunk == 0`.
pub fn split_chunks<T>(data: &mut [T], chunk: usize) -> Vec<&mut [T]> {
    assert!(chunk > 0, "split_chunks: chunk must be positive");
    data.chunks_mut(chunk).collect()
}

/// Job order that schedules the heaviest jobs first: indices of `weights`
/// sorted by descending weight, ties broken by ascending index. Feeding
/// jobs to [`run_jobs`] in this order avoids tail stragglers when job costs
/// are skewed (the plan-table fill is the canonical case: range search cost
/// grows exponentially with range depth).
pub fn longest_first_order(weights: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn split_spans_groups_interleaved_owners() {
        let mut data: Vec<u32> = (0..10).collect();
        // Owner 0 gets [0..2) and [5..8); owner 1 gets [2..5) and [8..10).
        let groups = split_spans(&mut data, &[(0, 2), (1, 3), (0, 3), (1, 2)], 2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![&[0, 1][..], &[5, 6, 7][..]]);
        assert_eq!(groups[1], vec![&[2, 3, 4][..], &[8, 9][..]]);
    }

    #[test]
    #[should_panic(expected = "spans do not cover data")]
    fn split_spans_rejects_short_cover() {
        let mut data = [0u8; 4];
        let _ = split_spans(&mut data, &[(0, 2)], 1);
    }

    #[test]
    fn grouped_jobs_write_all_fragments_at_any_thread_count() {
        for threads in [1usize, 2, 4, 8] {
            let mut data = vec![0usize; 24];
            // Each of 4 owners holds two fragments of 3, interleaved.
            let spans: Vec<(usize, usize)> = (0..8).map(|i| (i % 4, 3)).collect();
            let groups = split_spans(&mut data, &spans, 4);
            let prof = PoolProfiler::disabled();
            let workers = run_grouped_jobs_isolated(
                threads,
                groups,
                &prof,
                || (),
                |(), job, frags| {
                    for frag in frags.iter_mut() {
                        for v in frag.iter_mut() {
                            *v = job + 1;
                        }
                    }
                },
            )
            .unwrap();
            assert!(workers >= 1);
            let expect: Vec<usize> = (0..8).flat_map(|i| [i % 4 + 1; 3]).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn grouped_jobs_isolate_panics() {
        let mut data = vec![0u8; 6];
        let groups = split_spans(&mut data, &[(0, 2), (1, 2), (2, 2)], 3);
        let prof = PoolProfiler::disabled();
        let err = run_grouped_jobs_isolated(
            2,
            groups,
            &prof,
            || (),
            |(), job, frags| {
                if job == 1 {
                    panic!("boom");
                }
                frags[0].fill(7);
            },
        )
        .unwrap_err();
        match err {
            PoolError::JobsPanicked {
                panics, completed, ..
            } => {
                assert_eq!(panics.len(), 1);
                assert_eq!(panics[0].index, 1);
                assert_eq!(completed, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Healthy siblings still ran.
        assert_eq!(data, vec![7, 7, 0, 0, 7, 7]);
    }

    #[test]
    fn run_jobs_covers_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 8] {
            let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
            let used = run_jobs(threads, hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(used >= 1 && used <= threads.max(1));
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn run_jobs_with_zero_jobs_is_a_noop() {
        assert_eq!(run_jobs(4, 0, |_| panic!("no jobs to run")), 1);
    }

    #[test]
    fn sliced_jobs_write_disjoint_regions() {
        for threads in [1usize, 3, 8] {
            let mut data = vec![0u64; 100];
            let slices = split_chunks(&mut data, 7);
            run_sliced_jobs(threads, slices, |i, s| {
                for v in s.iter_mut() {
                    *v = i as u64 + 1;
                }
            });
            for (idx, v) in data.iter().enumerate() {
                assert_eq!(*v, (idx / 7) as u64 + 1);
            }
        }
    }

    #[test]
    fn sliced_jobs_state_is_per_worker() {
        // Worker-local state must never be shared: each job stamps its
        // slice with the state's running job count, so any cross-worker
        // sharing would produce counts exceeding the per-worker total.
        let total = AtomicU64::new(0);
        let mut data = vec![0u64; 64];
        let slices = split_chunks(&mut data, 1);
        run_sliced_jobs_with(
            4,
            slices,
            || 0u64,
            |state, _, s| {
                *state += 1;
                s[0] = *state;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 64);
        // No worker can have run more jobs than exist.
        assert!(data.iter().all(|&v| (1..=64).contains(&v)));
    }

    #[test]
    fn traced_pool_counts_jobs_and_emits_worker_lanes() {
        use winofuse_telemetry::VecSink;
        for threads in [1usize, 3] {
            let sink = VecSink::default();
            let events = sink.0.clone();
            let tele = Telemetry::with_sink(Box::new(sink));
            let prof = PoolProfiler::new(tele.clone(), "test.job");
            let jobs = 17;
            let used = run_jobs_traced(threads, jobs, &prof, |_| {
                std::hint::black_box(0u64);
            });

            let s = tele.summary();
            assert_eq!(s.counter("pool.jobs"), jobs as u64);
            assert_eq!(s.counter("pool.runs"), 1);
            assert_eq!(s.histograms["pool.worker_busy_ns"].count, used as u64);
            assert_eq!(s.histograms["pool.job_wait_us"].count, jobs as u64);

            let events = events.lock().unwrap();
            let slices: Vec<_> = events.iter().filter(|e| e.phase == 'X').collect();
            assert_eq!(slices.len(), jobs);
            let mut seen: Vec<usize> = slices
                .iter()
                .map(|e| {
                    assert_eq!(e.pid, PID_WALL);
                    assert!(e.tid >= WORKER_TID_BASE);
                    assert!(e.tid < WORKER_TID_BASE + used as u64);
                    assert!(e.dur.is_some());
                    let open = e.name.find('[').expect("indexed name");
                    e.name[open + 1..e.name.len() - 1].parse().unwrap()
                })
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..jobs).collect::<Vec<_>>());
            // One thread_name metadata record per distinct worker lane.
            let lanes = events.iter().filter(|e| e.phase == 'M').count();
            assert_eq!(lanes, used);
        }
    }

    #[test]
    fn traced_sliced_pool_matches_untraced_results() {
        let tele = Telemetry::enabled();
        let prof = PoolProfiler::new(tele.clone(), "sliced");
        let mut data = vec![0u64; 100];
        let slices = split_chunks(&mut data, 7);
        run_sliced_jobs_with_traced(
            3,
            slices,
            &prof,
            || (),
            |(), i, s| {
                for v in s.iter_mut() {
                    *v = i as u64 + 1;
                }
            },
        );
        for (idx, v) in data.iter().enumerate() {
            assert_eq!(*v, (idx / 7) as u64 + 1);
        }
        let s = tele.summary();
        assert_eq!(s.counter("pool.jobs"), 15);
    }

    #[test]
    fn disabled_profiler_registers_nothing() {
        let prof = PoolProfiler::disabled();
        assert!(!prof.is_enabled());
        let hits = AtomicU64::new(0);
        run_jobs_traced(4, 8, &prof, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert_eq!(prof.telemetry().summary().counters.len(), 0);
        // A scoped view of a disabled profiler stays disabled.
        assert!(!prof.scoped("phase").is_enabled());
    }

    #[test]
    fn split_lengths_covers_buffer() {
        let mut data = vec![0u32; 10];
        let parts = split_lengths(&mut data, &[3, 0, 4, 3]);
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![3, 0, 4, 3]
        );
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn split_lengths_rejects_short_cover() {
        let mut data = vec![0u32; 10];
        let _ = split_lengths(&mut data, &[3, 3]);
    }

    #[test]
    fn longest_first_order_sorts_descending_with_stable_ties() {
        assert_eq!(longest_first_order(&[1, 9, 4, 9, 2]), vec![1, 3, 2, 4, 0]);
        assert_eq!(longest_first_order(&[]), Vec::<usize>::new());
    }
}
