//! Deterministic fault injection for the execution stack.
//!
//! A [`FaultInjector`] is a small, clonable table of *rules*, each firing a
//! [`FaultKind`] at a reproducible `(site, occurrence)` point. Sites are
//! plain strings named by the code that hosts the injection point (the pool
//! checks `pool.<label>` before every job claim; the executor checks
//! `exec.<layer>`; the fused runner checks `fused.group<start>` and
//! `fused.dram<start>`). Every rule carries its own atomic occurrence
//! counter, so "the 3rd time site X is reached" is exact and — because all
//! pool claims and layer boundaries are sequenced deterministically — the
//! same fault fires at the same point regardless of worker count.
//!
//! # Spec grammar
//!
//! ```text
//! spec  := rule (',' rule)*
//! rule  := kind '@' site [ '#' occ ]
//! kind  := 'panic' | 'slow:<ms>' | 'sat' | 'dram:<±bytes>'
//! site  := literal site name; a trailing '*' makes it a prefix match
//! occ   := <n>      fire on the n-th occurrence only (1-based; default 1)
//!        | '*'      fire on every occurrence
//!        | 's<seed>' fire on a seed-derived occurrence in 1..=16
//! ```
//!
//! Examples: `panic@pool.conv2/wino.gemm#1` panics the first Winograd GEMM
//! job of layer `conv2`; `dram:-128@fused.dram*#*` removes 128 bytes from
//! every fused group's DRAM meter; `sat@exec.conv3#s7` reports a Winograd
//! -domain saturation at layer `conv3` on an occurrence derived from seed 7.
//!
//! The disabled injector (the default) costs one branch per check — the
//! same contract as the disabled [`crate::PoolProfiler`].

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (payload is an [`InjectedFault`]). Models a kernel
    /// crash; exercised recovery path: per-job isolation + algorithm
    /// fallback.
    Panic,
    /// Sleep for the given duration at the site. Models a straggler job;
    /// exercised recovery path: the pool watchdog deadline.
    Slow(Duration),
    /// Report a fix16 saturation burst at the site. Models Winograd-domain
    /// overflow; exercised recovery path: re-run on the direct path.
    Saturate,
    /// Perturb a DRAM byte meter by the given signed delta. Exercised
    /// recovery path: lenient-mode downgrade of the fused group.
    DramDelta(i64),
}

/// When a rule fires relative to its own occurrence counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireAt {
    /// Fire on exactly the n-th occurrence (1-based).
    Nth(u64),
    /// Fire on every occurrence.
    Every,
    /// Fire on one occurrence in `1..=16`, derived deterministically from
    /// `(seed, site-pattern)` — reproducible pseudo-random placement.
    Seeded(u64),
}

/// One parsed injection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Site name; a trailing `*` makes this a prefix pattern.
    pub site: String,
    pub fire: FireAt,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => site == self.site,
        }
    }

    fn fires_on(&self, occurrence: u64) -> bool {
        match self.fire {
            FireAt::Nth(n) => occurrence == n,
            FireAt::Every => true,
            FireAt::Seeded(seed) => occurrence == seeded_occurrence(seed, &self.site),
        }
    }
}

/// The occurrence (1..=16) a seeded rule fires on: FNV-1a over the seed and
/// the site pattern, folded into the window. Pure function of its inputs —
/// the whole point is that a chaos run is replayable from its spec string.
pub fn seeded_occurrence(seed: u64, site_pattern: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed.to_le_bytes().iter().chain(site_pattern.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    1 + h % 16
}

struct ArmedRule {
    rule: FaultRule,
    hits: AtomicU64,
}

struct InjectorState {
    rules: Vec<ArmedRule>,
    fired: AtomicU64,
}

/// A shared, thread-safe fault-rule table. Cloning shares the occurrence
/// counters, so one injector threaded through executor, runner, and pool
/// counts each site consistently. The default/disabled injector holds no
/// allocation and every check is a single `Option` branch.
#[derive(Clone, Default)]
pub struct FaultInjector(Option<Arc<InjectorState>>);

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "FaultInjector(disabled)"),
            Some(s) => write!(f, "FaultInjector({} rules)", s.rules.len()),
        }
    }
}

impl FaultInjector {
    /// The no-op injector: [`FaultInjector::check`] always returns `None`.
    pub fn disabled() -> Self {
        FaultInjector(None)
    }

    /// Builds an injector from already-parsed rules.
    pub fn from_rules(rules: Vec<FaultRule>) -> Self {
        if rules.is_empty() {
            return FaultInjector(None);
        }
        FaultInjector(Some(Arc::new(InjectorState {
            rules: rules
                .into_iter()
                .map(|rule| ArmedRule {
                    rule,
                    hits: AtomicU64::new(0),
                })
                .collect(),
            fired: AtomicU64::new(0),
        })))
    }

    /// Parses a spec string (see module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending rule on any syntax error.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            rules.push(parse_rule(raw)?);
        }
        if rules.is_empty() {
            return Err("empty fault spec".to_string());
        }
        Ok(FaultInjector::from_rules(rules))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one occurrence of `site` against every matching rule and
    /// returns the fault to apply, if any fired. The caller applies the
    /// effect ([`FaultInjector::trip`] does it inline for `Panic`/`Slow`).
    pub fn check(&self, site: &str) -> Option<FaultKind> {
        let state = self.0.as_ref()?;
        let mut fired = None;
        for armed in &state.rules {
            if !armed.rule.matches(site) {
                continue;
            }
            let occurrence = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if fired.is_none() && armed.rule.fires_on(occurrence) {
                state.fired.fetch_add(1, Ordering::Relaxed);
                fired = Some(armed.rule.kind);
            }
        }
        fired
    }

    /// [`FaultInjector::check`], applying `Panic` (via [`std::panic::panic_any`]
    /// with an [`InjectedFault`] payload) and `Slow` (sleep) inline.
    /// `Saturate` / `DramDelta` are returned for the caller to interpret.
    pub fn trip(&self, site: &str) -> Option<FaultKind> {
        match self.check(site) {
            Some(FaultKind::Panic) => std::panic::panic_any(InjectedFault {
                site: site.to_string(),
            }),
            Some(FaultKind::Slow(d)) => {
                std::thread::sleep(d);
                None
            }
            other => other,
        }
    }

    /// Total number of rule firings so far (all sites, all kinds).
    pub fn fired_count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }
}

fn parse_rule(raw: &str) -> Result<FaultRule, String> {
    let (kind_str, rest) = raw
        .split_once('@')
        .ok_or_else(|| format!("fault rule `{raw}`: expected `kind@site[#occ]`"))?;
    let (site, occ_str) = match rest.split_once('#') {
        Some((s, o)) => (s, Some(o)),
        None => (rest, None),
    };
    if site.is_empty() {
        return Err(format!("fault rule `{raw}`: empty site"));
    }
    let kind = match kind_str.split_once(':') {
        None => match kind_str {
            "panic" => FaultKind::Panic,
            "sat" => FaultKind::Saturate,
            "slow" => FaultKind::Slow(Duration::from_millis(1)),
            "dram" => {
                return Err(format!("fault rule `{raw}`: `dram` needs `:<±bytes>`"));
            }
            other => return Err(format!("fault rule `{raw}`: unknown kind `{other}`")),
        },
        Some(("slow", ms)) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("fault rule `{raw}`: bad slow duration `{ms}`"))?;
            FaultKind::Slow(Duration::from_millis(ms))
        }
        Some(("dram", delta)) => {
            let delta: i64 = delta
                .parse()
                .map_err(|_| format!("fault rule `{raw}`: bad dram delta `{delta}`"))?;
            FaultKind::DramDelta(delta)
        }
        Some((other, _)) => {
            return Err(format!("fault rule `{raw}`: kind `{other}` takes no arg"));
        }
    };
    let fire = match occ_str {
        None => FireAt::Nth(1),
        Some("*") => FireAt::Every,
        Some(o) => {
            if let Some(seed) = o.strip_prefix('s') {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("fault rule `{raw}`: bad seed `{o}`"))?;
                FireAt::Seeded(seed)
            } else {
                let n: u64 = o
                    .parse()
                    .map_err(|_| format!("fault rule `{raw}`: bad occurrence `{o}`"))?;
                if n == 0 {
                    return Err(format!("fault rule `{raw}`: occurrences are 1-based"));
                }
                FireAt::Nth(n)
            }
        }
    };
    Ok(FaultRule {
        kind,
        site: site.to_string(),
        fire,
    })
}

/// How detected faults are handled by the executor and the fused runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Convert every detected fault into a typed error and stop.
    Strict,
    /// Degrade gracefully: fall back to the next rung of the algorithm
    /// ladder (Winograd → direct, fused → unfused) and keep going,
    /// recording `exec.fallbacks` telemetry.
    Lenient,
}

impl std::str::FromStr for FaultMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(FaultMode::Strict),
            "lenient" => Ok(FaultMode::Lenient),
            other => Err(format!("fault mode `{other}`: expected strict|lenient")),
        }
    }
}

/// Panic payload used by injected `Panic` faults, and recognised by
/// [`describe_panic`] / the quiet panic hook.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    pub site: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

/// Renders a caught panic payload as a one-line message: handles `&str` /
/// `String` payloads (ordinary `panic!`) and [`InjectedFault`], falling
/// back to a generic label for anything else.
pub fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        f.to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for *expected* panics — [`InjectedFault`] payloads and
/// string payloads starting with `"injected"` — and delegates everything
/// else to the previously installed hook. Chaos runs and the fault-matrix
/// tests call this so recovered faults don't spray backtraces.
pub fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let expected = payload.is::<InjectedFault>()
                || payload
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.starts_with("injected"))
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("injected"));
            if !expected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let inj = FaultInjector::parse(
            "panic@pool.a#1,slow:5@pool.b#*,sat@exec.conv3#s7,dram:-128@fused.dram*#2",
        )
        .unwrap();
        assert!(inj.is_enabled());
        assert_eq!(inj.check("pool.a"), Some(FaultKind::Panic));
        assert_eq!(inj.check("pool.a"), None); // #1 only fires once
        assert_eq!(
            inj.check("pool.b"),
            Some(FaultKind::Slow(Duration::from_millis(5)))
        );
        assert_eq!(
            inj.check("pool.b"),
            Some(FaultKind::Slow(Duration::from_millis(5)))
        );
        assert_eq!(inj.check("fused.dram7"), None); // occurrence 1, rule wants 2
        assert_eq!(inj.check("fused.dram7"), Some(FaultKind::DramDelta(-128)));
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "",
            "panic",
            "panic@",
            "frob@site",
            "panic@site#0",
            "panic@site#x",
            "dram@site",
            "slow:abc@site",
            "panic:3@site",
        ] {
            assert!(FaultInjector::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn seeded_occurrence_is_deterministic_and_in_window() {
        let a = seeded_occurrence(7, "exec.conv3");
        assert_eq!(a, seeded_occurrence(7, "exec.conv3"));
        assert!((1..=16).contains(&a));
        // Different seeds disagree for at least one of a few sites.
        let moved = (0..8u64).any(|s| seeded_occurrence(s, "exec.conv3") != a);
        assert!(moved);
    }

    #[test]
    fn seeded_rule_fires_exactly_once() {
        let inj = FaultInjector::parse("sat@exec.c#s3").unwrap();
        let at = seeded_occurrence(3, "exec.c");
        let fired: Vec<u64> = (1..=16)
            .filter(|_| inj.check("exec.c") == Some(FaultKind::Saturate))
            .collect();
        assert_eq!(fired, vec![at]);
        assert_eq!(inj.fired_count(), 1);
    }

    #[test]
    fn prefix_patterns_match_and_counters_are_per_rule() {
        let inj = FaultInjector::parse("panic@pool.*#2").unwrap();
        // Occurrences accumulate across all sites matching the pattern.
        assert_eq!(inj.check("pool.x"), None);
        assert_eq!(inj.check("pool.y"), Some(FaultKind::Panic));
        assert_eq!(inj.check("other"), None);
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        assert_eq!(inj.check("anything"), None);
        assert_eq!(inj.trip("anything"), None);
        assert_eq!(inj.fired_count(), 0);
    }

    #[test]
    fn trip_panics_with_injected_payload() {
        let inj = FaultInjector::parse("panic@here").unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.trip("here");
        }))
        .unwrap_err();
        assert_eq!(describe_panic(err.as_ref()), "injected fault at here");
    }

    #[test]
    fn describe_panic_handles_common_payloads() {
        assert_eq!(describe_panic(&"boom"), "boom");
        assert_eq!(describe_panic(&String::from("boom")), "boom");
        assert_eq!(describe_panic(&42u32), "opaque panic payload");
    }
}
