//! Bounded request queue with deadline-based batch coalescing.
//!
//! The serving front end (`winofuse serve`) is a classic dynamic
//! batcher: producers push requests from any thread, one worker drains
//! them in batches of up to `max` items, waiting at most a batch-window
//! deadline after the first item arrives so a lone request is never
//! parked behind a timer that nothing else will fill. The queue is the
//! admission-control point — it is *bounded*, and a push against a full
//! queue fails fast with [`ServeError::Overloaded`] instead of growing an
//! unbounded backlog whose tail latency nobody can meet.
//!
//! Shutdown is a graceful drain: [`ServeQueue::close`] stops admission
//! immediately, while [`ServeQueue::pop_batch`] keeps handing out the
//! already-admitted items until the queue is empty and only then returns
//! `None`.
//!
//! Plain `Mutex` + `Condvar`, no channels: the queue state is one
//! `VecDeque` behind one lock, and both blocking operations are standard
//! condition-variable loops.
//!
//! Every lock acquisition recovers from poisoning: the serve worker runs
//! request batches under `catch_unwind`, so a panic while a producer or
//! the worker holds this lock must not condemn every *later* operation
//! to `PoisonError` panics — the queue's invariants are simple enough
//! (`VecDeque` plus a flag, both updated in single statements) that the
//! state is always consistent when the lock is released, panicked or
//! not.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Typed admission-control failures surfaced to request producers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The queue is at capacity; the request was rejected, not enqueued.
    /// Backpressure, not failure — the caller may retry later.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The queue has been closed for shutdown; no new requests are
    /// admitted (items already queued still drain).
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(
                    f,
                    "queue overloaded ({depth}/{capacity} requests in flight)"
                )
            }
            ServeError::Closed => write!(f, "queue closed (server shutting down)"),
        }
    }
}

impl Error for ServeError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue whose consumer pops *batches*: up to
/// `max` items, coalesced within a deadline window measured from the
/// moment the first item of the batch is taken.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use winofuse_runtime::serve::ServeQueue;
///
/// let q = ServeQueue::bounded(4);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// let batch = q.pop_batch(8, Duration::ZERO).unwrap();
/// assert_eq!(batch, vec![1, 2]);
/// q.close();
/// assert!(q.pop_batch(8, Duration::ZERO).is_none());
/// ```
pub struct ServeQueue<T> {
    state: Mutex<QueueState<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> ServeQueue<T> {
    /// Locks the queue state, recovering from poisoning (see the module
    /// docs for why that is sound here).
    fn lock_state(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue admitting at most `capacity` items at a time.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a queue that can never admit a
    /// request is a configuration error, not a backpressure policy.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "serve queue capacity must be positive");
        ServeQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// The configured admission cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock_state().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`ServeQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock_state().closed
    }

    /// Enqueues an item, returning the queue depth after the push.
    ///
    /// # Errors
    ///
    /// Returns the item back together with [`ServeError::Overloaded`]
    /// when the queue is full, or [`ServeError::Closed`] after shutdown
    /// began — in both cases nothing was enqueued.
    pub fn push(&self, item: T) -> Result<usize, (ServeError, T)> {
        let mut state = self.lock_state();
        if state.closed {
            return Err((ServeError::Closed, item));
        }
        if state.items.len() >= self.capacity {
            return Err((
                ServeError::Overloaded {
                    depth: state.items.len(),
                    capacity: self.capacity,
                },
                item,
            ));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.cond.notify_all();
        Ok(depth)
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`ServeError::Closed`], and consumers drain the remaining items
    /// before [`ServeQueue::pop_batch`] starts returning `None`.
    pub fn close(&self) {
        self.lock_state().closed = true;
        self.cond.notify_all();
    }

    /// Blocks until at least one item is available, then coalesces up to
    /// `max` items, waiting at most `window` (measured from the first
    /// item taken) for stragglers. Returns `None` only when the queue is
    /// closed *and* fully drained.
    ///
    /// # Panics
    ///
    /// Panics when `max` is zero.
    pub fn pop_batch(&self, max: usize, window: Duration) -> Option<Vec<T>> {
        assert!(max > 0, "batch size must be positive");
        let mut state = self.lock_state();
        // Phase 1: wait for the first item (or shutdown with an empty
        // queue).
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            state = self
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut batch = Vec::with_capacity(max.min(state.items.len()));
        batch.push(state.items.pop_front().unwrap());
        // Phase 2: coalesce until the batch is full, the window expires,
        // or shutdown makes further waiting pointless.
        let deadline = Instant::now() + window;
        loop {
            while batch.len() < max {
                match state.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || state.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timeout.timed_out() && state.items.is_empty() {
                break;
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_reports_depth_and_rejects_when_full() {
        let q = ServeQueue::bounded(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        let (err, rejected) = q.push(3).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                depth: 2,
                capacity: 2
            }
        );
        assert_eq!(rejected, 3);
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        assert_eq!(q.pop_batch(8, Duration::ZERO), Some(vec![1, 2]));
        assert_eq!(q.push(3), Ok(1));
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = ServeQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3, Duration::ZERO), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_batch(3, Duration::ZERO), Some(vec![3, 4]));
    }

    #[test]
    fn pop_batch_coalesces_items_arriving_within_window() {
        let q = Arc::new(ServeQueue::bounded(8));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(1).unwrap();
                std::thread::sleep(Duration::from_millis(5));
                q.push(2).unwrap();
            })
        };
        // A generous window: both items coalesce into one batch even
        // though the second arrives after the first is already taken.
        let batch = q.pop_batch(8, Duration::from_secs(5)).unwrap();
        producer.join().unwrap();
        // The batch holds at least the first item; with the second
        // arriving inside the window it joins too unless the scheduler
        // delayed the producer past the (5 s!) deadline — impossible.
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = ServeQueue::bounded(8);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.push("c").unwrap_err().0, ServeError::Closed);
        // Already-admitted items still come out...
        assert_eq!(q.pop_batch(1, Duration::ZERO), Some(vec!["a"]));
        assert_eq!(q.pop_batch(1, Duration::ZERO), Some(vec!["b"]));
        // ...then the drain completes.
        assert_eq!(q.pop_batch(1, Duration::ZERO), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<ServeQueue<u32>> = Arc::new(ServeQueue::bounded(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let q = Arc::new(ServeQueue::bounded(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut seen = Vec::new();
        while let Some(batch) = q.pop_batch(7, Duration::ZERO) {
            assert!(!batch.is_empty() && batch.len() <= 7);
            seen.extend(batch);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn queue_survives_a_panic_that_poisons_the_lock() {
        // The serve worker runs batches under catch_unwind; a panic on a
        // thread that holds (or has held) the queue lock must not turn
        // every subsequent push/pop into a PoisonError panic.
        let q: Arc<ServeQueue<u32>> = Arc::new(ServeQueue::bounded(8));
        q.push(1).unwrap();
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.lock_state();
                panic!("injected fault while holding the queue lock");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner must panic");
        assert!(q.state.is_poisoned(), "lock must actually be poisoned");
        // Every operation still works on the recovered state.
        assert_eq!(q.len(), 1);
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.pop_batch(8, Duration::ZERO), Some(vec![1, 2]));
        assert!(!q.is_closed());
        q.close();
        assert_eq!(q.push(3).unwrap_err().0, ServeError::Closed);
        assert_eq!(q.pop_batch(8, Duration::ZERO), None);
    }

    #[test]
    fn blocked_consumer_survives_poisoned_wakeup() {
        // Poison the lock while a consumer is parked in the condvar
        // wait; the wakeup path must also recover.
        let q: Arc<ServeQueue<u32>> = Arc::new(ServeQueue::bounded(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut guard = q.lock_state();
                guard.items.push_back(7);
                q.cond.notify_all();
                panic!("injected fault after enqueue");
            })
        };
        assert!(poisoner.join().is_err());
        assert_eq!(consumer.join().unwrap(), Some(vec![7]));
    }

    #[test]
    fn overloaded_error_formats_depth() {
        let e = ServeError::Overloaded {
            depth: 64,
            capacity: 64,
        };
        assert!(e.to_string().contains("64/64"));
        assert!(ServeError::Closed.to_string().contains("shutting down"));
    }
}
