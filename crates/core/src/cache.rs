//! The serving plan cache: strategy search and filter transforms paid
//! once per configuration.
//!
//! A single `winofuse run` pays the full pipeline on every invocation —
//! branch-and-bound search, fusion DP, plan lowering, Winograd filter
//! transforms — which is exactly the cost structure a long-running
//! deployment cannot afford. The cache closes that gap: a
//! [`PlanEntry`] bundles everything downstream of the model
//! ([`OptimizedDesign`] → execution plan → fused runner → prepacked
//! filter banks) and a [`PlanCache`] memoizes entries under a
//! [`PlanKey`] of `(network fingerprint, weights fingerprint, device,
//! precision, threads, budget)`. After the first request for a
//! configuration, every subsequent request is a hash lookup: zero
//! search nodes, zero filter transforms.
//!
//! Hit/miss traffic is pinned by the `serve.plan_hits` /
//! `serve.plan_misses` counters, so a regression that silently defeats
//! the cache (a key that never matches, an entry dropped too early)
//! fails counter-pinned tests rather than just running slow.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use winofuse_fusion::runner::FusedNetworkRunner;
use winofuse_model::network::Network;
use winofuse_model::runtime::{ExecAlgo, NetworkExecutor, NetworkWeights, PreparedNetwork};
use winofuse_model::DataType;
use winofuse_telemetry::Telemetry;

use crate::framework::{Framework, OptimizedDesign};
use crate::CoreError;

/// The configuration identity a cached plan is valid for. Two requests
/// may share a [`PlanEntry`] iff every field matches: same network
/// structure and weights (fingerprints), same device, same precision,
/// same worker-thread count (plans embed parallelism choices), same
/// transfer budget (the DP's constraint).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Network::fingerprint`] of the served model.
    pub network_fingerprint: u64,
    /// [`NetworkWeights::fingerprint`] of the served weights.
    pub weights_fingerprint: u64,
    /// Device name (e.g. `zc706`) the strategy was optimized for.
    pub device: String,
    /// Feature-map/weight precision of the design.
    pub precision: DataType,
    /// Worker-thread count the runner executes with.
    pub threads: usize,
    /// Feature-map transfer budget handed to the DP, in bytes.
    pub budget_bytes: u64,
}

/// Everything paid for once per configuration: the solved design, the
/// shared filter preparation, and the plan-faithful fused runner.
pub struct PlanEntry {
    /// The key this entry was built under.
    pub key: PlanKey,
    /// The served network (conv body in the serving path).
    pub net: Arc<Network>,
    /// The served weights.
    pub weights: Arc<NetworkWeights>,
    /// The solved strategy with analytic timing.
    pub design: OptimizedDesign,
    /// Shared fast-path preparation (sliced kernels + Winograd banks);
    /// [`PlanEntry::executor`] clones the `Arc`, never the banks.
    pub prepared: Arc<PreparedNetwork>,
    /// The plan-faithful fused runner with per-group DRAM reconciliation.
    pub runner: FusedNetworkRunner,
}

impl PlanEntry {
    /// A batched fast-path executor over the cached preparation — no
    /// filter transforms are paid here, only an `Arc` clone. The caller
    /// still picks threads/telemetry/fault handling per use.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] only if the entry is internally
    /// inconsistent (impossible for entries built by
    /// [`Framework::plan_entry`]).
    pub fn executor(&self) -> Result<NetworkExecutor<'_>, CoreError> {
        NetworkExecutor::from_prepared(&self.net, Arc::clone(&self.prepared))
            .map_err(CoreError::from)
    }
}

/// A thread-safe memo of [`PlanEntry`]s keyed by [`PlanKey`].
///
/// Builds are single-flight: the registry lock is held across the build
/// closure, so concurrent requests for the same key pay exactly one
/// strategy search between them — the guarantee the
/// "zero search invocations after the first request" acceptance test
/// pins.
pub struct PlanCache {
    entries: Mutex<HashMap<PlanKey, Arc<PlanEntry>>>,
    telemetry: Telemetry,
}

impl PlanCache {
    /// An empty cache publishing `serve.plan_hits` / `serve.plan_misses`
    /// to `telemetry`.
    pub fn new(telemetry: Telemetry) -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            telemetry,
        }
    }

    /// Locks the registry, recovering from poisoning. A build closure
    /// that panics (killing its serve worker) must not condemn every
    /// later lookup: the map is only written by a single `insert` after
    /// a successful build, so a mid-build panic leaves it consistent.
    fn lock_entries(&self) -> MutexGuard<'_, HashMap<PlanKey, Arc<PlanEntry>>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far (`serve.plan_hits`).
    pub fn hits(&self) -> u64 {
        self.telemetry.counter("serve.plan_hits").get()
    }

    /// Cache misses so far (`serve.plan_misses`).
    pub fn misses(&self) -> u64 {
        self.telemetry.counter("serve.plan_misses").get()
    }

    /// Looks up `key`, invoking `build` (and caching its result) only on
    /// a miss. Bumps `serve.plan_hits` / `serve.plan_misses`.
    ///
    /// # Errors
    ///
    /// Propagates the build closure's error; nothing is cached then.
    pub fn get_or_build(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> Result<PlanEntry, CoreError>,
    ) -> Result<Arc<PlanEntry>, CoreError> {
        let mut entries = self.lock_entries();
        if let Some(entry) = entries.get(key) {
            self.telemetry.counter("serve.plan_hits").incr();
            return Ok(Arc::clone(entry));
        }
        self.telemetry.counter("serve.plan_misses").incr();
        let entry = Arc::new(build()?);
        entries.insert(key.clone(), Arc::clone(&entry));
        Ok(entry)
    }
}

impl Framework {
    /// The [`PlanKey`] this framework would file a plan for `net` +
    /// `weights` under, at the given transfer budget.
    pub fn plan_key(
        &self,
        net: &Network,
        weights: &NetworkWeights,
        budget_bytes: u64,
        precision: DataType,
    ) -> PlanKey {
        PlanKey {
            network_fingerprint: net.fingerprint(),
            weights_fingerprint: weights.fingerprint(),
            device: self.device().name().to_string(),
            precision,
            threads: self.threads(),
            budget_bytes,
        }
    }

    /// Builds a complete [`PlanEntry`] for a model: optimizes the
    /// strategy, lowers it to the fused runner, and prepares the shared
    /// filter banks for the batched fast path. This is the expensive
    /// miss-path body a [`PlanCache`] amortizes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Framework::optimize`] plus
    /// [`CoreError::Substrate`] when the design cannot be lowered or the
    /// weights do not match the network.
    pub fn plan_entry(
        &self,
        net: Arc<Network>,
        weights: Arc<NetworkWeights>,
        budget_bytes: u64,
        precision: DataType,
    ) -> Result<PlanEntry, CoreError> {
        let key = self.plan_key(&net, &weights, budget_bytes, precision);
        let design = self.optimize(&net, budget_bytes)?;
        let runner = self.fused_runner(&net, &design, &weights)?;
        let prepared = Arc::new(PreparedNetwork::new(&net, &weights, ExecAlgo::Auto)?);
        Ok(PlanEntry {
            key,
            net,
            weights,
            design,
            prepared,
            runner,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::zoo;

    const BUDGET: u64 = 8 * 1024 * 1024;

    fn model() -> (Arc<Network>, Arc<NetworkWeights>) {
        let net = zoo::small_test_net().conv_body().unwrap();
        let weights = NetworkWeights::random(&net, 7).unwrap();
        (Arc::new(net), Arc::new(weights))
    }

    #[test]
    fn keys_separate_every_configuration_axis() {
        let fw = Framework::new(FpgaDevice::zc706()).with_threads(2);
        let (net, weights) = model();
        let base = fw.plan_key(&net, &weights, BUDGET, DataType::Fixed16);
        assert_eq!(base, fw.plan_key(&net, &weights, BUDGET, DataType::Fixed16));
        // Different weights under the same structure: key must differ.
        let other_weights = NetworkWeights::random(&net, 8).unwrap();
        assert_ne!(
            base,
            fw.plan_key(&net, &other_weights, BUDGET, DataType::Fixed16)
        );
        // Different budget, precision, thread count: all separate.
        assert_ne!(
            base,
            fw.plan_key(&net, &weights, BUDGET / 2, DataType::Fixed16)
        );
        assert_ne!(base, fw.plan_key(&net, &weights, BUDGET, DataType::Float32));
        let fw4 = Framework::new(FpgaDevice::zc706()).with_threads(4);
        assert_ne!(
            base,
            fw4.plan_key(&net, &weights, BUDGET, DataType::Fixed16)
        );
    }

    #[test]
    fn get_or_build_builds_once_and_counts() {
        let t = Telemetry::enabled();
        let cache = PlanCache::new(t.clone());
        let fw = Framework::new(FpgaDevice::zc706()).with_threads(1);
        let (net, weights) = model();
        let key = fw.plan_key(&net, &weights, BUDGET, DataType::Fixed16);
        let builds = AtomicUsize::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::SeqCst);
            fw.plan_entry(
                Arc::clone(&net),
                Arc::clone(&weights),
                BUDGET,
                DataType::Fixed16,
            )
        };
        let a = cache.get_or_build(&key, build).unwrap();
        let b = cache
            .get_or_build(&key, || panic!("hit path must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(t.summary().counter("serve.plan_hits"), 1);
        assert_eq!(t.summary().counter("serve.plan_misses"), 1);
    }

    #[test]
    fn failed_build_caches_nothing() {
        let cache = PlanCache::new(Telemetry::enabled());
        let fw = Framework::new(FpgaDevice::zc706()).with_threads(1);
        let (net, weights) = model();
        let key = fw.plan_key(&net, &weights, BUDGET, DataType::Fixed16);
        let err = cache.get_or_build(&key, || Err(CoreError::InvalidRequest("synthetic".into())));
        assert!(err.is_err());
        assert!(cache.is_empty());
        // The next attempt is another (counted) miss, free to succeed.
        assert_eq!(cache.misses(), 1);
        cache
            .get_or_build(&key, || {
                fw.plan_entry(
                    Arc::clone(&net),
                    Arc::clone(&weights),
                    BUDGET,
                    DataType::Fixed16,
                )
            })
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn entry_executor_shares_prepared_banks() {
        let fw = Framework::new(FpgaDevice::zc706()).with_threads(1);
        let (net, weights) = model();
        let entry = fw
            .plan_entry(
                Arc::clone(&net),
                Arc::clone(&weights),
                BUDGET,
                DataType::Fixed16,
            )
            .unwrap();
        assert!(
            entry.prepared.winograd_banks() > 0,
            "3x3 convs must prepack"
        );
        let before = Arc::strong_count(&entry.prepared);
        let exec = entry.executor().unwrap();
        assert_eq!(Arc::strong_count(&entry.prepared), before + 1);
        // The executor runs against the shared banks and matches the
        // fused runner bit-for-bit on the same frame? Not required —
        // but both must at least agree with the reference numerically.
        let x = winofuse_conv::tensor::random_tensor(1, 3, 32, 32, 11);
        let y_exec = exec.run(&x).unwrap();
        let y_fused = entry.runner.run(&x).unwrap().output;
        assert!(y_exec.approx_eq(&y_fused, 1e-3));
    }
}
