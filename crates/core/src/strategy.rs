//! Strategy triples and validated network partitions.
//!
//! Definition 1 of the paper: "For layer i, its implementation strategy
//! is a triple `Cᵢ = ⟨gᵢ, algoᵢ, pᵢ⟩` \[...\]. Accordingly, a strategy for
//! an N-layer network is defined as a set `S = {Cᵢ | 1 ≤ i ≤ N}`."

use std::fmt;
use std::ops::Range;

use winofuse_fpga::engine::Algorithm;

use crate::CoreError;

/// The per-layer strategy triple `⟨group, algorithm, parallelism⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerStrategy {
    /// Index of the fusion group this layer belongs to.
    pub group: usize,
    /// Convolution algorithm implementing the layer.
    pub algorithm: Algorithm,
    /// Hardware parallelism (compute units).
    pub parallelism: usize,
}

/// A full network strategy: one triple per layer, with group membership
/// forming a partition of `0..n` into consecutive runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strategy {
    layers: Vec<LayerStrategy>,
    groups: Vec<Range<usize>>,
}

impl Strategy {
    /// Builds and validates a strategy from per-layer triples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] when the group ids do not
    /// form consecutive runs numbered `0, 1, 2, …` or the list is empty.
    pub fn new(layers: Vec<LayerStrategy>) -> Result<Self, CoreError> {
        if layers.is_empty() {
            return Err(CoreError::InvalidRequest("strategy has no layers".into()));
        }
        let mut groups: Vec<Range<usize>> = Vec::new();
        for (i, ls) in layers.iter().enumerate() {
            match groups.len().checked_sub(1) {
                Some(g) if ls.group == g => {
                    groups[g].end = i + 1;
                }
                _ if ls.group == groups.len() => {
                    groups.push(i..i + 1);
                }
                _ => {
                    return Err(CoreError::InvalidRequest(format!(
                        "layer {i} has group {} but expected {} or {}",
                        ls.group,
                        groups.len().saturating_sub(1),
                        groups.len()
                    )))
                }
            }
        }
        Ok(Strategy { layers, groups })
    }

    /// Builds a strategy from group ranges plus per-layer (algorithm,
    /// parallelism) pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] when ranges do not tile
    /// `0..pairs.len()` in order.
    pub fn from_groups(
        groups: &[Range<usize>],
        pairs: &[(Algorithm, usize)],
    ) -> Result<Self, CoreError> {
        let mut layers = Vec::with_capacity(pairs.len());
        let mut expected = 0usize;
        for (g, range) in groups.iter().enumerate() {
            if range.start != expected || range.end <= range.start || range.end > pairs.len() {
                return Err(CoreError::InvalidRequest(format!(
                    "group ranges must tile the layer list; got {range:?} at position {g}"
                )));
            }
            expected = range.end;
            for i in range.clone() {
                layers.push(LayerStrategy {
                    group: g,
                    algorithm: pairs[i].0,
                    parallelism: pairs[i].1,
                });
            }
        }
        if expected != pairs.len() {
            return Err(CoreError::InvalidRequest(format!(
                "group ranges cover {expected} of {} layers",
                pairs.len()
            )));
        }
        Strategy::new(layers)
    }

    /// Per-layer triples.
    pub fn layers(&self) -> &[LayerStrategy] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the strategy is empty (never true for a validated value).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Fusion groups as consecutive layer ranges.
    pub fn groups(&self) -> &[Range<usize>] {
        &self.groups
    }

    /// Number of layers implemented with the (dense) Winograd algorithm.
    /// Sparse-Winograd layers count separately — see
    /// [`Strategy::sparse_winograd_layer_count`]; lumping them here would
    /// silently misreport the menu split in three-way plans.
    pub fn winograd_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l.algorithm, Algorithm::Winograd { .. }))
            .count()
    }

    /// Number of layers implemented with the sparse Winograd algorithm.
    pub fn sparse_winograd_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l.algorithm, Algorithm::SparseWinograd { .. }))
            .count()
    }

    /// Whether the strategy mixes algorithms (the heterogeneity the paper
    /// is named for): more than one distinct algorithm *kind* appears
    /// across the layers. With the menu now three entries deep, the old
    /// "some-but-not-all Winograd" test would miss a conventional+sparse
    /// mix entirely.
    pub fn is_heterogeneous(&self) -> bool {
        let first = self.layers[0].algorithm.tag();
        self.layers.iter().any(|l| l.algorithm.tag() != first)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (g, range) in self.groups.iter().enumerate() {
            writeln!(f, "group {g}: layers {}..{}", range.start, range.end)?;
            for i in range.clone() {
                let l = &self.layers[i];
                writeln!(f, "  layer {i}: {} x{}", l.algorithm, l.parallelism)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(group: usize, p: usize) -> LayerStrategy {
        LayerStrategy {
            group,
            algorithm: Algorithm::Conventional,
            parallelism: p,
        }
    }

    #[test]
    fn groups_recovered_from_ids() {
        let s = Strategy::new(vec![ls(0, 1), ls(0, 2), ls(1, 3), ls(2, 4), ls(2, 5)]).unwrap();
        assert_eq!(s.groups(), &[0..2, 2..3, 3..5]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn rejects_non_consecutive_groups() {
        assert!(Strategy::new(vec![ls(0, 1), ls(2, 1)]).is_err());
        assert!(Strategy::new(vec![ls(1, 1)]).is_err());
        assert!(Strategy::new(vec![ls(0, 1), ls(1, 1), ls(0, 1)]).is_err());
        assert!(Strategy::new(vec![]).is_err());
    }

    #[test]
    fn from_groups_roundtrip() {
        let pairs = vec![
            (Algorithm::Conventional, 4),
            (Algorithm::winograd_f43(), 2),
            (Algorithm::Conventional, 8),
        ];
        let s = Strategy::from_groups(&[0..2, 2..3], &pairs).unwrap();
        assert_eq!(s.groups(), &[0..2, 2..3]);
        assert_eq!(s.layers()[1].algorithm, Algorithm::winograd_f43());
        assert!(s.is_heterogeneous());
        assert_eq!(s.winograd_layer_count(), 1);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-group tilings are the point
    fn from_groups_validates_tiling() {
        let pairs = vec![(Algorithm::Conventional, 1); 3];
        assert!(Strategy::from_groups(&[0..2], &pairs).is_err()); // hole at end
        assert!(Strategy::from_groups(&[0..2, 1..3], &pairs).is_err()); // overlap
        assert!(Strategy::from_groups(&[1..3], &pairs).is_err()); // hole at start
        assert!(Strategy::from_groups(&[0..4], &pairs).is_err()); // overrun
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-group tilings are the point
    fn homogeneous_is_not_heterogeneous() {
        let pairs = vec![(Algorithm::Conventional, 1); 2];
        let s = Strategy::from_groups(&[0..2], &pairs).unwrap();
        assert!(!s.is_heterogeneous());
        let pairs = vec![(Algorithm::winograd_f43(), 1); 2];
        let s = Strategy::from_groups(&[0..2], &pairs).unwrap();
        assert!(!s.is_heterogeneous());
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-group tilings are the point
    fn sparse_layers_count_separately_and_mix_is_heterogeneous() {
        let pairs = vec![(Algorithm::Conventional, 1), (Algorithm::sparse_f43(250), 1)];
        let s = Strategy::from_groups(&[0..2], &pairs).unwrap();
        assert!(s.is_heterogeneous());
        assert_eq!(s.winograd_layer_count(), 0);
        assert_eq!(s.sparse_winograd_layer_count(), 1);
        let pairs = vec![(Algorithm::sparse_f43(500), 1); 2];
        let s = Strategy::from_groups(&[0..2], &pairs).unwrap();
        assert!(!s.is_heterogeneous());
        assert_eq!(s.sparse_winograd_layer_count(), 2);
    }

    #[test]
    fn display_lists_groups() {
        let s = Strategy::new(vec![ls(0, 1), ls(1, 2)]).unwrap();
        let text = s.to_string();
        assert!(text.contains("group 0") && text.contains("group 1"));
    }
}
