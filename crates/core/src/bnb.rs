//! Algorithm 2: depth-first branch-and-bound implementation of one fusion
//! group.
//!
//! "Starting from the iᵗʰ layer, it goes deeper until reaching the jᵗʰ
//! layer. \[...\] Since we employ inter-layer pipeline for the layers within
//! the same group, the path latency is the latency of the slowest layer
//! along the path. We use the current best group latency to bound the
//! following tree traversal. \[...\] When implementing a layer, our
//! framework explores different algorithms and hardware parallelisms."
//!
//! Faithful details: per-layer implementations are cached across the
//! search (the paper's `ipls[cnt][algo][p]` / `unvisited` arrays),
//! parallelisms are explored from max to min so the monotone
//! latency bound can `break` a whole sub-range (lines 11, 16–17), and the
//! resource feasibility check happens before a child node is created
//! (line 18). Additions beyond the paper's pseudocode, both admissible:
//! a suffix resource lower bound, and a DRAM-traffic latency floor that
//! lets the search stop when a leaf provably cannot be beaten.

use std::collections::HashMap;
use std::ops::Range;

use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::engine::{parallelism_candidates, Algorithm, EngineConfig};
use winofuse_fpga::resource::ResourceVec;
use winofuse_fusion::pipeline::{group_timing, GroupTiming, LayerConfig};
use winofuse_model::network::Network;
use winofuse_model::shape::DataType;
use winofuse_telemetry::{Counter, Telemetry};

use crate::{CoreError, MAX_FUSION_LAYERS};

/// Which algorithms the optimizer may assign (ablation knob; the paper's
/// heterogeneous framework allows both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgoPolicy {
    /// Allow the conventional algorithm.
    pub conventional: bool,
    /// Allow Winograd (with the given output tile `m`).
    pub winograd: bool,
    /// Winograd output tile side (the paper uses 4).
    pub winograd_m: usize,
}

impl Default for AlgoPolicy {
    fn default() -> Self {
        AlgoPolicy {
            conventional: true,
            winograd: true,
            winograd_m: 4,
        }
    }
}

impl AlgoPolicy {
    /// Heterogeneous exploration (the paper's framework).
    pub fn heterogeneous() -> Self {
        Self::default()
    }

    /// Conventional-only (homogeneous ablation / the baseline's setting).
    pub fn conventional_only() -> Self {
        AlgoPolicy {
            conventional: true,
            winograd: false,
            winograd_m: 4,
        }
    }

    /// Winograd-wherever-possible (homogeneous ablation; ineligible
    /// layers still fall back to conventional so networks stay mappable).
    pub fn winograd_preferred() -> Self {
        AlgoPolicy {
            conventional: false,
            winograd: true,
            winograd_m: 4,
        }
    }
}

/// One implemented fusion group: resolved per-layer configs + timing.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// First layer index (inclusive).
    pub start: usize,
    /// Last layer index (exclusive).
    pub end: usize,
    /// Per-layer resolved configurations.
    pub configs: Vec<LayerConfig>,
    /// Pipeline timing and resource totals.
    pub timing: GroupTiming,
}

impl GroupPlan {
    /// Group latency in cycles.
    pub fn latency(&self) -> u64 {
        self.timing.latency
    }

    /// Minimal feature-map transfer of the group (first input + last
    /// output) — `min_t[i][j]` of Algorithm 1.
    pub fn transfer_bytes(&self) -> u64 {
        self.timing.dram_fmap_bytes
    }
}

/// One entry of a layer's implementation menu.
#[derive(Debug, Clone)]
struct MenuEntry {
    config: LayerConfig,
    /// Admissible lower bound on how this layer constrains group latency:
    /// its compute cycles (nothing overlaps below this) or its weight
    /// stream time, whichever is larger.
    bound: u64,
}

/// Branch-and-bound group planner with cross-call memoization.
pub struct GroupPlanner<'a> {
    net: &'a Network,
    device: &'a FpgaDevice,
    policy: AlgoPolicy,
    /// `ipls` cache: implementation menu per layer, grouped by algorithm,
    /// each algorithm's entries sorted by descending parallelism.
    menus: Vec<Vec<Vec<MenuEntry>>>,
    /// `fusion[i][j]` cache.
    cache: HashMap<(usize, usize), Option<GroupPlan>>,
    /// Maximum layers per fusion group (paper default: 8, §7.1).
    max_group_layers: usize,
    /// Per-layer per-dimension minimal resources (for suffix bounds).
    min_resources: Vec<ResourceVec>,
    /// Observability context; disabled by default (zero-cost).
    telemetry: Telemetry,
}

/// Cached counter handles for the search hot loop, so instrumentation is
/// one inlined null check per event when telemetry is disabled.
struct SearchCounters {
    /// `visit` calls actually made (tree nodes entered).
    expanded: Counter,
    /// Subtree nodes skipped by the monotone latency bound (line 16-17).
    pruned_bound: Counter,
    /// Subtree nodes skipped by the suffix resource-feasibility check.
    pruned_resource: Counter,
    /// Subtree nodes skipped by the DRAM-floor optimality early exit.
    pruned_floor: Counter,
    /// Complete assignments handed to `group_timing`.
    leaves_evaluated: Counter,
    /// Times a leaf replaced the best incumbent.
    incumbent_updates: Counter,
}

impl<'a> GroupPlanner<'a> {
    /// Prepares a planner for `net` on `device` with the given algorithm
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] when some layer has no
    /// feasible implementation at all (e.g. an FC layer, which the
    /// accelerator does not map — strip it with
    /// [`Network::conv_body`] first).
    pub fn new(
        net: &'a Network,
        device: &'a FpgaDevice,
        policy: AlgoPolicy,
    ) -> Result<Self, CoreError> {
        let bpc = device.bytes_per_cycle();
        let mut menus = Vec::with_capacity(net.len());
        let mut min_resources = Vec::with_capacity(net.len());
        for (idx, layer) in net.layers().iter().enumerate() {
            let mut algo_menus: Vec<Vec<MenuEntry>> = Vec::new();
            let mut algos: Vec<Algorithm> = Vec::new();
            if policy.winograd && layer.winograd_eligible() {
                algos.push(Algorithm::Winograd {
                    m: policy.winograd_m,
                });
            }
            if policy.conventional || algos.is_empty() {
                // Conventional is the universal fallback so every layer
                // stays mappable even under winograd_preferred().
                algos.push(Algorithm::Conventional);
            }
            for algo in algos {
                let mut entries = Vec::new();
                for p in parallelism_candidates(layer, algo, device.resources().dsp) {
                    let cfg = EngineConfig {
                        algorithm: algo,
                        parallelism: p,
                    };
                    let Ok(config) = LayerConfig::build(net, idx, cfg) else {
                        continue;
                    };
                    if !config.estimate.resources.fits_within(device.resources()) {
                        continue;
                    }
                    let weight_cycles = (config.weight_bytes as f64 / bpc).ceil() as u64;
                    let bound = config.estimate.compute_cycles.max(weight_cycles);
                    entries.push(MenuEntry { config, bound });
                }
                if !entries.is_empty() {
                    algo_menus.push(entries);
                }
            }
            if algo_menus.is_empty() {
                return Err(CoreError::InvalidRequest(format!(
                    "layer {idx} `{}` has no feasible implementation on {}",
                    layer.name,
                    device.name()
                )));
            }
            let mut min_r = ResourceVec::new(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
            for e in algo_menus.iter().flatten() {
                let r = e.config.estimate.resources;
                min_r = ResourceVec::new(
                    min_r.bram_18k.min(r.bram_18k),
                    min_r.dsp.min(r.dsp),
                    min_r.ff.min(r.ff),
                    min_r.lut.min(r.lut),
                );
            }
            menus.push(algo_menus);
            min_resources.push(min_r);
            let _ = idx;
        }
        Ok(GroupPlanner {
            net,
            device,
            policy,
            menus,
            cache: HashMap::new(),
            min_resources,
            max_group_layers: MAX_FUSION_LAYERS,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches an observability context. Search counters
    /// (`bnb.nodes_expanded`, `bnb.pruned_*`, …) and per-group `bnb.plan`
    /// spans are recorded against it from then on.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The observability context this planner records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Total implementation-menu entries per layer (across algorithms).
    ///
    /// The full, unpruned Algorithm 2 tree over layers `[i, j)` has
    /// `T(i) = 1 + m(i)·T(i+1)` nodes (with `T(j) = 1`), where `m` is
    /// this vector — the reference for validating the planner's
    /// expanded/pruned accounting against exhaustive search.
    pub fn menu_sizes(&self) -> Vec<usize> {
        self.menus
            .iter()
            .map(|algo_menus| algo_menus.iter().map(Vec::len).sum())
            .collect()
    }

    /// Overrides the fusion-group size cap (the paper uses 8 for VGG due
    /// to memory-port limits, but fuses all 10 body layers of AlexNet in
    /// §7.3 — callers reproducing that experiment raise the cap).
    /// Clears the plan cache.
    pub fn set_max_group_layers(&mut self, max: usize) {
        self.max_group_layers = max.max(1);
        self.cache.clear();
    }

    /// The current fusion-group size cap.
    pub fn max_group_layers(&self) -> usize {
        self.max_group_layers
    }

    /// The algorithm policy this planner searches under.
    pub fn policy(&self) -> AlgoPolicy {
        self.policy
    }

    /// Implements layers `[range)` as one fusion group, returning the
    /// latency-optimal plan or `None` when no assignment fits the device
    /// (or the range exceeds [`MAX_FUSION_LAYERS`]).
    ///
    /// Results are memoized (`fusion[i][j]` is "generated offline" in the
    /// paper).
    pub fn plan(&mut self, range: Range<usize>) -> Option<GroupPlan> {
        let key = (range.start, range.end);
        if let Some(hit) = self.cache.get(&key) {
            self.telemetry.counter("bnb.plan_cache_hits").incr();
            return hit.clone();
        }
        self.telemetry.counter("bnb.plans_computed").incr();
        let span = self.telemetry.span(
            "bnb",
            &format!("plan layers {}..{}", range.start, range.end),
        );
        let plan = self.search(range.clone());
        drop(span);
        self.cache.insert(key, plan.clone());
        plan
    }

    /// DRAM-traffic latency floor for a group: feature maps + the
    /// *smallest* possible weight traffic of its layers.
    fn dram_floor(&self, range: &Range<usize>) -> u64 {
        let dtype = DataType::Fixed16;
        let fmap = self
            .net
            .fused_transfer_bytes(range.clone(), dtype)
            .unwrap_or(0);
        let weights: u64 = range
            .clone()
            .map(|i| {
                self.menus[i]
                    .iter()
                    .flatten()
                    .map(|e| e.config.weight_bytes)
                    .min()
                    .unwrap_or(0)
            })
            .sum();
        ((fmap + weights) as f64 / self.device.bytes_per_cycle()).ceil() as u64
    }

    fn search(&mut self, range: Range<usize>) -> Option<GroupPlan> {
        if range.is_empty() || range.end > self.net.len() {
            return None;
        }
        if range.len() > self.max_group_layers {
            return None;
        }
        let floor = self.dram_floor(&range);

        // Suffix per-dimension resource lower bounds.
        let n = range.len();
        let mut suffix_min = vec![ResourceVec::ZERO; n + 1];
        for off in (0..n).rev() {
            suffix_min[off] = suffix_min[off + 1] + self.min_resources[range.start + off];
        }

        // Subtree sizes for prune accounting: `subtree[off]` is the number
        // of descendants below a node at offset `off` in the *unpruned*
        // tree, so `expanded + Σ pruned == 1 + subtree[0]` holds exactly
        // regardless of which cuts fire (tested against exhaustive
        // enumeration).
        let mut subtree = vec![0u64; n + 1];
        for off in (0..n).rev() {
            let m: u64 = self.menus[range.start + off]
                .iter()
                .map(|v| v.len() as u64)
                .sum();
            subtree[off] = m.saturating_mul(1 + subtree[off + 1]);
        }

        struct Ctx<'m> {
            menus: &'m [Vec<Vec<MenuEntry>>],
            suffix_min: Vec<ResourceVec>,
            capacity: ResourceVec,
            device: FpgaDevice,
            start: usize,
            n: usize,
            best: Option<(u64, Vec<LayerConfig>, GroupTiming)>,
            floor: u64,
            subtree: Vec<u64>,
            counters: SearchCounters,
        }

        fn visit(
            ctx: &mut Ctx<'_>,
            off: usize,
            chosen: &mut Vec<LayerConfig>,
            used: ResourceVec,
            path_bound: u64,
        ) {
            ctx.counters.expanded.incr();
            let best_latency = ctx.best.as_ref().map(|b| b.0).unwrap_or(u64::MAX);
            if best_latency <= ctx.floor {
                // Provably optimal already; everything below is skipped.
                ctx.counters.pruned_floor.add(ctx.subtree[off]);
                return;
            }
            if off == ctx.n {
                ctx.counters.leaves_evaluated.incr();
                if let Ok(timing) = group_timing(chosen, &ctx.device) {
                    if timing.resources.fits_within(&ctx.capacity) && timing.latency < best_latency
                    {
                        ctx.counters.incumbent_updates.incr();
                        ctx.best = Some((timing.latency, chosen.clone(), timing));
                    }
                }
                return;
            }
            let idx = ctx.start + off;
            // One pruned child slot = the child node plus its descendants.
            let child_weight = 1 + ctx.subtree[off + 1];
            for algo_menu in &ctx.menus[idx] {
                for (pos, entry) in algo_menu.iter().enumerate() {
                    let best_latency = ctx.best.as_ref().map(|b| b.0).unwrap_or(u64::MAX);
                    // Parallelism descends within the menu, so the bound
                    // only grows: break, don't continue (paper line 16-17).
                    if entry.bound >= best_latency {
                        ctx.counters
                            .pruned_bound
                            .add((algo_menu.len() - pos) as u64 * child_weight);
                        break;
                    }
                    let new_used = used + entry.config.estimate.resources;
                    let optimistic = new_used + ctx.suffix_min[off + 1];
                    if !optimistic.fits_within(&ctx.capacity) {
                        ctx.counters.pruned_resource.add(child_weight);
                        continue;
                    }
                    chosen.push(entry.config.clone());
                    visit(ctx, off + 1, chosen, new_used, path_bound.max(entry.bound));
                    chosen.pop();
                }
            }
        }

        let mut ctx = Ctx {
            menus: &self.menus,
            suffix_min,
            capacity: *self.device.resources(),
            device: self.device.clone(),
            start: range.start,
            n,
            best: None,
            floor,
            subtree,
            counters: SearchCounters {
                expanded: self.telemetry.counter("bnb.nodes_expanded"),
                pruned_bound: self.telemetry.counter("bnb.pruned_bound"),
                pruned_resource: self.telemetry.counter("bnb.pruned_resource"),
                pruned_floor: self.telemetry.counter("bnb.pruned_floor"),
                leaves_evaluated: self.telemetry.counter("bnb.leaves_evaluated"),
                incumbent_updates: self.telemetry.counter("bnb.incumbent_updates"),
            },
        };
        let mut chosen = Vec::with_capacity(n);
        visit(&mut ctx, 0, &mut chosen, ResourceVec::ZERO, 0);

        ctx.best.map(|(_, configs, timing)| GroupPlan {
            start: range.start,
            end: range.end,
            configs,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winofuse_model::zoo;

    #[test]
    fn single_layer_group_prefers_max_parallelism() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let plan = planner.plan(1..2).unwrap();
        // conv1_2 alone can use a big engine; latency must beat a p=16 one.
        let modest = LayerConfig::build(
            &net,
            1,
            EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 16,
            },
        )
        .unwrap();
        let modest_t = group_timing(&[modest], &dev).unwrap();
        assert!(plan.latency() < modest_t.latency);
    }

    #[test]
    fn heterogeneous_beats_or_matches_homogeneous() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let range = 0..net.len();
        let hetero = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous())
            .unwrap()
            .plan(range.clone())
            .unwrap();
        let conv_only = GroupPlanner::new(&net, &dev, AlgoPolicy::conventional_only())
            .unwrap()
            .plan(range)
            .unwrap();
        assert!(
            hetero.latency() <= conv_only.latency(),
            "hetero {} vs conventional-only {}",
            hetero.latency(),
            conv_only.latency()
        );
    }

    #[test]
    fn heterogeneous_vgg_group_uses_winograd_somewhere() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let plan = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous())
            .unwrap()
            .plan(0..net.len())
            .unwrap();
        let wino = plan
            .configs
            .iter()
            .filter(|c| matches!(c.engine.algorithm, Algorithm::Winograd { .. }))
            .count();
        assert!(
            wino > 0,
            "expected at least one winograd layer in the fused VGG prefix"
        );
        // And the plan must fit the device.
        assert!(plan.timing.resources.fits_within(dev.resources()));
    }

    #[test]
    fn oversized_ranges_rejected() {
        let net = zoo::vgg_e().conv_body().unwrap();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        assert!(planner.plan(0..MAX_FUSION_LAYERS + 1).is_none());
        assert!(planner.plan(3..3).is_none());
    }

    #[test]
    fn memoization_returns_identical_plans() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let a = planner.plan(0..3);
        let b = planner.plan(0..3);
        assert_eq!(a, b);
    }

    #[test]
    fn fc_layers_make_planner_construction_fail() {
        let net = zoo::alexnet(); // contains FC layers
        let dev = FpgaDevice::zc706();
        assert!(GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).is_err());
        // The conv body works.
        let body = net.conv_body().unwrap();
        assert!(GroupPlanner::new(&body, &dev, AlgoPolicy::heterogeneous()).is_ok());
    }

    #[test]
    fn winograd_preferred_still_maps_strided_layers() {
        let net = zoo::small_test_net(); // conv1 is stride-2
        let dev = FpgaDevice::zc706();
        let plan = GroupPlanner::new(&net, &dev, AlgoPolicy::winograd_preferred())
            .unwrap()
            .plan(0..1)
            .unwrap();
        assert_eq!(plan.configs[0].engine.algorithm, Algorithm::Conventional);
    }

    #[test]
    fn group_plan_reports_min_transfer() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let plan = planner.plan(0..net.len()).unwrap();
        assert_eq!(
            plan.transfer_bytes(),
            net.fused_transfer_bytes(0..net.len(), DataType::Fixed16)
                .unwrap()
        );
    }
}
