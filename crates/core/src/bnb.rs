//! Algorithm 2: depth-first branch-and-bound implementation of one fusion
//! group.
//!
//! "Starting from the iᵗʰ layer, it goes deeper until reaching the jᵗʰ
//! layer. \[...\] Since we employ inter-layer pipeline for the layers within
//! the same group, the path latency is the latency of the slowest layer
//! along the path. We use the current best group latency to bound the
//! following tree traversal. \[...\] When implementing a layer, our
//! framework explores different algorithms and hardware parallelisms."
//!
//! Faithful details: per-layer implementations are cached across the
//! search (the paper's `ipls[cnt][algo][p]` / `unvisited` arrays),
//! parallelisms are explored from max to min so the monotone
//! latency bound can `break` a whole sub-range (lines 11, 16–17), and the
//! resource feasibility check happens before a child node is created
//! (line 18). Additions beyond the paper's pseudocode, all admissible:
//! a suffix resource lower bound, a DRAM-traffic latency floor that
//! lets the search stop when a leaf provably cannot be beaten, and
//! dominance pruning of the per-layer menus (an entry that is no better
//! than a same-algorithm sibling in any position a group could place it
//! is dropped before the search starts).
//!
//! The search core is immutable (`&self`) and `Sync`: the `fusion[i][j]`
//! cache lives behind a sharded lock so [`crate::parallel`] can fill the
//! whole plan table from scoped worker threads, and a single large group
//! can be split across workers with [`GroupPlanner::plan_split`].

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::engine::{parallelism_candidates, Algorithm, EngineConfig};
use winofuse_fpga::resource::ResourceVec;
use winofuse_fusion::pipeline::{group_timing, GroupTiming, LayerConfig};
use winofuse_model::network::Network;
use winofuse_model::shape::DataType;
use winofuse_telemetry::{Counter, Telemetry};

use crate::{CoreError, MAX_FUSION_LAYERS};

/// Which algorithms the optimizer may assign (ablation knob; the paper's
/// heterogeneous framework allows both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgoPolicy {
    /// Allow the conventional algorithm.
    pub conventional: bool,
    /// Allow Winograd (with the given output tile `m`).
    pub winograd: bool,
    /// Winograd output tile side (the paper uses 4).
    pub winograd_m: usize,
    /// Allow sparse Winograd (transform-domain pruned filters). Off by
    /// default and off in [`AlgoPolicy::heterogeneous`]: a sparse layer
    /// computes with *pruned* coefficients, so enabling it is a
    /// numerical-accuracy decision the caller must opt into, not a pure
    /// performance knob the optimizer may flip on its own.
    pub sparse: bool,
    /// Transform-domain coefficient density for sparse layers, in per
    /// mille of `out_c·in_c` kept per transform point (1..=1000).
    pub sparse_density_pm: u16,
}

impl Default for AlgoPolicy {
    fn default() -> Self {
        AlgoPolicy {
            conventional: true,
            winograd: true,
            winograd_m: 4,
            sparse: false,
            sparse_density_pm: 1000,
        }
    }
}

impl AlgoPolicy {
    /// Heterogeneous exploration (the paper's framework): conventional
    /// vs dense Winograd. Sparse stays off — see [`AlgoPolicy::sparse`].
    pub fn heterogeneous() -> Self {
        Self::default()
    }

    /// Conventional-only (homogeneous ablation / the baseline's setting).
    pub fn conventional_only() -> Self {
        AlgoPolicy {
            conventional: true,
            winograd: false,
            ..Self::default()
        }
    }

    /// Winograd-wherever-possible (homogeneous ablation; ineligible
    /// layers still fall back to conventional so networks stay mappable).
    pub fn winograd_preferred() -> Self {
        AlgoPolicy {
            conventional: false,
            winograd: true,
            ..Self::default()
        }
    }

    /// The full three-entry menu: conventional, dense Winograd, and
    /// sparse Winograd pruned to `density_pm` per mille of transformed
    /// coefficients. The caller asserts the model tolerates pruning at
    /// that density (e.g. after retraining).
    pub fn heterogeneous_sparse(density_pm: u16) -> Self {
        AlgoPolicy {
            sparse: true,
            sparse_density_pm: density_pm,
            ..Self::default()
        }
    }

    /// This policy with sparse Winograd added at `density_pm`.
    pub fn with_sparse(self, density_pm: u16) -> Self {
        AlgoPolicy {
            sparse: true,
            sparse_density_pm: density_pm,
            ..self
        }
    }
}

/// One implemented fusion group: resolved per-layer configs + timing.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// First layer index (inclusive).
    pub start: usize,
    /// Last layer index (exclusive).
    pub end: usize,
    /// Per-layer resolved configurations.
    pub configs: Vec<LayerConfig>,
    /// Pipeline timing and resource totals.
    pub timing: GroupTiming,
}

impl GroupPlan {
    /// Group latency in cycles.
    pub fn latency(&self) -> u64 {
        self.timing.latency
    }

    /// Minimal feature-map transfer of the group (first input + last
    /// output) — `min_t[i][j]` of Algorithm 1.
    pub fn transfer_bytes(&self) -> u64 {
        self.timing.dram_fmap_bytes
    }
}

/// One entry of a layer's implementation menu.
#[derive(Debug, Clone)]
struct MenuEntry {
    config: LayerConfig,
    /// Admissible lower bound on how this layer constrains group latency:
    /// its compute cycles (nothing overlaps below this) or its weight
    /// stream time, whichever is larger.
    bound: u64,
}

/// The position-dependent latency contribution of a menu entry: the
/// steady-state body cycles (`iterations · stage`) and the pipeline fill
/// cycles for each of the four (heads group?, tails group?) positions a
/// layer can occupy — exactly the per-layer numbers `group_timing`
/// derives, so dominance on this profile is exact, not heuristic.
#[derive(Debug, Clone, Copy)]
struct LatencyProfile {
    body: [u64; 4],
    fill: [u64; 4],
}

impl LatencyProfile {
    fn of(config: &LayerConfig, bpc: f64) -> Self {
        let dtype = DataType::Fixed16;
        let est = &config.estimate;
        let iterations = (config.output.height as u64)
            .div_ceil(est.output_rows_per_iter as u64)
            .max(1);
        let compute = est.compute_cycles.div_ceil(iterations);
        let weight_per_iter = config.weight_bytes.div_ceil(iterations);
        let fill_iters = (est.line_buffer_rows as u64).div_ceil(est.input_rows_per_iter as u64);
        let mut body = [0u64; 4];
        let mut fill = [0u64; 4];
        for (slot, (head, tail)) in [(false, false), (false, true), (true, false), (true, true)]
            .into_iter()
            .enumerate()
        {
            let fmap = if head {
                est.input_rows_per_iter as u64 * config.input.row_bytes(dtype) as u64
            } else {
                0
            };
            let load = ((fmap + weight_per_iter) as f64 / bpc).ceil() as u64;
            let store = if tail {
                ((est.output_rows_per_iter as u64 * config.output.row_bytes(dtype) as u64) as f64
                    / bpc)
                    .ceil() as u64
            } else {
                0
            };
            let stage = load.max(compute).max(store);
            body[slot] = iterations * stage;
            fill[slot] = stage * fill_iters;
        }
        LatencyProfile { body, fill }
    }

    fn le(&self, other: &LatencyProfile) -> bool {
        self.body.iter().zip(other.body).all(|(a, b)| *a <= b)
            && self.fill.iter().zip(other.fill).all(|(a, b)| *a <= b)
    }
}

/// Drops menu entries that can never appear in a latency-optimal plan:
/// `b` dominates `a` (same algorithm menu) when `b` is no worse in every
/// latency-profile component, every resource dimension, and DRAM weight
/// traffic — then any group using `a` stays feasible and no slower with
/// `b` substituted. Mutually-equal entries keep the earlier one, so the
/// surviving menu is a deterministic subsequence and its `bound`s stay
/// monotone.
fn dominance_prune(entries: Vec<MenuEntry>, bpc: f64) -> (Vec<MenuEntry>, u64) {
    if entries.len() < 2 {
        return (entries, 0);
    }
    let profiles: Vec<LatencyProfile> = entries
        .iter()
        .map(|e| LatencyProfile::of(&e.config, bpc))
        .collect();
    let dominates = |b: usize, a: usize| -> bool {
        profiles[b].le(&profiles[a])
            && entries[b]
                .config
                .estimate
                .resources
                .fits_within(&entries[a].config.estimate.resources)
            && entries[b].config.weight_bytes <= entries[a].config.weight_bytes
    };
    let keep: Vec<bool> = (0..entries.len())
        .map(|a| {
            !(0..entries.len()).any(|b| b != a && dominates(b, a) && (b < a || !dominates(a, b)))
        })
        .collect();
    let mut dropped = 0u64;
    let kept: Vec<MenuEntry> = entries
        .into_iter()
        .zip(keep)
        .filter_map(|(e, k)| {
            if k {
                Some(e)
            } else {
                dropped += 1;
                None
            }
        })
        .collect();
    (kept, dropped)
}

const CACHE_SHARDS: usize = 16;

/// One shard of the plan cache: range → memoized plan (`None` =
/// infeasible/over-cap, cached too).
type CacheShard = Mutex<HashMap<(usize, usize), Option<GroupPlan>>>;

/// The `fusion[i][j]` cache behind sharded locks, so plan-table workers
/// mostly write disjoint shards instead of serializing on one map.
struct PlanCache {
    shards: [CacheShard; CACHE_SHARDS],
}

impl PlanCache {
    fn new() -> Self {
        PlanCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, key: (usize, usize)) -> &CacheShard {
        &self.shards[key.0.wrapping_mul(31).wrapping_add(key.1) % CACHE_SHARDS]
    }

    fn get(&self, key: (usize, usize)) -> Option<Option<GroupPlan>> {
        self.shard(key)
            .lock()
            .expect("plan cache shard")
            .get(&key)
            .cloned()
    }

    fn insert(&self, key: (usize, usize), value: Option<GroupPlan>) {
        self.shard(key)
            .lock()
            .expect("plan cache shard")
            .insert(key, value);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("plan cache shard").clear();
        }
    }
}

/// Branch-and-bound group planner with cross-call memoization.
///
/// The search core is immutable: [`GroupPlanner::plan_shared`] takes
/// `&self` and the memo cache is internally synchronized, so a planner
/// can be shared across scoped worker threads (see [`crate::parallel`]).
pub struct GroupPlanner<'a> {
    net: &'a Network,
    device: &'a FpgaDevice,
    policy: AlgoPolicy,
    /// `ipls` cache: implementation menu per layer, grouped by algorithm,
    /// each algorithm's entries sorted by descending parallelism and
    /// dominance-pruned.
    menus: Vec<Vec<Vec<MenuEntry>>>,
    /// `fusion[i][j]` cache.
    cache: PlanCache,
    /// Maximum layers per fusion group (paper default: 8, §7.1).
    max_group_layers: usize,
    /// Per-layer per-dimension minimal resources (for suffix bounds).
    min_resources: Vec<ResourceVec>,
    /// Prefix sums of each layer's minimal `weight_bytes`, so the DRAM
    /// floor of any range is O(1) instead of a full menu rescan.
    min_weight_prefix: Vec<u64>,
    /// Menu entries removed by dominance pruning at construction.
    menu_dominated: u64,
    /// Observability context; disabled by default (zero-cost).
    telemetry: Telemetry,
}

/// Cached counter handles for the search hot loop, so instrumentation is
/// one inlined null check per event when telemetry is disabled.
struct SearchCounters {
    /// `visit` calls actually made (tree nodes entered).
    expanded: Counter,
    /// Subtree nodes skipped by the monotone latency bound (line 16-17).
    pruned_bound: Counter,
    /// Subtree nodes skipped by the suffix resource-feasibility check.
    pruned_resource: Counter,
    /// Subtree nodes skipped by the DRAM-floor optimality early exit.
    pruned_floor: Counter,
    /// Complete assignments handed to `group_timing`.
    leaves_evaluated: Counter,
    /// Times a leaf replaced the best incumbent.
    incumbent_updates: Counter,
}

/// Precomputed admissible bounds of one search range.
struct RangeBounds {
    /// DRAM-traffic latency floor of the range.
    floor: u64,
    /// Suffix per-dimension resource lower bounds.
    suffix_min: Vec<ResourceVec>,
    /// `subtree[off]` — descendants below a node at offset `off` in the
    /// *unpruned* tree, so `expanded + Σ pruned == 1 + subtree[0]` holds
    /// exactly regardless of which cuts fire (tested against exhaustive
    /// enumeration).
    subtree: Vec<u64>,
}

/// A search incumbent: latency, per-layer configs, and group timing.
type Incumbent = (u64, Vec<LayerConfig>, GroupTiming);

/// The immutable state of one depth-first search.
struct Ctx<'m> {
    menus: &'m [Vec<Vec<MenuEntry>>],
    suffix_min: &'m [ResourceVec],
    capacity: ResourceVec,
    device: &'m FpgaDevice,
    start: usize,
    n: usize,
    best: Option<Incumbent>,
    floor: u64,
    subtree: &'m [u64],
    /// Cross-worker incumbent, present only in split search. Workers
    /// prune with it *strictly* (`bound > shared`) and accept leaves
    /// against their local best only, which keeps every worker's local
    /// winner — and therefore the reduced result — bit-identical to the
    /// serial depth-first search even when latencies tie.
    shared_best: Option<&'m AtomicU64>,
    counters: SearchCounters,
}

fn visit(
    ctx: &mut Ctx<'_>,
    off: usize,
    chosen: &mut Vec<LayerConfig>,
    used: ResourceVec,
    path_bound: u64,
) {
    ctx.counters.expanded.incr();
    let best_latency = ctx.best.as_ref().map(|b| b.0).unwrap_or(u64::MAX);
    if best_latency <= ctx.floor {
        // Provably optimal already; everything below is skipped.
        ctx.counters.pruned_floor.add(ctx.subtree[off]);
        return;
    }
    if off == ctx.n {
        ctx.counters.leaves_evaluated.incr();
        if let Ok(timing) = group_timing(chosen, ctx.device) {
            if timing.resources.fits_within(&ctx.capacity) && timing.latency < best_latency {
                ctx.counters.incumbent_updates.incr();
                if let Some(shared) = ctx.shared_best {
                    shared.fetch_min(timing.latency, Ordering::Relaxed);
                }
                ctx.best = Some((timing.latency, chosen.clone(), timing));
            }
        }
        return;
    }
    let idx = ctx.start + off;
    // One pruned child slot = the child node plus its descendants.
    let child_weight = 1 + ctx.subtree[off + 1];
    for algo_menu in &ctx.menus[idx] {
        for (pos, entry) in algo_menu.iter().enumerate() {
            let local_best = ctx.best.as_ref().map(|b| b.0).unwrap_or(u64::MAX);
            // Parallelism descends within the menu, so the bound only
            // grows: break, don't continue (paper line 16-17). The shared
            // incumbent tightens the limit only strictly (`> shared`) so
            // equal-latency ties still resolve in serial order.
            let prune_limit = match ctx.shared_best {
                None => local_best,
                Some(s) => local_best.min(s.load(Ordering::Relaxed).saturating_add(1)),
            };
            if entry.bound >= prune_limit {
                ctx.counters
                    .pruned_bound
                    .add((algo_menu.len() - pos) as u64 * child_weight);
                break;
            }
            let new_used = used + entry.config.estimate.resources;
            let optimistic = new_used + ctx.suffix_min[off + 1];
            if !optimistic.fits_within(&ctx.capacity) {
                ctx.counters.pruned_resource.add(child_weight);
                continue;
            }
            chosen.push(entry.config.clone());
            visit(ctx, off + 1, chosen, new_used, path_bound.max(entry.bound));
            chosen.pop();
        }
    }
}

impl<'a> GroupPlanner<'a> {
    /// Prepares a planner for `net` on `device` with the given algorithm
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] when some layer has no
    /// feasible implementation at all (e.g. an FC layer, which the
    /// accelerator does not map — strip it with
    /// [`Network::conv_body`] first).
    pub fn new(
        net: &'a Network,
        device: &'a FpgaDevice,
        policy: AlgoPolicy,
    ) -> Result<Self, CoreError> {
        Self::build(net, device, policy, true)
    }

    /// Like [`GroupPlanner::new`] but without dominance pruning — the
    /// exhaustive menus the paper's pseudocode enumerates. Only useful
    /// for validating the pruning itself.
    #[cfg(test)]
    fn new_unpruned(
        net: &'a Network,
        device: &'a FpgaDevice,
        policy: AlgoPolicy,
    ) -> Result<Self, CoreError> {
        Self::build(net, device, policy, false)
    }

    fn build(
        net: &'a Network,
        device: &'a FpgaDevice,
        policy: AlgoPolicy,
        dominance: bool,
    ) -> Result<Self, CoreError> {
        let bpc = device.bytes_per_cycle();
        let mut menus = Vec::with_capacity(net.len());
        let mut min_resources = Vec::with_capacity(net.len());
        let mut menu_dominated = 0u64;
        for (idx, layer) in net.layers().iter().enumerate() {
            let mut algo_menus: Vec<Vec<MenuEntry>> = Vec::new();
            let mut algos: Vec<Algorithm> = Vec::new();
            if policy.winograd && layer.winograd_eligible() {
                algos.push(Algorithm::Winograd {
                    m: policy.winograd_m,
                });
            }
            // Sparse shares Winograd's eligibility (stride-1 transform
            // tiles); it gets its *own* menu below, so dominance pruning
            // still compares like with like — the rule's soundness proof
            // ("substitute b for a, group stays feasible and no slower")
            // needs the substitution to preserve the layer's numerics,
            // which holds within one algorithm but not across the
            // dense/sparse boundary.
            if policy.sparse && layer.winograd_eligible() {
                algos.push(Algorithm::SparseWinograd {
                    m: policy.winograd_m,
                    density_pm: policy.sparse_density_pm,
                });
            }
            if policy.conventional || algos.is_empty() {
                // Conventional is the universal fallback so every layer
                // stays mappable even under winograd_preferred().
                algos.push(Algorithm::Conventional);
            }
            for algo in algos {
                let mut entries = Vec::new();
                for p in parallelism_candidates(layer, algo, device.resources().dsp) {
                    let cfg = EngineConfig {
                        algorithm: algo,
                        parallelism: p,
                    };
                    let Ok(config) = LayerConfig::build(net, idx, cfg) else {
                        continue;
                    };
                    if !config.estimate.resources.fits_within(device.resources()) {
                        continue;
                    }
                    let weight_cycles = (config.weight_bytes as f64 / bpc).ceil() as u64;
                    let bound = config.estimate.compute_cycles.max(weight_cycles);
                    entries.push(MenuEntry { config, bound });
                }
                if dominance {
                    let (kept, dropped) = dominance_prune(entries, bpc);
                    entries = kept;
                    menu_dominated += dropped;
                }
                if !entries.is_empty() {
                    algo_menus.push(entries);
                }
            }
            if algo_menus.is_empty() {
                return Err(CoreError::InvalidRequest(format!(
                    "layer {idx} `{}` has no feasible implementation on {}",
                    layer.name,
                    device.name()
                )));
            }
            let mut min_r = ResourceVec::new(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
            for e in algo_menus.iter().flatten() {
                let r = e.config.estimate.resources;
                min_r = ResourceVec::new(
                    min_r.bram_18k.min(r.bram_18k),
                    min_r.dsp.min(r.dsp),
                    min_r.ff.min(r.ff),
                    min_r.lut.min(r.lut),
                );
            }
            menus.push(algo_menus);
            min_resources.push(min_r);
        }
        let mut min_weight_prefix = Vec::with_capacity(net.len() + 1);
        min_weight_prefix.push(0u64);
        for menu in &menus {
            let min_w = menu
                .iter()
                .flatten()
                .map(|e| e.config.weight_bytes)
                .min()
                .unwrap_or(0);
            min_weight_prefix.push(min_weight_prefix.last().copied().unwrap_or(0) + min_w);
        }
        Ok(GroupPlanner {
            net,
            device,
            policy,
            menus,
            cache: PlanCache::new(),
            min_resources,
            min_weight_prefix,
            menu_dominated,
            max_group_layers: MAX_FUSION_LAYERS,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches an observability context. Search counters
    /// (`bnb.nodes_expanded`, `bnb.pruned_*`, …) and per-group `bnb.plan`
    /// spans are recorded against it from then on. Menus are
    /// dominance-pruned at construction, before any context exists, so
    /// the removal count is surfaced here as `bnb.menu_dominated`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        self.telemetry
            .counter("bnb.menu_dominated")
            .add(self.menu_dominated);
    }

    /// The observability context this planner records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Total implementation-menu entries per layer (across algorithms),
    /// after dominance pruning.
    ///
    /// The full, unpruned Algorithm 2 tree over layers `[i, j)` has
    /// `T(i) = 1 + m(i)·T(i+1)` nodes (with `T(j) = 1`), where `m` is
    /// this vector — the reference for validating the planner's
    /// expanded/pruned accounting against exhaustive search.
    pub fn menu_sizes(&self) -> Vec<usize> {
        self.menus
            .iter()
            .map(|algo_menus| algo_menus.iter().map(Vec::len).sum())
            .collect()
    }

    /// Menu entries removed by dominance pruning at construction.
    pub fn menu_dominated(&self) -> u64 {
        self.menu_dominated
    }

    /// Overrides the fusion-group size cap (the paper uses 8 for VGG due
    /// to memory-port limits, but fuses all 10 body layers of AlexNet in
    /// §7.3 — callers reproducing that experiment raise the cap).
    /// Clears the plan cache.
    pub fn set_max_group_layers(&mut self, max: usize) {
        self.max_group_layers = max.max(1);
        self.cache.clear();
    }

    /// The current fusion-group size cap.
    pub fn max_group_layers(&self) -> usize {
        self.max_group_layers
    }

    /// The algorithm policy this planner searches under.
    pub fn policy(&self) -> AlgoPolicy {
        self.policy
    }

    /// Implements layers `[range)` as one fusion group, returning the
    /// latency-optimal plan or `None` when no assignment fits the device
    /// (or the range exceeds [`MAX_FUSION_LAYERS`]).
    ///
    /// Results are memoized (`fusion[i][j]` is "generated offline" in the
    /// paper).
    pub fn plan(&mut self, range: Range<usize>) -> Option<GroupPlan> {
        self.plan_shared(range)
    }

    /// [`GroupPlanner::plan`] through a shared reference — the entry
    /// point for concurrent plan-table workers. The memo cache is
    /// internally synchronized; each range should be requested by one
    /// worker (the table assigns ranges disjointly) so the
    /// `bnb.plans_computed` count stays exact.
    pub fn plan_shared(&self, range: Range<usize>) -> Option<GroupPlan> {
        let key = (range.start, range.end);
        if let Some(hit) = self.cache.get(key) {
            self.telemetry.counter("bnb.plan_cache_hits").incr();
            return hit;
        }
        self.telemetry.counter("bnb.plans_computed").incr();
        let span = self.telemetry.span(
            "bnb",
            &format!("plan layers {}..{}", range.start, range.end),
        );
        let plan = self.search(range.clone());
        drop(span);
        self.cache.insert(key, plan.clone());
        plan
    }

    /// Like [`GroupPlanner::plan_shared`], but splits the branch-and-bound
    /// itself across up to `threads` workers: each first-layer menu entry
    /// opens an independent subtree, workers share the incumbent latency
    /// through an atomic, and the reduction picks the winner by
    /// `(latency, menu position)` — bit-identical to the serial search.
    ///
    /// Worth it only when the plan table has a single admissible range
    /// (e.g. a fully-fused AlexNet body); otherwise ranges themselves are
    /// the better unit of parallelism.
    pub fn plan_split(&self, range: Range<usize>, threads: usize) -> Option<GroupPlan> {
        let key = (range.start, range.end);
        if let Some(hit) = self.cache.get(key) {
            self.telemetry.counter("bnb.plan_cache_hits").incr();
            return hit;
        }
        self.telemetry.counter("bnb.plans_computed").incr();
        let span = self.telemetry.span(
            "bnb",
            &format!("plan layers {}..{}", range.start, range.end),
        );
        let plan = self.search_parallel(range.clone(), threads);
        drop(span);
        self.cache.insert(key, plan.clone());
        plan
    }

    /// DRAM-traffic latency floor for a group: feature maps + the
    /// *smallest* possible weight traffic of its layers (precomputed
    /// prefix sums — one subtraction per call).
    fn dram_floor(&self, range: &Range<usize>) -> u64 {
        let dtype = DataType::Fixed16;
        let fmap = self
            .net
            .fused_transfer_bytes(range.clone(), dtype)
            .unwrap_or(0);
        let weights = self.min_weight_prefix[range.end] - self.min_weight_prefix[range.start];
        ((fmap + weights) as f64 / self.device.bytes_per_cycle()).ceil() as u64
    }

    fn range_admissible(&self, range: &Range<usize>) -> bool {
        !range.is_empty() && range.end <= self.net.len() && range.len() <= self.max_group_layers
    }

    fn range_bounds(&self, range: &Range<usize>) -> RangeBounds {
        let n = range.len();
        let mut suffix_min = vec![ResourceVec::ZERO; n + 1];
        for off in (0..n).rev() {
            suffix_min[off] = suffix_min[off + 1] + self.min_resources[range.start + off];
        }
        let mut subtree = vec![0u64; n + 1];
        for off in (0..n).rev() {
            let m: u64 = self.menus[range.start + off]
                .iter()
                .map(|v| v.len() as u64)
                .sum();
            subtree[off] = m.saturating_mul(1 + subtree[off + 1]);
        }
        RangeBounds {
            floor: self.dram_floor(range),
            suffix_min,
            subtree,
        }
    }

    fn search_counters(&self) -> SearchCounters {
        SearchCounters {
            expanded: self.telemetry.counter("bnb.nodes_expanded"),
            pruned_bound: self.telemetry.counter("bnb.pruned_bound"),
            pruned_resource: self.telemetry.counter("bnb.pruned_resource"),
            pruned_floor: self.telemetry.counter("bnb.pruned_floor"),
            leaves_evaluated: self.telemetry.counter("bnb.leaves_evaluated"),
            incumbent_updates: self.telemetry.counter("bnb.incumbent_updates"),
        }
    }

    fn search(&self, range: Range<usize>) -> Option<GroupPlan> {
        if !self.range_admissible(&range) {
            return None;
        }
        let n = range.len();
        let bounds = self.range_bounds(&range);
        let mut ctx = Ctx {
            menus: &self.menus,
            suffix_min: &bounds.suffix_min,
            capacity: *self.device.resources(),
            device: self.device,
            start: range.start,
            n,
            best: None,
            floor: bounds.floor,
            subtree: &bounds.subtree,
            shared_best: None,
            counters: self.search_counters(),
        };
        let mut chosen = Vec::with_capacity(n);
        visit(&mut ctx, 0, &mut chosen, ResourceVec::ZERO, 0);

        ctx.best.map(|(_, configs, timing)| GroupPlan {
            start: range.start,
            end: range.end,
            configs,
            timing,
        })
    }

    /// The split branch-and-bound behind [`GroupPlanner::plan_split`]:
    /// the root's children (first-layer menu entries, in menu order) form
    /// the task list, consumed from an atomic index by scoped workers.
    ///
    /// Determinism: the serial winner is the depth-first-first leaf that
    /// attains the global minimum latency, and every entry on its path
    /// has `bound ≤` that latency `≤ shared`, so the strict shared check
    /// can never cut it. Workers whose subtree attains the global minimum
    /// therefore report exactly their serial-subtree winner; all others
    /// report strictly slower candidates (or none), and the
    /// `(latency, task index)` reduction returns the serial result. The
    /// node accounting identity (`expanded + Σ pruned == tree size`)
    /// still holds exactly, though the expanded/pruned split may vary
    /// run to run — shared pruning races are benign for totals, not for
    /// the breakdown.
    fn search_parallel(&self, range: Range<usize>, threads: usize) -> Option<GroupPlan> {
        if !self.range_admissible(&range) {
            return None;
        }
        let n = range.len();
        let tasks: Vec<&MenuEntry> = self.menus[range.start].iter().flatten().collect();
        if threads <= 1 || tasks.len() < 2 {
            return self.search(range);
        }
        let bounds = self.range_bounds(&range);
        let capacity = *self.device.resources();
        // The root node itself.
        self.search_counters().expanded.incr();
        let child_weight = 1 + bounds.subtree.get(1).copied().unwrap_or(0);

        let shared = AtomicU64::new(u64::MAX);
        let next = AtomicUsize::new(0);
        let workers = threads.min(tasks.len());
        let mut candidates: Vec<(usize, Incumbent)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut found: Vec<(usize, Incumbent)> = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(entry) = tasks.get(t) else { break };
                        let counters = self.search_counters();
                        let limit = shared.load(Ordering::Relaxed).saturating_add(1);
                        if entry.bound >= limit {
                            counters.pruned_bound.add(child_weight);
                            continue;
                        }
                        let used = entry.config.estimate.resources;
                        if !(used + bounds.suffix_min[1]).fits_within(&capacity) {
                            counters.pruned_resource.add(child_weight);
                            continue;
                        }
                        let mut ctx = Ctx {
                            menus: &self.menus,
                            suffix_min: &bounds.suffix_min,
                            capacity,
                            device: self.device,
                            start: range.start,
                            n,
                            best: None,
                            floor: bounds.floor,
                            subtree: &bounds.subtree,
                            shared_best: Some(&shared),
                            counters,
                        };
                        let mut chosen = vec![entry.config.clone()];
                        visit(&mut ctx, 1, &mut chosen, used, entry.bound);
                        if let Some(best) = ctx.best {
                            found.push((t, best));
                        }
                    }
                    found
                }));
            }
            for h in handles {
                candidates.extend(h.join().expect("search worker panicked"));
            }
        });
        candidates.sort_by_key(|(t, (latency, _, _))| (*latency, *t));
        candidates
            .into_iter()
            .next()
            .map(|(_, (_, configs, timing))| GroupPlan {
                start: range.start,
                end: range.end,
                configs,
                timing,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winofuse_model::zoo;

    #[test]
    fn single_layer_group_prefers_max_parallelism() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let plan = planner.plan(1..2).unwrap();
        // conv1_2 alone can use a big engine; latency must beat a p=16 one.
        let modest = LayerConfig::build(
            &net,
            1,
            EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 16,
            },
        )
        .unwrap();
        let modest_t = group_timing(&[modest], &dev).unwrap();
        assert!(plan.latency() < modest_t.latency);
    }

    #[test]
    fn heterogeneous_beats_or_matches_homogeneous() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let range = 0..net.len();
        let hetero = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous())
            .unwrap()
            .plan(range.clone())
            .unwrap();
        let conv_only = GroupPlanner::new(&net, &dev, AlgoPolicy::conventional_only())
            .unwrap()
            .plan(range)
            .unwrap();
        assert!(
            hetero.latency() <= conv_only.latency(),
            "hetero {} vs conventional-only {}",
            hetero.latency(),
            conv_only.latency()
        );
    }

    #[test]
    fn heterogeneous_vgg_group_uses_winograd_somewhere() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let plan = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous())
            .unwrap()
            .plan(0..net.len())
            .unwrap();
        let wino = plan
            .configs
            .iter()
            .filter(|c| matches!(c.engine.algorithm, Algorithm::Winograd { .. }))
            .count();
        assert!(
            wino > 0,
            "expected at least one winograd layer in the fused VGG prefix"
        );
        // And the plan must fit the device.
        assert!(plan.timing.resources.fits_within(dev.resources()));
    }

    #[test]
    fn sparse_policy_selects_sparse_winograd_somewhere_on_vgg() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let plan = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous_sparse(250))
            .unwrap()
            .plan(0..net.len())
            .unwrap();
        let sparse = plan
            .configs
            .iter()
            .filter(|c| matches!(c.engine.algorithm, Algorithm::SparseWinograd { .. }))
            .count();
        assert!(
            sparse > 0,
            "expected at least one sparse-winograd layer in the pruned VGG prefix"
        );
        assert!(plan.timing.resources.fits_within(dev.resources()));
        // The pruned menu can only help: the optimum is no slower than
        // the dense heterogeneous one.
        let dense = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous())
            .unwrap()
            .plan(0..net.len())
            .unwrap();
        assert!(
            plan.latency() <= dense.latency(),
            "sparse {} vs dense {}",
            plan.latency(),
            dense.latency()
        );
    }

    #[test]
    fn sparse_policy_dominance_pruning_preserves_optimal_latency() {
        let dev = FpgaDevice::zc706();
        let net = zoo::small_test_net();
        let mut pruned =
            GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous_sparse(250)).unwrap();
        let mut full =
            GroupPlanner::new_unpruned(&net, &dev, AlgoPolicy::heterogeneous_sparse(250)).unwrap();
        for end in 1..=net.len() {
            assert_eq!(
                pruned.plan(0..end).as_ref().map(GroupPlan::latency),
                full.plan(0..end).as_ref().map(GroupPlan::latency),
                "range 0..{end}: three-menu dominance pruning must not change the optimum"
            );
        }
    }

    #[test]
    fn oversized_ranges_rejected() {
        let net = zoo::vgg_e().conv_body().unwrap();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        assert!(planner.plan(0..MAX_FUSION_LAYERS + 1).is_none());
        assert!(planner.plan(3..3).is_none());
    }

    #[test]
    fn memoization_returns_identical_plans() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let a = planner.plan(0..3);
        let b = planner.plan(0..3);
        assert_eq!(a, b);
    }

    #[test]
    fn fc_layers_make_planner_construction_fail() {
        let net = zoo::alexnet(); // contains FC layers
        let dev = FpgaDevice::zc706();
        assert!(GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).is_err());
        // The conv body works.
        let body = net.conv_body().unwrap();
        assert!(GroupPlanner::new(&body, &dev, AlgoPolicy::heterogeneous()).is_ok());
    }

    #[test]
    fn winograd_preferred_still_maps_strided_layers() {
        let net = zoo::small_test_net(); // conv1 is stride-2
        let dev = FpgaDevice::zc706();
        let plan = GroupPlanner::new(&net, &dev, AlgoPolicy::winograd_preferred())
            .unwrap()
            .plan(0..1)
            .unwrap();
        assert_eq!(plan.configs[0].engine.algorithm, Algorithm::Conventional);
    }

    #[test]
    fn group_plan_reports_min_transfer() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let plan = planner.plan(0..net.len()).unwrap();
        assert_eq!(
            plan.transfer_bytes(),
            net.fused_transfer_bytes(0..net.len(), DataType::Fixed16)
                .unwrap()
        );
    }

    #[test]
    fn dominance_pruning_preserves_optimal_latency() {
        let dev = FpgaDevice::zc706();
        for net in [zoo::small_test_net(), zoo::vgg_e_fused_prefix()] {
            let mut pruned = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
            let mut full =
                GroupPlanner::new_unpruned(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
            let pruned_menu: usize = pruned.menu_sizes().iter().sum();
            let full_menu: usize = full.menu_sizes().iter().sum();
            assert_eq!(
                pruned_menu as u64 + pruned.menu_dominated(),
                full_menu as u64,
                "every removed entry is accounted"
            );
            for end in 1..=net.len() {
                let a = pruned.plan(0..end);
                let b = full.plan(0..end);
                assert_eq!(
                    a.as_ref().map(GroupPlan::latency),
                    b.as_ref().map(GroupPlan::latency),
                    "range 0..{end}: dominance pruning must not change the optimum"
                );
            }
        }
    }

    #[test]
    fn split_search_matches_serial() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        for policy in [
            AlgoPolicy::heterogeneous(),
            AlgoPolicy::conventional_only(),
            AlgoPolicy::winograd_preferred(),
            AlgoPolicy::heterogeneous_sparse(250),
        ] {
            let mut serial = GroupPlanner::new(&net, &dev, policy).unwrap();
            let split = GroupPlanner::new(&net, &dev, policy).unwrap();
            for end in 1..=net.len() {
                let a = serial.plan(0..end);
                let b = split.plan_split(0..end, 4);
                assert_eq!(a, b, "policy {policy:?}, range 0..{end}");
            }
        }
    }
}
