//! Brute-force partition enumeration, used to verify the dynamic program.
//!
//! Every way of cutting an `n`-layer chain into consecutive groups is one
//! of `2^(n−1)` bit patterns. For small `n` we can afford to evaluate all
//! of them with the same group planner the DP uses; the optimum must
//! match [`crate::dp::optimize`] exactly. (Group implementation itself is
//! optimal by construction of the branch-and-bound, so the composition is
//! a full optimality check of Algorithm 1 + Algorithm 2.)

use winofuse_model::network::Network;
use winofuse_model::shape::DataType;

use crate::bnb::GroupPlanner;
use crate::dp::PartitionResult;
use crate::CoreError;

/// Upper limit on layers for exhaustive enumeration (`2^(n−1)` patterns).
pub const MAX_EXHAUSTIVE_LAYERS: usize = 12;

/// Finds the optimal partition by enumerating every cut pattern.
///
/// # Errors
///
/// * [`CoreError::InvalidRequest`] when the network exceeds
///   [`MAX_EXHAUSTIVE_LAYERS`],
/// * [`CoreError::Infeasible`] when no partition satisfies the budget.
pub fn optimize(
    planner: &mut GroupPlanner<'_>,
    net: &Network,
    transfer_budget_bytes: u64,
) -> Result<PartitionResult, CoreError> {
    let n = net.len();
    if n == 0 {
        return Err(CoreError::InvalidRequest("network has no layers".into()));
    }
    if n > MAX_EXHAUSTIVE_LAYERS {
        return Err(CoreError::InvalidRequest(format!(
            "{n} layers exceeds the exhaustive limit of {MAX_EXHAUSTIVE_LAYERS}"
        )));
    }
    let dtype = DataType::Fixed16;
    let mut best: Option<(u64, Vec<std::ops::Range<usize>>)> = None;

    for mask in 0u32..(1u32 << (n - 1)) {
        // Bit b set => cut between layer b and b+1.
        let mut ranges = Vec::new();
        let mut start = 0usize;
        for b in 0..n - 1 {
            if mask & (1 << b) != 0 {
                ranges.push(start..b + 1);
                start = b + 1;
            }
        }
        ranges.push(start..n);

        let mut transfer = 0u64;
        let mut latency = 0u64;
        let mut feasible = true;
        for r in &ranges {
            let t = net
                .fused_transfer_bytes(r.clone(), dtype)
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
            transfer += t;
            match planner.plan(r.clone()) {
                Some(plan) => latency += plan.latency(),
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible || transfer > transfer_budget_bytes {
            continue;
        }
        if best.as_ref().map(|(l, _)| latency < *l).unwrap_or(true) {
            best = Some((latency, ranges));
        }
    }

    let (_, ranges) = best.ok_or_else(|| {
        CoreError::Infeasible(format!(
            "no partition satisfies a {transfer_budget_bytes} B transfer budget"
        ))
    })?;
    let mut groups = Vec::with_capacity(ranges.len());
    for r in ranges {
        groups.push(planner.plan(r).expect("feasibility established above"));
    }
    PartitionResult::from_groups(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::AlgoPolicy;
    use crate::dp;
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::zoo;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn dp_matches_exhaustive_small_net() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        for budget in [MB, 2 * MB, 16 * MB] {
            let brute = optimize(&mut planner, &net, budget);
            let smart = dp::optimize(&mut planner, &net, budget);
            match (brute, smart) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.latency, s.latency, "budget {budget}");
                    assert_eq!(b.groups.len(), s.groups.len(), "budget {budget}");
                }
                (Err(_), Err(_)) => {}
                (b, s) => panic!("feasibility disagrees at {budget}: {b:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn dp_matches_exhaustive_vgg_prefix() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        for budget in [2 * MB, 3 * MB, 8 * MB] {
            let b = optimize(&mut planner, &net, budget).unwrap();
            let s = dp::optimize(&mut planner, &net, budget).unwrap();
            assert_eq!(b.latency, s.latency, "budget {budget}");
        }
    }

    #[test]
    fn dp_matches_exhaustive_mixed_net() {
        let net = zoo::mixed_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let b = optimize(&mut planner, &net, 4 * MB).unwrap();
        let s = dp::optimize(&mut planner, &net, 4 * MB).unwrap();
        assert_eq!(b.latency, s.latency);
    }

    #[test]
    fn rejects_oversized_networks() {
        let net = zoo::vgg_e().conv_body().unwrap(); // 21 layers
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        assert!(matches!(
            optimize(&mut planner, &net, 100 * MB),
            Err(CoreError::InvalidRequest(_))
        ));
    }
}
