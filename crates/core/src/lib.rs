//! # winofuse-core — heterogeneous-algorithm strategy optimization
//!
//! The primary contribution of Xiao et al. (DAC 2017): given a CNN and an
//! FPGA, find the strategy `S = {⟨group, algorithm, parallelism⟩ per
//! layer}` that minimizes end-to-end latency subject to a feature-map
//! transfer constraint `T` and the device resource constraint `R`
//! (Problem 1, §5).
//!
//! * [`strategy`] — the strategy triples and validated partitions,
//! * [`bnb`] — the depth-first branch-and-bound that implements one
//!   fusion group, choosing algorithm + parallelism per layer and
//!   balancing the inter-layer pipeline (Algorithm 2),
//! * [`dp`] — the dynamic program over (layer range, transfer budget)
//!   that partitions the network into fusion groups (Algorithm 1), plus
//!   an exact Pareto-frontier formulation that avoids discretizing the
//!   budget,
//! * [`exhaustive`] — a brute-force partition enumerator used to verify
//!   the DP's optimality on small networks,
//! * [`parallel`] — multi-threaded construction of the `fusion[i][j]`
//!   plan table (every cell is an independent branch-and-bound), with
//!   bit-identical results at any thread count,
//! * [`framework`] — the end-to-end driver ("Caffe model + FPGA spec in,
//!   strategy + report out", §3), including homogeneous-algorithm
//!   restrictions for ablations,
//! * [`plan`] — lowering a solved strategy to an executable plan and
//!   instantiating the plan-faithful fused runner with per-group DRAM
//!   reconciliation,
//! * [`report`] — machine-readable (JSON/CSV) export of designs.
//!
//! ## Example
//!
//! ```
//! use winofuse_core::framework::Framework;
//! use winofuse_fpga::device::FpgaDevice;
//! use winofuse_model::zoo;
//!
//! # fn main() -> Result<(), winofuse_core::CoreError> {
//! let net = zoo::small_test_net();
//! let fw = Framework::new(FpgaDevice::zc706());
//! let design = fw.optimize(&net, 4 * 1024 * 1024)?;
//! assert!(design.timing.latency > 0);
//! # Ok(())
//! # }
//! ```

pub mod bnb;
pub mod cache;
pub mod dp;
pub mod exhaustive;
pub mod framework;
pub mod parallel;
pub mod plan;
pub mod report;
pub mod strategy;

mod error;

pub use error::CoreError;
pub use strategy::{LayerStrategy, Strategy};

/// The paper caps fusion groups at 8 layers "due to memory ports
/// limitation" (§7.1).
pub const MAX_FUSION_LAYERS: usize = 8;

/// The paper's transfer-constraint granularity: "we define the unit of
/// transfer constraint as 10 KB" (§7.1).
pub const TRANSFER_UNIT_BYTES: u64 = 10 * 1024;
