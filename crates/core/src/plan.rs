//! Lowering a solved strategy into an executable plan.
//!
//! The DP hands back a [`PartitionResult`]: fusion groups with resolved
//! per-layer engine configurations and analytic timing. An
//! [`ExecutionPlan`] is the thin, executable view of that result — one
//! entry per group carrying exactly what the fused runner needs (the
//! member configs and the group's analytic DRAM transfer budget), plus
//! the glue that instantiates a
//! [`FusedNetworkRunner`](winofuse_fusion::runner::FusedNetworkRunner)
//! whose measured traffic is reconciled against those budgets.

use winofuse_fusion::pipeline::LayerConfig;
use winofuse_fusion::runner::{FusedNetworkRunner, GroupSpec};
use winofuse_model::network::Network;
use winofuse_model::runtime::NetworkWeights;

use crate::dp::PartitionResult;
use crate::framework::OptimizedDesign;
use crate::CoreError;

/// One fusion group of an execution plan: where it sits in the network,
/// its resolved member configurations, and the DP's transfer budget the
/// runner must reproduce on the wire.
#[derive(Debug, Clone, Copy)]
pub struct PlannedGroup<'a> {
    /// First layer index (inclusive).
    pub start: usize,
    /// Last layer index (exclusive).
    pub end: usize,
    /// Resolved per-layer configurations, in forward order.
    pub configs: &'a [LayerConfig],
    /// The group's analytic DRAM traffic (feature maps + weights) from
    /// the DP's accounting — the reconciliation target.
    pub analytic_dram_bytes: u64,
}

/// An optimized strategy lowered to its executable form: the ordered
/// fusion groups with their analytic DRAM budgets.
#[derive(Debug, Clone)]
pub struct ExecutionPlan<'a> {
    groups: Vec<PlannedGroup<'a>>,
}

impl<'a> ExecutionPlan<'a> {
    /// Lowers a solved partition. Infallible: every [`PartitionResult`]
    /// is already validated by construction.
    pub fn from_partition(partition: &'a PartitionResult) -> Self {
        let groups = partition
            .groups
            .iter()
            .map(|g| PlannedGroup {
                start: g.start,
                end: g.end,
                configs: &g.configs,
                analytic_dram_bytes: g.timing.dram_fmap_bytes + g.timing.dram_weight_bytes,
            })
            .collect();
        ExecutionPlan { groups }
    }

    /// The planned groups, in execution order.
    pub fn groups(&self) -> &[PlannedGroup<'a>] {
        &self.groups
    }

    /// Total analytic DRAM traffic across all groups — matches the
    /// design's `fmap_transfer_bytes + weight_transfer_bytes`.
    pub fn total_analytic_dram_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.analytic_dram_bytes).sum()
    }

    /// Instantiates the fused runner for this plan: one
    /// [`FusedGroupRunner`](winofuse_fusion::runner::FusedGroupRunner)
    /// per group, each reconciling its measured DRAM traffic against the
    /// group's analytic budget.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when a group cannot be executed (missing
    /// weights, unfusable layer kind, broken chain).
    pub fn runner(
        &self,
        net: &Network,
        weights: &NetworkWeights,
    ) -> Result<FusedNetworkRunner, CoreError> {
        let specs: Vec<GroupSpec<'_>> = self
            .groups
            .iter()
            .map(|g| GroupSpec {
                start: g.start,
                configs: g.configs,
                analytic_dram_bytes: Some(g.analytic_dram_bytes),
            })
            .collect();
        FusedNetworkRunner::new(net, weights, &specs).map_err(CoreError::from)
    }
}

impl OptimizedDesign {
    /// The executable view of this design's partition: per-group configs
    /// and analytic DRAM budgets, ready to drive the fused runner.
    pub fn execution_plan(&self) -> ExecutionPlan<'_> {
        ExecutionPlan::from_partition(&self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use winofuse_conv::tensor::random_tensor;
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::runtime::forward;
    use winofuse_model::zoo;

    #[test]
    fn plan_mirrors_partition_accounting() {
        let net = zoo::small_test_net();
        let fw = Framework::new(FpgaDevice::zc706());
        let d = fw.optimize(&net, 8 * 1024 * 1024).unwrap();
        let plan = d.execution_plan();
        assert_eq!(plan.groups().len(), d.partition.groups.len());
        assert_eq!(
            plan.total_analytic_dram_bytes(),
            d.timing.fmap_transfer_bytes + d.timing.weight_transfer_bytes
        );
        let mut next = 0;
        for g in plan.groups() {
            assert_eq!(g.start, next);
            assert_eq!(g.configs.len(), g.end - g.start);
            next = g.end;
        }
        assert_eq!(next, net.len());
    }

    #[test]
    fn plan_runner_matches_reference_and_budget() {
        let net = zoo::small_test_net();
        let fw = Framework::new(FpgaDevice::zc706());
        // A tight budget forces more than one group, exercising the
        // group-to-group DRAM round trip.
        let d = fw.optimize(&net, 60 * 1024).unwrap();
        let plan = d.execution_plan();
        let weights = NetworkWeights::random(&net, 7).unwrap();
        let x = random_tensor(1, 3, 32, 32, 8);
        let runner = plan.runner(&net, &weights).unwrap().strict_dram(true);
        let report = runner.run(&x).unwrap();
        let gold = forward(&net, &weights, &x).unwrap();
        assert!(report.output.approx_eq(gold.last().unwrap(), 1e-4));
        assert_eq!(report.max_dram_delta(), 0);
        assert_eq!(
            report.analytic_dram_bytes(),
            plan.total_analytic_dram_bytes()
        );
    }
}
