//! Algorithm 1: dynamic programming over (layer range, transfer budget).
//!
//! ```text
//! L(i,j,t) = min( min_{i≤k<j, x<t} L(i,k,x) + L(k+1,j,t−x),  fusion[i][j] )
//! ```
//! subject to `t ≥ min_t[i][j]`, where `fusion[i][j]` comes from the
//! branch-and-bound of [`crate::bnb`] and `min_t[i][j]` is the group's
//! irreducible feature-map transfer (§5).
//!
//! Two implementations are provided:
//!
//! * [`optimize_units`] — the paper's formulation verbatim, with the
//!   transfer budget discretized in 10 KB units (§7.1) and `k_mark` /
//!   `t_mark` backtracking tables,
//! * [`optimize`] — an exact Pareto-frontier formulation: for every layer
//!   range the full (transfer, latency) trade-off curve is built bottom-up
//!   and the budget is applied only at the end. No discretization error,
//!   and large budgets cost nothing extra. The unit DP is kept as a
//!   cross-check (the tests assert they agree).

use std::collections::HashMap;
use std::ops::Range;

use winofuse_model::network::Network;
use winofuse_model::shape::DataType;
use winofuse_telemetry::{Counter, Histogram};

use crate::bnb::{GroupPlan, GroupPlanner};
use crate::strategy::Strategy;
use crate::{CoreError, TRANSFER_UNIT_BYTES};

/// A solved partition: fusion groups with their plans, the per-layer
/// strategy, and aggregate accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// Group plans in execution order.
    pub groups: Vec<GroupPlan>,
    /// The per-layer strategy triples.
    pub strategy: Strategy,
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Total feature-map transfer in bytes (the quantity `T` bounds).
    pub fmap_transfer_bytes: u64,
    /// Total weight transfer in bytes (not bounded by `T`, §5).
    pub weight_transfer_bytes: u64,
}

impl PartitionResult {
    pub(crate) fn from_groups(groups: Vec<GroupPlan>) -> Result<Self, CoreError> {
        let latency = groups.iter().map(|g| g.timing.latency).sum();
        let fmap = groups.iter().map(|g| g.timing.dram_fmap_bytes).sum();
        let weights = groups.iter().map(|g| g.timing.dram_weight_bytes).sum();
        let pairs: Vec<_> = groups
            .iter()
            .flat_map(|g| {
                g.configs
                    .iter()
                    .map(|c| (c.engine.algorithm, c.engine.parallelism))
            })
            .collect();
        let ranges: Vec<Range<usize>> = groups.iter().map(|g| g.start..g.end).collect();
        let strategy = Strategy::from_groups(&ranges, &pairs)?;
        Ok(PartitionResult {
            groups,
            strategy,
            latency,
            fmap_transfer_bytes: fmap,
            weight_transfer_bytes: weights,
        })
    }
}

// ---------------------------------------------------------------------------
// Pareto-frontier formulation (default)
// ---------------------------------------------------------------------------

/// How a frontier point was formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    /// The whole range is one fused group.
    Fused,
    /// Split after layer `k`; indices into the child frontiers.
    Split { k: usize, left: usize, right: usize },
}

/// One point on a range's (transfer, latency) trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrontierPoint {
    transfer: u64,
    latency: u64,
    choice: Choice,
}

/// Guard against pathological frontier growth: ranges keep at most this
/// many non-dominated points (dominance pruning alone keeps real networks
/// far below it; the cross-check tests would catch any distortion).
const MAX_FRONTIER: usize = 4096;

fn prune(mut points: Vec<FrontierPoint>) -> Vec<FrontierPoint> {
    points.sort_by_key(|p| (p.transfer, p.latency));
    let mut out: Vec<FrontierPoint> = Vec::new();
    for p in points {
        match out.last() {
            Some(last) if p.latency >= last.latency => {} // dominated
            _ => out.push(p),
        }
    }
    if out.len() > MAX_FRONTIER {
        // Keep the extremes and evenly thin the middle.
        let stride = out.len().div_ceil(MAX_FRONTIER);
        let mut thinned: Vec<FrontierPoint> = out.iter().step_by(stride).copied().collect();
        if thinned.last() != out.last() {
            thinned.push(*out.last().expect("nonempty"));
        }
        out = thinned;
    }
    out
}

struct FrontierBuilder<'a, 'b> {
    planner: &'b GroupPlanner<'a>,
    memo: HashMap<(usize, usize), Vec<FrontierPoint>>,
    /// `allowed_cut[k]` — whether the network may be split between layer
    /// `k` and `k+1`. All-true for plain optimization; module boundaries
    /// only for the paper's §7.1 GoogleNet coarsening.
    allowed_cut: Vec<bool>,
    /// Telemetry: `dp.subproblems` (frontier cells computed).
    subproblems: Counter,
    /// Telemetry: `dp.cache_hits` (memoized frontier reuses).
    cache_hits: Counter,
    /// Telemetry: `dp.frontier_points` (surviving points per cell).
    frontier_points: Histogram,
}

impl<'a, 'b> FrontierBuilder<'a, 'b> {
    fn new(planner: &'b GroupPlanner<'a>, allowed_cut: Vec<bool>) -> Self {
        let tele = planner.telemetry().clone();
        FrontierBuilder {
            planner,
            memo: HashMap::new(),
            allowed_cut,
            subproblems: tele.counter("dp.subproblems"),
            cache_hits: tele.counter("dp.cache_hits"),
            frontier_points: tele.histogram("dp.frontier_points"),
        }
    }

    fn frontier(&mut self, i: usize, j: usize) -> Vec<FrontierPoint> {
        if let Some(hit) = self.memo.get(&(i, j)) {
            self.cache_hits.incr();
            return hit.clone();
        }
        self.subproblems.incr();
        let mut points = Vec::new();
        if let Some(plan) = self.planner.plan_shared(i..j + 1) {
            points.push(FrontierPoint {
                transfer: plan.transfer_bytes(),
                latency: plan.latency(),
                choice: Choice::Fused,
            });
        }
        for k in i..j {
            if !self.allowed_cut[k] {
                continue;
            }
            let left = self.frontier(i, k);
            let right = self.frontier(k + 1, j);
            for (li, lp) in left.iter().enumerate() {
                for (ri, rp) in right.iter().enumerate() {
                    points.push(FrontierPoint {
                        transfer: lp.transfer + rp.transfer,
                        latency: lp.latency + rp.latency,
                        choice: Choice::Split {
                            k,
                            left: li,
                            right: ri,
                        },
                    });
                }
            }
        }
        let pruned = prune(points);
        self.frontier_points.record(pruned.len() as u64);
        self.memo.insert((i, j), pruned.clone());
        pruned
    }

    fn reconstruct(&mut self, i: usize, j: usize, idx: usize, out: &mut Vec<GroupPlan>) {
        let point = self.memo[&(i, j)][idx];
        match point.choice {
            Choice::Fused => {
                let plan = self
                    .planner
                    .plan_shared(i..j + 1)
                    .expect("fused point implies a plan");
                out.push(plan);
            }
            Choice::Split { k, left, right } => {
                self.reconstruct(i, k, left, out);
                self.reconstruct(k + 1, j, right, out);
            }
        }
    }
}

/// Solves Problem 1 exactly via Pareto frontiers: minimal end-to-end
/// latency for `net` on the planner's device with feature-map transfer
/// ≤ `transfer_budget_bytes`.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when even the most-fused partition
/// exceeds the budget (or no partition is implementable at all).
pub fn optimize(
    planner: &mut GroupPlanner<'_>,
    net: &Network,
    transfer_budget_bytes: u64,
) -> Result<PartitionResult, CoreError> {
    optimize_with_cuts(planner, net, transfer_budget_bytes, None)
}

/// Like [`optimize`], but splits are only allowed after the layer indices
/// in `boundaries` — the paper's §7.1 coarsening for module-structured
/// networks ("we can treat every module as a single layer"): passing the
/// module end indices makes every module atomic for the partitioner,
/// shrinking the search space on very deep CNNs.
///
/// # Errors
///
/// Same conditions as [`optimize`]; additionally
/// [`CoreError::InvalidRequest`] for out-of-range boundaries.
pub fn optimize_with_cuts(
    planner: &mut GroupPlanner<'_>,
    net: &Network,
    transfer_budget_bytes: u64,
    boundaries: Option<&[usize]>,
) -> Result<PartitionResult, CoreError> {
    let n = net.len();
    if n == 0 {
        return Err(CoreError::InvalidRequest("network has no layers".into()));
    }
    let allowed_cut = cut_mask(n, boundaries)?;
    let span = planner.telemetry().clone().span("dp", "optimize");
    let mut builder = FrontierBuilder::new(planner, allowed_cut);
    let frontier = builder.frontier(0, n - 1);
    if frontier.is_empty() {
        return Err(CoreError::Infeasible(
            "no partition of the network is implementable on this device".into(),
        ));
    }
    // Points are sorted by transfer with strictly decreasing latency: the
    // best point within budget is the last one that fits.
    let within: Vec<(usize, &FrontierPoint)> = frontier
        .iter()
        .enumerate()
        .filter(|(_, p)| p.transfer <= transfer_budget_bytes)
        .collect();
    let Some(&(idx, _)) = within.last() else {
        let min_needed = frontier.first().map(|p| p.transfer).unwrap_or(0);
        return Err(CoreError::Infeasible(format!(
            "transfer budget {transfer_budget_bytes} B below the minimum {min_needed} B"
        )));
    };
    let mut groups = Vec::new();
    builder.reconstruct(0, n - 1, idx, &mut groups);
    drop(span);
    PartitionResult::from_groups(groups)
}

/// The full (transfer bytes, latency cycles) trade-off curve of the whole
/// network — the data behind a Fig. 5-style sweep, exposed for analysis.
pub fn tradeoff_curve(planner: &mut GroupPlanner<'_>, net: &Network) -> Vec<(u64, u64)> {
    let n = net.len();
    if n == 0 {
        return Vec::new();
    }
    let allowed_cut = cut_mask(n, None).expect("all-cuts mask is valid");
    let mut builder = FrontierBuilder::new(planner, allowed_cut);
    builder
        .frontier(0, n - 1)
        .iter()
        .map(|p| (p.transfer, p.latency))
        .collect()
}

/// Builds the cut-permission mask: all cuts allowed, or only the listed
/// boundaries (a boundary `k` permits splitting between layers `k` and
/// `k+1`). Shared with [`crate::parallel`], which enumerates the same
/// admissible ranges the DP recursion will request.
pub(crate) fn cut_mask(n: usize, boundaries: Option<&[usize]>) -> Result<Vec<bool>, CoreError> {
    match boundaries {
        None => Ok(vec![true; n.saturating_sub(1)]),
        Some(bs) => {
            let mut mask = vec![false; n.saturating_sub(1)];
            for &b in bs {
                if b + 1 >= n {
                    return Err(CoreError::InvalidRequest(format!(
                        "cut boundary {b} out of range for {n} layers"
                    )));
                }
                mask[b] = true;
            }
            Ok(mask)
        }
    }
}

// ---------------------------------------------------------------------------
// Unit-discretized formulation (Algorithm 1 verbatim)
// ---------------------------------------------------------------------------

/// Solves Problem 1 with the paper's discretized DP: budgets in
/// [`TRANSFER_UNIT_BYTES`] units, `L[i][j][t]` tables and
/// `k_mark`/`t_mark` backtracking.
///
/// Complexity `O(N³T²)` in the worst case; intended for the paper's
/// budget scales (a few hundred units). Prefer [`optimize`] elsewhere.
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_units(
    planner: &mut GroupPlanner<'_>,
    net: &Network,
    transfer_budget_bytes: u64,
) -> Result<PartitionResult, CoreError> {
    const INF: u64 = u64::MAX / 4;
    let n = net.len();
    if n == 0 {
        return Err(CoreError::InvalidRequest("network has no layers".into()));
    }
    let t_units = (transfer_budget_bytes / TRANSFER_UNIT_BYTES) as usize;
    let tdim = t_units + 1;
    let tele = planner.telemetry().clone();
    let span = tele.span("dp", "optimize_units");
    tele.counter("dp.budget_levels").add(tdim as u64);
    let cell_evals = tele.counter("dp.cell_evals");

    // min_t[i][j] in units (ceil: a group needs its whole transfer).
    let dtype = DataType::Fixed16;
    let mut min_t = vec![vec![usize::MAX; n]; n];
    let mut fusion_lat = vec![vec![INF; n]; n];
    for i in 0..n {
        for j in i..n {
            let bytes = net
                .fused_transfer_bytes(i..j + 1, dtype)
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
            min_t[i][j] = bytes.div_ceil(TRANSFER_UNIT_BYTES) as usize;
            if let Some(plan) = planner.plan(i..j + 1) {
                fusion_lat[i][j] = plan.latency();
            }
        }
    }

    let idx = |i: usize, j: usize, t: usize| (i * n + j) * tdim + t;
    let mut l = vec![INF; n * n * tdim];
    let mut k_mark = vec![usize::MAX; n * n * tdim];
    let mut t_mark = vec![usize::MAX; n * n * tdim];

    // The paper iterates j outer, i from j down, t ascending (Alg. 1).
    for j in 0..n {
        for i in (0..=j).rev() {
            for t in 0..tdim {
                if t < min_t[i][j] {
                    continue; // L = INF
                }
                cell_evals.incr();
                let mut best = fusion_lat[i][j];
                let mut kf = j;
                let mut tf = t;
                for k in i..j {
                    if min_t[i][k] == usize::MAX
                        || min_t[k + 1][j] == usize::MAX
                        || t < min_t[i][k] + min_t[k + 1][j]
                    {
                        continue;
                    }
                    for x in min_t[i][k]..=t - min_t[k + 1][j] {
                        let left = l[idx(i, k, x)];
                        let right = l[idx(k + 1, j, t - x)];
                        if left >= INF || right >= INF {
                            continue;
                        }
                        let sum = left + right;
                        if sum < best {
                            best = sum;
                            kf = k;
                            tf = x;
                        }
                    }
                }
                l[idx(i, j, t)] = best;
                k_mark[idx(i, j, t)] = kf;
                t_mark[idx(i, j, t)] = tf;
            }
        }
    }

    let answer = l[idx(0, n - 1, t_units)];
    if answer >= INF {
        return Err(CoreError::Infeasible(format!(
            "transfer budget {transfer_budget_bytes} B ({t_units} units) admits no partition"
        )));
    }

    // Reconstruct the group structure from the marks.
    #[allow(clippy::too_many_arguments)]
    fn rebuild(
        i: usize,
        j: usize,
        t: usize,
        n: usize,
        tdim: usize,
        k_mark: &[usize],
        t_mark: &[usize],
        out: &mut Vec<(usize, usize)>,
    ) {
        let at = (i * n + j) * tdim + t;
        let k = k_mark[at];
        if k == j {
            out.push((i, j));
        } else {
            let x = t_mark[at];
            rebuild(i, k, x, n, tdim, k_mark, t_mark, out);
            rebuild(k + 1, j, t - x, n, tdim, k_mark, t_mark, out);
        }
    }
    let mut ranges = Vec::new();
    rebuild(0, n - 1, t_units, n, tdim, &k_mark, &t_mark, &mut ranges);

    let mut groups = Vec::with_capacity(ranges.len());
    for (i, j) in ranges {
        let plan = planner
            .plan(i..j + 1)
            .ok_or_else(|| CoreError::Infeasible(format!("group {i}..{j} lost its plan")))?;
        groups.push(plan);
    }
    drop(span);
    PartitionResult::from_groups(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::AlgoPolicy;
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::zoo;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn small_net_partitions_and_validates() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let r = optimize(&mut planner, &net, 10 * MB).unwrap();
        assert_eq!(r.strategy.len(), net.len());
        assert!(r.latency > 0);
        let covered: usize = r.groups.iter().map(|g| g.end - g.start).sum();
        assert_eq!(covered, net.len());
    }

    #[test]
    fn tighter_budget_never_faster() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let mut last = 0u64;
        // The fully fused prefix needs ~1.82 MB, so the sweep starts at 2.
        for budget in [2, 3, 4, 5, 6].map(|m| m * MB) {
            let r = optimize(&mut planner, &net, budget).unwrap();
            assert!(r.fmap_transfer_bytes <= budget, "budget respected");
            if last > 0 {
                assert!(r.latency <= last, "loosening the budget must not hurt");
            }
            last = r.latency;
        }
    }

    #[test]
    fn infeasible_budget_reports_minimum() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        // The absolute floor is input+output of the fully fused prefix
        // (~1.9 MB); 0.5 MB is below it.
        match optimize(&mut planner, &net, MB / 2) {
            Err(CoreError::Infeasible(msg)) => assert!(msg.contains("minimum")),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unit_dp_agrees_with_pareto() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        for budget in [2 * MB, 4 * MB] {
            let pareto = optimize(&mut planner, &net, budget).unwrap();
            let units = optimize_units(&mut planner, &net, budget).unwrap();
            // The unit DP floors budgets to 10 KB units, so it may only be
            // equal or (rarely, by one unit of transfer) slower.
            assert!(
                units.latency >= pareto.latency,
                "unit DP {} beat exact {} at budget {budget}",
                units.latency,
                pareto.latency
            );
            let slack = (pareto.latency / 100).max(1); // 1%
            assert!(
                units.latency <= pareto.latency + slack,
                "unit DP {} far from exact {} at budget {budget}",
                units.latency,
                pareto.latency
            );
        }
    }

    #[test]
    fn loose_budget_splits_into_more_groups() {
        // §7.2: with a 34 MB constraint "each layer forms a group in our
        // algorithm" — per-layer groups give every layer the whole FPGA.
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let loose = optimize(&mut planner, &net, 64 * MB).unwrap();
        let tight = optimize(&mut planner, &net, 2 * MB).unwrap();
        assert!(loose.groups.len() >= tight.groups.len());
        assert!(loose.latency <= tight.latency);
    }

    #[test]
    fn tradeoff_curve_is_monotone() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let curve = tradeoff_curve(&mut planner, &net);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0, "transfer strictly increasing");
            assert!(w[0].1 > w[1].1, "latency strictly decreasing");
        }
    }

    #[test]
    fn groups_respect_max_fusion_depth() {
        let net = zoo::vgg_e().conv_body().unwrap();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let r = optimize(&mut planner, &net, 400 * MB).unwrap();
        for g in &r.groups {
            assert!(g.end - g.start <= crate::MAX_FUSION_LAYERS);
        }
        assert_eq!(r.strategy.len(), net.len());
    }
}
