use std::error::Error;
use std::fmt;

/// Errors produced by the strategy optimizer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// No feasible strategy exists under the given constraints (transfer
    /// budget below the minimum, or no engine assignment fits the device).
    Infeasible(String),
    /// The request itself is malformed (empty network, zero budget, a
    /// network containing layers the accelerator cannot map).
    InvalidRequest(String),
    /// Propagated error from a substrate crate.
    Substrate(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Infeasible(m) => write!(f, "no feasible strategy: {m}"),
            CoreError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            CoreError::Substrate(m) => write!(f, "substrate error: {m}"),
        }
    }
}

impl Error for CoreError {}

impl From<winofuse_model::ModelError> for CoreError {
    fn from(e: winofuse_model::ModelError) -> Self {
        CoreError::Substrate(e.to_string())
    }
}

impl From<winofuse_fpga::FpgaError> for CoreError {
    fn from(e: winofuse_fpga::FpgaError) -> Self {
        CoreError::Substrate(e.to_string())
    }
}

impl From<winofuse_fusion::FusionError> for CoreError {
    fn from(e: winofuse_fusion::FusionError) -> Self {
        CoreError::Substrate(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Infeasible("budget too small".into())
            .to_string()
            .contains("budget"));
        let e: CoreError = winofuse_fpga::FpgaError::InvalidParameter("x".into()).into();
        assert!(e.to_string().contains("x"));
    }
}
