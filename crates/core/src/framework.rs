//! The end-to-end framework driver (§3, Fig. 3): network + device in,
//! optimal strategy + report out.

use std::fmt::Write as _;

use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::energy::EnergyModel;
use winofuse_fpga::engine::Algorithm;
use winofuse_model::network::Network;
use winofuse_runtime::faults::{FaultInjector, FaultMode};
use winofuse_telemetry::{RunTelemetry, Telemetry};

use crate::bnb::{AlgoPolicy, GroupPlanner};
use crate::dp::{self, PartitionResult};
use crate::CoreError;

/// An optimized accelerator design for one network on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedDesign {
    /// The solved partition with per-layer strategies and group plans.
    pub partition: PartitionResult,
    /// End-to-end timing summary (aliases of partition fields, kept for
    /// readable call sites).
    pub timing: DesignTiming,
}

/// Aggregate timing/throughput numbers of a design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignTiming {
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Latency in milliseconds at the device clock.
    pub latency_ms: f64,
    /// Effective performance in GOPS over the network's operation count.
    pub effective_gops: f64,
    /// Feature-map DRAM traffic in bytes.
    pub fmap_transfer_bytes: u64,
    /// Weight DRAM traffic in bytes.
    pub weight_transfer_bytes: u64,
}

/// The strategy framework: owns the device description and algorithm
/// policy.
///
/// # Examples
///
/// ```
/// use winofuse_core::framework::Framework;
/// use winofuse_fpga::device::FpgaDevice;
/// use winofuse_model::zoo;
///
/// # fn main() -> Result<(), winofuse_core::CoreError> {
/// let fw = Framework::new(FpgaDevice::zc706());
/// let design = fw.optimize(&zoo::small_test_net(), 8 * 1024 * 1024)?;
/// println!("{}", design.partition.strategy);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Framework {
    device: FpgaDevice,
    policy: AlgoPolicy,
    energy: EnergyModel,
    max_group_layers: usize,
    /// Strategy-search worker threads (1 = fully serial search).
    threads: usize,
    telemetry: Telemetry,
    faults: FaultInjector,
    fault_mode: Option<FaultMode>,
}

impl Framework {
    /// Creates a framework with the paper's heterogeneous exploration.
    /// The strategy search uses all available cores by default; see
    /// [`Framework::with_threads`].
    pub fn new(device: FpgaDevice) -> Self {
        Framework {
            device,
            policy: AlgoPolicy::heterogeneous(),
            energy: EnergyModel::new(),
            max_group_layers: crate::MAX_FUSION_LAYERS,
            threads: crate::parallel::default_threads(),
            telemetry: Telemetry::disabled(),
            faults: FaultInjector::disabled(),
            fault_mode: None,
        }
    }

    /// Sets the strategy-search worker-thread count. `0` means "auto"
    /// (available parallelism). `1` runs the exact single-threaded
    /// search; any other count prefills the `fusion[i][j]` plan table
    /// from scoped workers before the DP runs — the results (and the
    /// search's node accounting) are bit-identical at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            crate::parallel::default_threads()
        } else {
            threads
        };
        self
    }

    /// The strategy-search worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches an observability context: search counters, spans, and
    /// (when the context has a sink) trace events flow into it from every
    /// subsequent optimization and simulation call.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The observability context (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a deterministic fault injector; it propagates into every
    /// runner the framework builds (see `winofuse_runtime::faults`).
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// The attached fault injector (disabled unless set).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Overrides the fault-handling mode of every runner the framework
    /// builds. `None` (the default) keeps each runner's own default
    /// (strict under `debug_assertions`).
    pub fn with_fault_mode(mut self, mode: FaultMode) -> Self {
        self.fault_mode = Some(mode);
        self
    }

    /// Overrides the fusion-group size cap (default 8, §7.1; the AlexNet
    /// experiment of §7.3 fuses all 10 body layers).
    pub fn with_max_group_layers(mut self, max: usize) -> Self {
        self.max_group_layers = max.max(1);
        self
    }

    /// Restricts the algorithm space (homogeneous ablations).
    pub fn with_policy(mut self, policy: AlgoPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The target device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// The energy model used in reports.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Optimizes `net` under a feature-map transfer budget (Problem 1).
    /// The network must contain only fusable layers — strip FC heads with
    /// [`Network::conv_body`].
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidRequest`] — unmappable layer / empty network,
    /// * [`CoreError::Infeasible`] — budget below the fused minimum.
    pub fn optimize(
        &self,
        net: &Network,
        transfer_budget_bytes: u64,
    ) -> Result<OptimizedDesign, CoreError> {
        let span = self.telemetry.span("framework", "optimize");
        let mut planner = self.planner_for(net)?;
        self.prefill(&planner, net.len(), None)?;
        let partition = dp::optimize(&mut planner, net, transfer_budget_bytes)?;
        drop(span);
        let timing = self.timing_of(net, &partition);
        Ok(OptimizedDesign { partition, timing })
    }

    /// Like [`Framework::optimize`], but also returns the run's telemetry
    /// summary (search counters, prune statistics, DP cache behavior).
    /// Works even when no context was attached: a fresh enabled context
    /// is used for just this call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Framework::optimize`].
    pub fn optimize_traced(
        &self,
        net: &Network,
        transfer_budget_bytes: u64,
    ) -> Result<(OptimizedDesign, RunTelemetry), CoreError> {
        let fw = if self.telemetry.is_enabled() {
            self.clone()
        } else {
            self.clone().with_telemetry(Telemetry::enabled())
        };
        let design = fw.optimize(net, transfer_budget_bytes)?;
        Ok((design, fw.telemetry.summary()))
    }

    /// A group planner for `net` carrying this framework's policy, group
    /// cap, and telemetry context.
    fn planner_for<'a>(&'a self, net: &'a Network) -> Result<GroupPlanner<'a>, CoreError> {
        let mut planner = GroupPlanner::new(net, &self.device, self.policy)?;
        planner.set_max_group_layers(self.max_group_layers);
        planner.set_telemetry(self.telemetry.clone());
        Ok(planner)
    }

    /// Fills the `fusion[i][j]` plan table from worker threads when more
    /// than one is configured; with one thread the lazy serial path is
    /// exact and prefilling would only reorder work.
    fn prefill(
        &self,
        planner: &GroupPlanner<'_>,
        n: usize,
        boundaries: Option<&[usize]>,
    ) -> Result<(), CoreError> {
        if self.threads > 1 {
            crate::parallel::fill_plan_table(planner, n, boundaries, self.threads)?;
        }
        Ok(())
    }

    /// Optimizes a module-structured network treating every module as a
    /// single layer (§7.1: the GoogleNet coarsening) — the partitioner
    /// may only cut at module boundaries, which shrinks the DP's search
    /// space on very deep CNNs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Framework::optimize`], plus
    /// [`CoreError::InvalidRequest`] for boundaries outside the network.
    pub fn optimize_modular(
        &self,
        modular: &winofuse_model::ModularNetwork,
        transfer_budget_bytes: u64,
    ) -> Result<OptimizedDesign, CoreError> {
        let net = &modular.network;
        let mut planner = self.planner_for(net)?;
        let boundaries = modular.cut_boundaries();
        self.prefill(&planner, net.len(), Some(&boundaries))?;
        let partition =
            dp::optimize_with_cuts(&mut planner, net, transfer_budget_bytes, Some(&boundaries))?;
        let timing = self.timing_of(net, &partition);
        Ok(OptimizedDesign { partition, timing })
    }

    /// The whole (transfer, latency) trade-off curve for `net` — every
    /// Pareto-optimal design the DP can reach.
    ///
    /// # Errors
    ///
    /// Same construction errors as [`Framework::optimize`].
    pub fn tradeoff_curve(&self, net: &Network) -> Result<Vec<(u64, u64)>, CoreError> {
        let mut planner = self.planner_for(net)?;
        self.prefill(&planner, net.len(), None)?;
        Ok(dp::tradeoff_curve(&mut planner, net))
    }

    fn timing_of(&self, net: &Network, partition: &PartitionResult) -> DesignTiming {
        let total_ops = net.total_ops();
        DesignTiming {
            latency: partition.latency,
            latency_ms: self.device.cycles_to_seconds(partition.latency) * 1e3,
            effective_gops: self.device.effective_gops(total_ops, partition.latency),
            fmap_transfer_bytes: partition.fmap_transfer_bytes,
            weight_transfer_bytes: partition.weight_transfer_bytes,
        }
    }

    /// Multi-frame batch timing of a design (an extension beyond the
    /// paper's single-frame accounting): weights and reconfiguration are
    /// amortized across the batch. See
    /// [`winofuse_fusion::pipeline::batch_sequence_timing`].
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Substrate`] for a zero frame count.
    pub fn batch_timing(
        &self,
        design: &OptimizedDesign,
        frames: u64,
    ) -> Result<winofuse_fusion::pipeline::BatchTiming, CoreError> {
        let groups: Vec<winofuse_fusion::pipeline::GroupTiming> = design
            .partition
            .groups
            .iter()
            .map(|g| g.timing.clone())
            .collect();
        winofuse_fusion::pipeline::batch_sequence_timing(&groups, &self.device, frames)
            .map_err(CoreError::from)
    }

    /// Board power (W) of a design's worst-case group (groups run
    /// sequentially, so the instantaneous power is the active group's).
    pub fn power_watts(&self, design: &OptimizedDesign) -> f64 {
        design
            .partition
            .groups
            .iter()
            .map(|g| self.energy.power_watts(&g.timing.resources))
            .fold(0.0, f64::max)
    }

    /// Total energy (J) of a design: per-group compute energy + DRAM
    /// transfer energy.
    pub fn energy_joules(&self, design: &OptimizedDesign) -> f64 {
        let mut total = 0.0;
        for g in &design.partition.groups {
            let seconds = self.device.cycles_to_seconds(g.timing.latency);
            total += self
                .energy
                .compute_energy_joules(&g.timing.resources, seconds);
            total += self
                .energy
                .transfer_energy_joules(g.timing.dram_fmap_bytes + g.timing.dram_weight_bytes);
        }
        total
    }

    /// Runs a design's fusion groups through the behavioral simulator
    /// end to end and cross-checks every group's output against the
    /// unfused reference executor — the one-call functional validation
    /// of a strategy.
    ///
    /// Returns the final output tensor and the total simulated cycles.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when simulation fails or any group's
    /// output diverges from the reference by more than `tol`.
    pub fn validate_by_simulation(
        &self,
        net: &Network,
        design: &OptimizedDesign,
        weights: &winofuse_model::runtime::NetworkWeights,
        input: &winofuse_conv::tensor::Tensor<f32>,
        tol: f32,
    ) -> Result<(winofuse_conv::tensor::Tensor<f32>, u64), CoreError> {
        let reference = winofuse_model::runtime::forward(net, weights, input)?;
        let mut cur = input.clone();
        let mut cycles = 0u64;
        // Simulator stages get consecutive trace lanes across groups, and
        // each group starts where the previous one finished in cycle time.
        let mut tid_base = 1u64;
        for plan in &design.partition.groups {
            let mut sim = winofuse_fusion::simulator::FusedGroupSim::new(
                net,
                plan.start,
                &plan.configs,
                weights,
                &self.device,
            )?;
            if self.telemetry.is_enabled() {
                sim.set_telemetry(self.telemetry.clone(), tid_base, cycles);
                tid_base += plan.configs.len() as u64;
            }
            let r = sim.run(&cur)?;
            let gold = &reference[plan.end - 1];
            let diff = r
                .output
                .max_abs_diff(gold)
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
            if diff > tol {
                return Err(CoreError::Substrate(format!(
                    "group {}..{} diverges from the reference by {diff} (tol {tol})",
                    plan.start, plan.end
                )));
            }
            cycles += r.cycles;
            cur = r.output;
        }
        Ok((cur, cycles))
    }

    /// Instantiates the plan-faithful fused runner for a design: one
    /// group runner per fusion group, driving the fast convolution
    /// kernels with the strategy's algorithm choices and reconciling
    /// measured DRAM traffic against each group's analytic budget. The
    /// framework's thread count and telemetry context carry over.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when the design cannot be executed
    /// (missing weights, unfusable layer kind).
    pub fn fused_runner(
        &self,
        net: &Network,
        design: &OptimizedDesign,
        weights: &winofuse_model::runtime::NetworkWeights,
    ) -> Result<winofuse_fusion::runner::FusedNetworkRunner, CoreError> {
        let mut runner = design
            .execution_plan()
            .runner(net, weights)?
            .with_threads(self.threads)
            .with_telemetry(self.telemetry.clone())
            .with_faults(self.faults.clone());
        if let Some(mode) = self.fault_mode {
            runner = runner.with_fault_mode(mode);
        }
        Ok(runner)
    }

    /// A per-layer bottleneck diagnosis: for every layer of every fusion
    /// group, which pipeline phase (load / compute / store) sets its
    /// stage length, and how much slack it has against the group's
    /// slowest stage — the information a designer needs to decide where
    /// to spend more parallelism or algorithm changes.
    pub fn explain(&self, net: &Network, design: &OptimizedDesign) -> String {
        let mut s = String::new();
        for (gi, g) in design.partition.groups.iter().enumerate() {
            let slowest = g
                .timing
                .layers
                .iter()
                .map(|t| t.iterations * t.stage_cycles_per_iter)
                .max()
                .unwrap_or(0);
            let _ = writeln!(
                s,
                "group {gi} (layers {}..{}): latency {} cycles{}",
                g.start,
                g.end,
                g.timing.latency,
                if g.timing.bandwidth_bound {
                    " [DRAM bound]"
                } else {
                    ""
                }
            );
            let _ = writeln!(
                s,
                "  {:<12} {:<9} {:>11} {:>11} {:>11} {:>9} {:>7}",
                "layer", "bound", "load/iter", "comp/iter", "store/iter", "total", "slack"
            );
            for (off, t) in g.timing.layers.iter().enumerate() {
                let bound = if t.stage_cycles_per_iter == t.compute_cycles_per_iter {
                    "compute"
                } else if t.stage_cycles_per_iter == t.load_cycles_per_iter {
                    "load"
                } else {
                    "store"
                };
                let total = t.iterations * t.stage_cycles_per_iter;
                let slack = if slowest == 0 {
                    0.0
                } else {
                    (1.0 - total as f64 / slowest as f64) * 100.0
                };
                let _ = writeln!(
                    s,
                    "  {:<12} {:<9} {:>11} {:>11} {:>11} {:>9} {:>6.0}%",
                    net.layers()[g.start + off].name,
                    bound,
                    t.load_cycles_per_iter,
                    t.compute_cycles_per_iter,
                    t.store_cycles_per_iter,
                    total,
                    slack
                );
            }
        }
        s
    }

    /// A human-readable per-layer report in the style of the paper's
    /// Table 2.
    pub fn report(&self, net: &Network, design: &OptimizedDesign) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<12} {:<13} {:>5}  {:>6} {:>5} {:>8} {:>8}",
            "layer", "algorithm", "par", "BRAM", "DSP", "FF", "LUT"
        );
        let mut total = winofuse_fpga::ResourceVec::ZERO;
        for g in &design.partition.groups {
            for (off, cfg) in g.configs.iter().enumerate() {
                let r = cfg.estimate.resources;
                total += r;
                let _ = writeln!(
                    s,
                    "{:<12} {:<13} {:>5}  {:>6} {:>5} {:>8} {:>8}",
                    net.layers()[g.start + off].name,
                    cfg.engine.algorithm.to_string(),
                    cfg.engine.parallelism,
                    r.bram_18k,
                    r.dsp,
                    r.ff,
                    r.lut
                );
            }
        }
        let cap = self.device.resources();
        let _ = writeln!(
            s,
            "{:<12} {:<13} {:>5}  {:>6} {:>5} {:>8} {:>8}",
            "total", "", "", total.bram_18k, total.dsp, total.ff, total.lut
        );
        let _ = writeln!(
            s,
            "{:<12} {:<13} {:>5}  {:>6} {:>5} {:>8} {:>8}",
            "available", "", "", cap.bram_18k, cap.dsp, cap.ff, cap.lut
        );
        let (b, d, f, l) = total.utilization_percent(cap);
        let _ = writeln!(
            s,
            "{:<12} {:<13} {:>5}  {:>5.1}% {:>4.1}% {:>7.1}% {:>7.1}%",
            "utilization", "", "", b, d, f, l
        );
        let _ = writeln!(
            s,
            "latency: {} cycles ({:.2} ms)",
            design.timing.latency, design.timing.latency_ms
        );
        let _ = writeln!(s, "effective: {:.1} GOPS", design.timing.effective_gops);
        s
    }

    /// Convenience: which algorithm the strategy assigned to each
    /// convolutional layer (for assertions and tables).
    pub fn conv_algorithms(net: &Network, design: &OptimizedDesign) -> Vec<(String, Algorithm)> {
        let mut out = Vec::new();
        for g in &design.partition.groups {
            for (off, cfg) in g.configs.iter().enumerate() {
                let layer = &net.layers()[g.start + off];
                if matches!(layer.kind, winofuse_model::layer::LayerKind::Conv(_)) {
                    out.push((layer.name.clone(), cfg.engine.algorithm));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winofuse_model::zoo;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn optimize_small_net_end_to_end() {
        let fw = Framework::new(FpgaDevice::zc706());
        let net = zoo::small_test_net();
        let d = fw.optimize(&net, 8 * MB).unwrap();
        assert!(d.timing.latency > 0);
        assert!(d.timing.effective_gops > 0.0);
        assert!(fw.power_watts(&d) > 0.0);
        assert!(fw.energy_joules(&d) > 0.0);
    }

    #[test]
    fn heterogeneous_beats_both_homogeneous_policies() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706();
        let budget = 2 * MB;
        let hetero = Framework::new(dev.clone()).optimize(&net, budget).unwrap();
        let conv = Framework::new(dev.clone())
            .with_policy(AlgoPolicy::conventional_only())
            .optimize(&net, budget)
            .unwrap();
        let wino = Framework::new(dev)
            .with_policy(AlgoPolicy::winograd_preferred())
            .optimize(&net, budget)
            .unwrap();
        assert!(hetero.timing.latency <= conv.timing.latency);
        assert!(hetero.timing.latency <= wino.timing.latency);
    }

    #[test]
    fn report_contains_every_layer_and_totals() {
        let fw = Framework::new(FpgaDevice::zc706());
        let net = zoo::small_test_net();
        let d = fw.optimize(&net, 8 * MB).unwrap();
        let report = fw.report(&net, &d);
        for layer in net.layers() {
            assert!(report.contains(&layer.name), "missing {}", layer.name);
        }
        assert!(report.contains("total"));
        assert!(report.contains("utilization"));
        assert!(report.contains("GOPS"));
    }

    #[test]
    fn alexnet_body_fuses_under_tight_budget() {
        // §7.3: "Given a 340KB transfer constraint [...] we are able to
        // fuse all the layers into one group."
        let net = zoo::alexnet().conv_body().unwrap();
        // The body is 10 layers; raise the group cap as §7.3 implies.
        let fw = Framework::new(FpgaDevice::zc706()).with_max_group_layers(10);
        let budget = 340 * 1024;
        let d = fw.optimize(&net, budget).unwrap();
        assert_eq!(d.partition.groups.len(), 1, "expected a single fused group");
        assert!(d.partition.fmap_transfer_bytes <= budget);
        // The paper's Table 2 finds a heterogeneous assignment.
        assert!(d.partition.strategy.is_heterogeneous());
    }

    #[test]
    fn validate_by_simulation_round_trips() {
        let net = zoo::small_test_net();
        let fw = Framework::new(FpgaDevice::zc706());
        let d = fw.optimize(&net, 8 * MB).unwrap();
        let weights = winofuse_model::runtime::NetworkWeights::random(&net, 23).unwrap();
        let x = winofuse_conv::tensor::random_tensor(1, 3, 32, 32, 24);
        let (out, cycles) = fw
            .validate_by_simulation(&net, &d, &weights, &x, 1e-4)
            .unwrap();
        assert!(cycles > 0);
        let shape = net.output_shape().unwrap();
        assert_eq!(
            (out.c(), out.h(), out.w()),
            (shape.channels, shape.height, shape.width)
        );
        // An absurd tolerance of zero on float math may pass (direct conv
        // is deterministic here) — but a negative tolerance must fail.
        assert!(fw
            .validate_by_simulation(&net, &d, &weights, &x, -1.0)
            .is_err());
    }

    #[test]
    fn explain_names_bound_phases_and_slack() {
        let net = zoo::vgg_e_fused_prefix();
        let fw = Framework::new(FpgaDevice::zc706());
        let d = fw.optimize(&net, 2 * MB).unwrap();
        let text = fw.explain(&net, &d);
        for layer in net.layers() {
            assert!(text.contains(&layer.name), "missing {}", layer.name);
        }
        assert!(text.contains("compute") || text.contains("load") || text.contains("store"));
        assert!(text.contains("slack"));
        // The slowest stage must show ~0% slack.
        assert!(
            text.contains(" 0%"),
            "some layer should be the bottleneck:\n{text}"
        );
    }

    #[test]
    fn batch_timing_amortizes() {
        let net = zoo::vgg_e_fused_prefix();
        let dev = FpgaDevice::zc706().with_reconfig_cycles(2_500_000);
        let fw = Framework::new(dev);
        let d = fw.optimize(&net, 16 * MB).unwrap();
        let b1 = fw.batch_timing(&d, 1).unwrap();
        let b32 = fw.batch_timing(&d, 32).unwrap();
        assert!(b32.cycles_per_frame < b1.cycles_per_frame);
        assert!(fw.batch_timing(&d, 0).is_err());
    }

    #[test]
    fn modular_optimization_respects_boundaries() {
        let modular = zoo::googlenet_like();
        let net = &modular.network;
        let fw = Framework::new(FpgaDevice::zc706());
        let d = fw.optimize_modular(&modular, 64 * MB).unwrap();
        // Every group boundary must coincide with a module boundary.
        let ends: Vec<usize> = modular.modules.iter().map(|m| m.end).collect();
        for g in &d.partition.groups {
            assert!(
                ends.contains(&g.end) || g.end == net.len(),
                "group end {} not on a module boundary",
                g.end
            );
            assert!(
                g.start == 0 || ends.contains(&g.start),
                "group start {} not on a module boundary",
                g.start
            );
        }
        // Restricting cuts can never beat the unrestricted optimum.
        let free = fw.optimize(net, 64 * MB).unwrap();
        assert!(d.timing.latency >= free.timing.latency);
    }

    #[test]
    fn conv_algorithms_lists_only_convs() {
        let net = zoo::mixed_test_net();
        let fw = Framework::new(FpgaDevice::zc706());
        let d = fw.optimize(&net, 8 * MB).unwrap();
        let algos = Framework::conv_algorithms(&net, &d);
        assert_eq!(algos.len(), 2);
        assert!(algos.iter().all(|(name, _)| name.starts_with("conv")));
    }
}
