//! Parallel construction of the `fusion[i][j]` plan table.
//!
//! The paper computes the table "offline" and every cell is an
//! independent branch-and-bound, so the table is embarrassingly
//! parallel. This module enumerates every range the DP of [`crate::dp`]
//! can request — `(i, j)` pairs whose endpoints are admissible under the
//! cut mask — and fills the planner's shared cache from scoped
//! `std::thread` workers. With the table prefilled, the single-threaded
//! DP recursion finds every `plan` call already memoized.
//!
//! Determinism: each cell is searched serially by exactly one worker, so
//! the per-range search — and every `bnb.*` node counter — is
//! bit-identical to a single-threaded run. Only the *order* in which
//! spans are recorded, and the `bnb.plan_cache_hits` count (every DP
//! request becomes a hit), differ from the lazy path. When the cut mask
//! admits a single range (a fully-fused network), range-level
//! parallelism degenerates, so the one branch-and-bound is split across
//! workers instead ([`GroupPlanner::plan_split`]).

use crate::bnb::GroupPlanner;
use crate::CoreError;

// The scoped worker pool lives in `winofuse-runtime` (shared with the
// execution backend); re-exported so existing `core::parallel` callers
// keep working.
pub use winofuse_runtime::default_threads;

/// Summary of one plan-table prefill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanTableStats {
    /// Admissible `(i, j)` ranges enumerated (== `bnb.plans_computed`
    /// when the cache started empty).
    pub ranges: usize,
    /// Worker threads actually spawned.
    pub workers: usize,
}

/// Size of the unpruned Algorithm 2 tree over `menu_sizes` — the
/// longest-job-first scheduling key.
fn exhaustive_weight(menu_sizes: &[usize]) -> u64 {
    menu_sizes
        .iter()
        .rev()
        .fold(1u64, |t, &m| (m as u64).saturating_mul(t).saturating_add(1))
}

/// Fills the planner's plan cache with every range the DP over `n` layers
/// can request under `boundaries` (`None` = all cuts allowed), using up
/// to `threads` scoped workers. Ranges are scheduled longest-job-first
/// (by unpruned tree size) to avoid tail stragglers.
///
/// # Errors
///
/// Returns [`CoreError::InvalidRequest`] for out-of-range boundaries —
/// the same validation the DP itself performs.
pub fn fill_plan_table(
    planner: &GroupPlanner<'_>,
    n: usize,
    boundaries: Option<&[usize]>,
    threads: usize,
) -> Result<PlanTableStats, CoreError> {
    let cut = crate::dp::cut_mask(n, boundaries)?;
    // A range `i..=j` is reachable from the DP's recursion exactly when
    // both endpoints are admissible: `i` starts the network or follows a
    // cut, `j` ends the network or precedes one. Over-long ranges are
    // kept — the DP requests them too (`plan` returns `None` cheaply).
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        if i != 0 && !cut[i - 1] {
            continue;
        }
        // `cut` has `n - 1` entries; the virtual cut after the last
        // layer always exists.
        let cut_after = cut.iter().copied().chain(std::iter::once(true));
        for (j, ends_range) in cut_after.enumerate().skip(i) {
            if ends_range {
                cells.push((i, j));
            }
        }
    }
    let sizes = planner.menu_sizes();
    let cap = planner.max_group_layers();
    let weights: Vec<u64> = cells
        .iter()
        .map(|&(i, j)| {
            if j - i + 1 > cap {
                0
            } else {
                exhaustive_weight(&sizes[i..=j])
            }
        })
        .collect();
    // Longest-job-first: `longest_first_order` breaks weight ties by index,
    // and `cells` is enumerated in (i, j) lexicographic order, so the
    // schedule is deterministic.
    let cells: Vec<(usize, usize)> = winofuse_runtime::longest_first_order(&weights)
        .into_iter()
        .map(|idx| cells[idx])
        .collect();

    let span = planner.telemetry().span("parallel", "plan_table");
    planner
        .telemetry()
        .counter("parallel.table_ranges")
        .add(cells.len() as u64);
    let workers = if cells.len() == 1 {
        // One admissible range: parallelism must come from inside the
        // branch-and-bound itself.
        let (i, j) = cells[0];
        planner.plan_split(i..j + 1, threads);
        1
    } else {
        winofuse_runtime::run_jobs(threads, cells.len(), |t| {
            let (i, j) = cells[t];
            planner.plan_shared(i..j + 1);
        })
    };
    drop(span);
    Ok(PlanTableStats {
        ranges: cells.len(),
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::AlgoPolicy;
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::zoo;
    use winofuse_telemetry::Telemetry;

    #[test]
    fn prefilled_table_turns_every_dp_request_into_a_hit() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        let tele = Telemetry::enabled();
        planner.set_telemetry(tele.clone());
        let stats = fill_plan_table(&planner, net.len(), None, 4).unwrap();
        // All-cuts mask: every (i, j) with i <= j is admissible.
        let n = net.len();
        assert_eq!(stats.ranges, n * (n + 1) / 2);
        let computed_before = tele.summary().counter("bnb.plans_computed");
        assert_eq!(computed_before, stats.ranges as u64);

        let r = crate::dp::optimize(&mut planner, &net, 8 * 1024 * 1024).unwrap();
        assert!(r.latency > 0);
        let s = tele.summary();
        assert_eq!(
            s.counter("bnb.plans_computed"),
            computed_before,
            "the DP must not search any range the table missed"
        );
        assert!(s.counter("bnb.plan_cache_hits") >= stats.ranges as u64);
    }

    #[test]
    fn table_respects_cut_boundaries() {
        let net = zoo::small_test_net();
        let dev = FpgaDevice::zc706();
        let planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
        // No interior cuts allowed: the only admissible range is 0..n.
        let stats = fill_plan_table(&planner, net.len(), Some(&[]), 4).unwrap();
        assert_eq!(stats.ranges, 1);
        // Out-of-range boundary is rejected like the DP rejects it.
        assert!(fill_plan_table(&planner, net.len(), Some(&[net.len()]), 2).is_err());
    }

    #[test]
    fn longest_job_first_ordering() {
        // Deeper ranges have exponentially larger unpruned trees.
        assert!(exhaustive_weight(&[4, 4, 4]) > exhaustive_weight(&[4, 4]));
        assert!(exhaustive_weight(&[9]) > exhaustive_weight(&[3]));
        // Saturation instead of overflow on absurd menus.
        let huge = vec![usize::MAX; 64];
        assert_eq!(exhaustive_weight(&huge), u64::MAX);
    }
}
