//! Machine-readable design export (JSON, hand-rolled — no external
//! dependencies), for downstream tooling that wants to consume strategies
//! without linking the library.

use std::fmt::Write as _;

use winofuse_model::network::Network;

use crate::framework::OptimizedDesign;

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes an optimized design to a self-describing JSON document:
/// network identity, per-group plans with per-layer strategy triples and
/// resource vectors, and the aggregate timing.
///
/// # Examples
///
/// ```
/// use winofuse_core::{framework::Framework, report};
/// use winofuse_fpga::device::FpgaDevice;
/// use winofuse_model::zoo;
///
/// # fn main() -> Result<(), winofuse_core::CoreError> {
/// let net = zoo::small_test_net();
/// let design = Framework::new(FpgaDevice::zc706()).optimize(&net, 8 * 1024 * 1024)?;
/// let json = report::to_json(&net, &design);
/// assert!(json.contains("\"groups\""));
/// # Ok(())
/// # }
/// ```
pub fn to_json(net: &Network, design: &OptimizedDesign) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"network\": \"{}\",", esc(net.name()));
    let _ = writeln!(s, "  \"layers\": {},", net.len());
    let _ = writeln!(s, "  \"latency_cycles\": {},", design.timing.latency);
    let _ = writeln!(s, "  \"latency_ms\": {:.6},", design.timing.latency_ms);
    let _ = writeln!(
        s,
        "  \"effective_gops\": {:.3},",
        design.timing.effective_gops
    );
    let _ = writeln!(
        s,
        "  \"fmap_transfer_bytes\": {},",
        design.timing.fmap_transfer_bytes
    );
    let _ = writeln!(
        s,
        "  \"weight_transfer_bytes\": {},",
        design.timing.weight_transfer_bytes
    );
    let _ = writeln!(s, "  \"groups\": [");
    for (gi, g) in design.partition.groups.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"start\": {}, \"end\": {},", g.start, g.end);
        let _ = writeln!(s, "      \"latency_cycles\": {},", g.timing.latency);
        let _ = writeln!(
            s,
            "      \"bandwidth_bound\": {},",
            g.timing.bandwidth_bound
        );
        let r = g.timing.resources;
        let _ = writeln!(
            s,
            "      \"resources\": {{\"bram_18k\": {}, \"dsp\": {}, \"ff\": {}, \"lut\": {}}},",
            r.bram_18k, r.dsp, r.ff, r.lut
        );
        let _ = writeln!(s, "      \"layers\": [");
        for (li, cfg) in g.configs.iter().enumerate() {
            let lr = cfg.estimate.resources;
            let _ = writeln!(s, "        {{");
            let _ = writeln!(s, "          \"name\": \"{}\",", esc(&cfg.layer.name));
            let _ = writeln!(s, "          \"kind\": \"{}\",", cfg.layer.kind.tag());
            let _ = writeln!(s, "          \"algorithm\": \"{}\",", cfg.engine.algorithm);
            let _ = writeln!(s, "          \"parallelism\": {},", cfg.engine.parallelism);
            let _ = writeln!(
                s,
                "          \"input\": \"{}\", \"output\": \"{}\",",
                cfg.input, cfg.output
            );
            let _ = writeln!(
                s,
                "          \"resources\": {{\"bram_18k\": {}, \"dsp\": {}, \"ff\": {}, \"lut\": {}}}",
                lr.bram_18k, lr.dsp, lr.ff, lr.lut
            );
            let comma = if li + 1 < g.configs.len() { "," } else { "" };
            let _ = writeln!(s, "        }}{comma}");
        }
        let _ = writeln!(s, "      ]");
        let comma = if gi + 1 < design.partition.groups.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Serializes a (transfer, latency) trade-off curve as CSV with a header
/// row — the raw data behind a Fig. 5-style plot.
pub fn curve_to_csv(curve: &[(u64, u64)]) -> String {
    let mut s = String::from("transfer_bytes,latency_cycles\n");
    for (t, l) in curve {
        let _ = writeln!(s, "{t},{l}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use winofuse_fpga::device::FpgaDevice;
    use winofuse_model::zoo;

    const MB: u64 = 1024 * 1024;

    /// A tiny structural JSON validator: brackets balance, strings close.
    fn check_json_balanced(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let net = zoo::small_test_net();
        let design = Framework::new(FpgaDevice::zc706())
            .optimize(&net, 8 * MB)
            .unwrap();
        let json = to_json(&net, &design);
        check_json_balanced(&json);
        for layer in net.layers() {
            assert!(json.contains(&format!("\"name\": \"{}\"", layer.name)));
        }
        assert!(json.contains("\"algorithm\""));
        assert!(json.contains("\"bram_18k\""));
    }

    #[test]
    fn escaping_handles_special_characters() {
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
        assert_eq!(esc("a\nb"), "a\\nb");
        assert_eq!(esc("a\u{1}b"), "a\\u0001b");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = curve_to_csv(&[(100, 2000), (200, 1000)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "transfer_bytes,latency_cycles");
        assert_eq!(lines[1], "100,2000");
        assert_eq!(lines.len(), 3);
    }
}
