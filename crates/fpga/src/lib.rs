//! # winofuse-fpga — FPGA platform substrate
//!
//! The paper targets real Xilinx silicon through Vivado HLS; this crate is
//! the analytical stand-in that the rest of the reproduction runs against
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`resource`] — multi-dimensional resource vectors over
//!   BRAM18K / DSP48E / FF / LUT, the constraint `R` of Problem 1,
//! * [`device`] — a device catalog (ZC706's XC7Z045, Virtex-7 485T) with
//!   clock and DDR bandwidth,
//! * [`roofline`] — the roofline performance model of §2.2 / Fig. 1,
//! * [`engine`] — resource and throughput cost models for conventional and
//!   Winograd convolution engines, pooling and LRN engines, line buffers
//!   and weight buffers: the `implement()` estimator of Algorithm 2,
//! * [`energy`] — a linear power/energy model for the Table 1 comparisons.
//!
//! ## Example
//!
//! ```
//! use winofuse_fpga::device::FpgaDevice;
//! use winofuse_fpga::engine::{Algorithm, EngineConfig};
//!
//! let dev = FpgaDevice::zc706();
//! assert_eq!(dev.resources().dsp, 900);
//! let cfg = EngineConfig { algorithm: Algorithm::winograd_f43(), parallelism: 4 };
//! assert_eq!(cfg.algorithm.tile_multiplies(3).unwrap(), 36);
//! ```

pub mod device;
pub mod energy;
pub mod engine;
pub mod resource;
pub mod roofline;

mod error;

pub use error::FpgaError;
pub use resource::ResourceVec;
