//! Multi-dimensional FPGA resource accounting.
//!
//! "On FPGAs, resource constraint R is multi-dimensional including BRAMs,
//! DSP slices and logic cells of the target device" (§5). A
//! [`ResourceVec`] carries all four dimensions; strategies are feasible
//! only when their summed vector fits the device in **every** dimension.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Resource usage (or capacity) across the four FPGA dimensions.
///
/// # Examples
///
/// ```
/// use winofuse_fpga::ResourceVec;
///
/// let engine = ResourceVec::new(48, 122, 42_578, 31_512);
/// let device = ResourceVec::new(1090, 900, 437_200, 218_600);
/// assert!(engine.fits_within(&device));
/// assert!(!(engine + device).fits_within(&device));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceVec {
    /// 18-kilobit block RAM count.
    pub bram_18k: u64,
    /// DSP48E slice count.
    pub dsp: u64,
    /// Flip-flop count.
    pub ff: u64,
    /// Look-up table count.
    pub lut: u64,
}

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec {
        bram_18k: 0,
        dsp: 0,
        ff: 0,
        lut: 0,
    };

    /// Creates a vector from the four dimensions.
    pub fn new(bram_18k: u64, dsp: u64, ff: u64, lut: u64) -> Self {
        ResourceVec {
            bram_18k,
            dsp,
            ff,
            lut,
        }
    }

    /// Whether `self` fits inside `capacity` in every dimension.
    pub fn fits_within(&self, capacity: &ResourceVec) -> bool {
        self.bram_18k <= capacity.bram_18k
            && self.dsp <= capacity.dsp
            && self.ff <= capacity.ff
            && self.lut <= capacity.lut
    }

    /// Component-wise saturating subtraction (`self − other`, floored at
    /// zero): the "left resources" check of Algorithm 2, line 18.
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        ResourceVec {
            bram_18k: self.bram_18k.saturating_sub(other.bram_18k),
            dsp: self.dsp.saturating_sub(other.dsp),
            ff: self.ff.saturating_sub(other.ff),
            lut: self.lut.saturating_sub(other.lut),
        }
    }

    /// Scales every dimension by an integer factor.
    pub fn scale(&self, factor: u64) -> ResourceVec {
        ResourceVec {
            bram_18k: self.bram_18k * factor,
            dsp: self.dsp * factor,
            ff: self.ff * factor,
            lut: self.lut * factor,
        }
    }

    /// Largest per-dimension utilization fraction against `capacity`
    /// (dimension with zero capacity counts as fully utilized when
    /// requested).
    pub fn max_utilization(&self, capacity: &ResourceVec) -> f64 {
        let frac = |used: u64, cap: u64| {
            if cap == 0 {
                if used == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                used as f64 / cap as f64
            }
        };
        frac(self.bram_18k, capacity.bram_18k)
            .max(frac(self.dsp, capacity.dsp))
            .max(frac(self.ff, capacity.ff))
            .max(frac(self.lut, capacity.lut))
    }

    /// Per-dimension utilization percentages `(bram, dsp, ff, lut)`.
    pub fn utilization_percent(&self, capacity: &ResourceVec) -> (f64, f64, f64, f64) {
        let pct = |used: u64, cap: u64| {
            if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64 * 100.0
            }
        };
        (
            pct(self.bram_18k, capacity.bram_18k),
            pct(self.dsp, capacity.dsp),
            pct(self.ff, capacity.ff),
            pct(self.lut, capacity.lut),
        )
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: Self) -> Self {
        ResourceVec {
            bram_18k: self.bram_18k + rhs.bram_18k,
            dsp: self.dsp + rhs.dsp,
            ff: self.ff + rhs.ff,
            lut: self.lut + rhs.lut,
        }
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> Self {
        iter.fold(ResourceVec::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BRAM18K {}, DSP {}, FF {}, LUT {}",
            self.bram_18k, self.dsp, self.ff, self.lut
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_is_per_dimension() {
        let cap = ResourceVec::new(10, 10, 10, 10);
        assert!(ResourceVec::new(10, 10, 10, 10).fits_within(&cap));
        assert!(!ResourceVec::new(11, 0, 0, 0).fits_within(&cap));
        assert!(!ResourceVec::new(0, 0, 0, 11).fits_within(&cap));
    }

    #[test]
    fn add_and_sum() {
        let a = ResourceVec::new(1, 2, 3, 4);
        let b = ResourceVec::new(10, 20, 30, 40);
        assert_eq!(a + b, ResourceVec::new(11, 22, 33, 44));
        let total: ResourceVec = [a, b, a].into_iter().sum();
        assert_eq!(total, ResourceVec::new(12, 24, 36, 48));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = ResourceVec::new(5, 5, 5, 5);
        let b = ResourceVec::new(3, 9, 5, 0);
        assert_eq!(a.saturating_sub(&b), ResourceVec::new(2, 0, 0, 5));
    }

    #[test]
    fn utilization() {
        let cap = ResourceVec::new(100, 200, 1000, 1000);
        let used = ResourceVec::new(50, 180, 100, 100);
        assert!((used.max_utilization(&cap) - 0.9).abs() < 1e-9);
        let (b, d, f, l) = used.utilization_percent(&cap);
        assert_eq!((b, d, f, l), (50.0, 90.0, 10.0, 10.0));
    }

    #[test]
    fn zero_capacity_dimension() {
        let cap = ResourceVec::new(0, 10, 10, 10);
        assert_eq!(ResourceVec::ZERO.max_utilization(&cap), 0.0);
        assert!(ResourceVec::new(1, 0, 0, 0)
            .max_utilization(&cap)
            .is_infinite());
    }

    #[test]
    fn scale() {
        assert_eq!(
            ResourceVec::new(1, 2, 3, 4).scale(3),
            ResourceVec::new(3, 6, 9, 12)
        );
    }
}
