use std::error::Error;
use std::fmt;

/// Errors produced by the FPGA platform models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FpgaError {
    /// An engine configuration cannot implement the requested layer (e.g.
    /// Winograd on a strided convolution).
    UnsupportedConfig(String),
    /// A required parameter is zero or otherwise degenerate.
    InvalidParameter(String),
    /// The configuration exceeds the device's resources (reported by
    /// feasibility checks that promise to validate, not by estimators).
    ResourceExceeded {
        /// Which dimension overflowed.
        dimension: &'static str,
        /// Requested amount.
        requested: u64,
        /// Available amount.
        available: u64,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::UnsupportedConfig(msg) => write!(f, "unsupported engine config: {msg}"),
            FpgaError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            FpgaError::ResourceExceeded {
                dimension,
                requested,
                available,
            } => write!(
                f,
                "resource exceeded: {dimension} needs {requested}, device has {available}"
            ),
        }
    }
}

impl Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_dimension() {
        let e = FpgaError::ResourceExceeded {
            dimension: "DSP48E",
            requested: 1000,
            available: 900,
        };
        let s = e.to_string();
        assert!(s.contains("DSP48E") && s.contains("1000") && s.contains("900"));
    }
}
