//! Resource and throughput cost models for layer compute engines.
//!
//! This module is the `implement()` estimator of Algorithm 2: given a
//! layer, an algorithm choice and a hardware parallelism, it returns the
//! resource vector and compute throughput of the engine that would be
//! instantiated. "Different algorithms and parallelisms lead to different
//! resource usage" (§5).
//!
//! ## Model calibration
//!
//! * **Data type**: 16-bit fixed; one conventional MAC occupies one DSP48E
//!   slice (a 16×16 multiply-accumulate fits a single slice).
//! * **Winograd `F(m×m, r×r)` unit**: `α²` DSP element-wise multipliers
//!   that retire one transformed tile × channel per cycle — `m²·r²`
//!   MAC-equivalents, i.e. `m²r²/α²`× the DSP efficiency of the
//!   conventional engine (exactly 4 for the paper's `F(4×4, 3×3)`).
//!   Input/output transforms are shift/add networks costed in LUT/FF.
//! * **Line buffer**: circular buffer of `K + S` rows (conventional,
//!   §4.2) or `α + m` rows (Winograd consumes `α` rows per tile step and
//!   advances by `m`), each row independently partitioned into BRAM18Ks
//!   for parallel window access.
//! * **Weight buffer**: double-buffered storage for the output-channel
//!   group currently in flight; remaining weights stream from DRAM.
//! * LUT/FF constants are calibrated against the per-layer utilization the
//!   paper publishes in Table 2 (AlexNet on the XC7Z045).

use winofuse_conv::cook_toom::WinogradTransform;
use winofuse_model::layer::{Layer, LayerKind};
use winofuse_model::shape::{DataType, FmShape};

use crate::device::{FpgaDevice, BRAM18K_BYTES};
use crate::resource::ResourceVec;
use crate::FpgaError;

/// Convolution algorithm choice for one layer — the `algo` of the paper's
/// strategy triple `⟨group, algo, parallelism⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The conventional sliding-window algorithm.
    Conventional,
    /// Winograd minimal filtering with output tile `m×m` (the filter size
    /// `r` comes from the layer's kernel).
    Winograd {
        /// Output tile side.
        m: usize,
    },
    /// Winograd minimal filtering over *pruned* transformed-domain weights
    /// (sparse Winograd, 1810.01973): only the top-magnitude fraction of
    /// the α² coefficient planes is kept, streamed as CSR panels, and the
    /// element-wise multiply stage skips the zeros.
    SparseWinograd {
        /// Output tile side.
        m: usize,
        /// Retained coefficient density in per-mille (1..=1000); 1000 is
        /// the dense Winograd bank, 250 keeps the top quarter.
        density_pm: u16,
    },
}

impl Algorithm {
    /// The paper's uniform Winograd choice, `F(4×4, r×r)`.
    pub fn winograd_f43() -> Self {
        Algorithm::Winograd { m: 4 }
    }

    /// Sparse Winograd at `F(4×4, r×r)` with the given retained density
    /// (per-mille).
    pub fn sparse_f43(density_pm: u16) -> Self {
        Algorithm::SparseWinograd { m: 4, density_pm }
    }

    /// Multiplications per 2-D tile for kernel size `r` (`α²`, scaled by
    /// the retained density for sparse Winograd), or `None` for the
    /// conventional algorithm.
    pub fn tile_multiplies(&self, r: usize) -> Option<u64> {
        match self {
            Algorithm::Conventional => None,
            Algorithm::Winograd { m } => {
                let alpha = (m + r - 1) as u64;
                Some(alpha * alpha)
            }
            Algorithm::SparseWinograd { m, density_pm } => {
                let alpha = (m + r - 1) as u64;
                Some(sparse_nnz(alpha * alpha, *density_pm))
            }
        }
    }

    /// Short lowercase tag for reports ("conventional" / "winograd" /
    /// "sparse").
    pub fn tag(&self) -> &'static str {
        match self {
            Algorithm::Conventional => "conventional",
            Algorithm::Winograd { .. } => "winograd",
            Algorithm::SparseWinograd { .. } => "sparse",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Conventional => write!(f, "conventional"),
            Algorithm::Winograd { m } => write!(f, "winograd(m={m})"),
            Algorithm::SparseWinograd { m, density_pm } => {
                write!(
                    f,
                    "sparse-winograd(m={m}, density={:.3})",
                    *density_pm as f64 / 1000.0
                )
            }
        }
    }
}

// --- sparse coefficient-stream accounting ----------------------------------
//
// The DP's analytic DRAM budget and the fused runner's wire meter must agree
// *exactly* (strict-mode reconciliation), so the CSR byte accounting lives
// here as the single shared formula. Layout per transform point `uv` of one
// filter group: a `ng × cg` coefficient plane stored CSR — one u32 row
// pointer per output channel plus a terminator, and per retained nonzero a
// fix16 value (2 bytes) with its u16 input-channel column (2 bytes).

/// Bytes on the wire per retained nonzero: fix16 value + u16 column index.
pub const SPARSE_NNZ_BYTES: u64 = 4;
/// Bytes per CSR row-pointer entry (u32).
pub const SPARSE_ROWPTR_BYTES: u64 = 4;

/// Number of coefficients retained when pruning `coeffs` values at
/// `density_pm` per-mille density (rounds up, so density 1 on a tiny plane
/// still keeps one coefficient).
pub fn sparse_nnz(coeffs: u64, density_pm: u16) -> u64 {
    (coeffs * density_pm as u64).div_ceil(1000)
}

/// DRAM bytes of the sparse-Winograd coefficient stream for one filter
/// group: `α²` CSR planes of `ng × cg` coefficients each, pruned plane-wise
/// to `density_pm`.
pub fn sparse_stream_bytes(ng: u64, cg: u64, alpha: u64, density_pm: u16) -> u64 {
    let nnz = sparse_nnz(ng * cg, density_pm);
    alpha * alpha * (nnz * SPARSE_NNZ_BYTES + (ng + 1) * SPARSE_ROWPTR_BYTES)
}

/// An engine configuration: algorithm and hardware parallelism (the number
/// of computing units in Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Algorithm implementing the layer.
    pub algorithm: Algorithm,
    /// Number of parallel compute units (MAC lanes for conventional,
    /// tile-channel units for Winograd).
    pub parallelism: usize,
}

/// The estimator's verdict for one layer/engine pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerEstimate {
    /// Total resource requirement (compute + line buffer + weight buffer).
    pub resources: ResourceVec,
    /// Total compute cycles for one frame through this layer.
    pub compute_cycles: u64,
    /// Equivalent MACs retired per cycle at full utilization.
    pub macs_per_cycle: u64,
    /// Rows of the *input* feature map consumed per iteration.
    pub input_rows_per_iter: usize,
    /// Rows of the *output* feature map produced per iteration.
    pub output_rows_per_iter: usize,
    /// Depth of the circular line buffer in input rows.
    pub line_buffer_rows: usize,
}

// --- calibrated cost constants (see module docs) ---------------------------

const CONV_BASE_FF: u64 = 1_800;
const CONV_BASE_LUT: u64 = 2_600;
const CONV_FF_PER_LANE: u64 = 320;
const CONV_LUT_PER_LANE: u64 = 210;

const WINO_BASE_FF: u64 = 2_200;
const WINO_BASE_LUT: u64 = 2_800;

// Sparse Winograd engines carry the dense transform networks *plus* a CSR
// decode stage per unit (row-pointer walk, column fetch, operand select).
const SPARSE_BASE_FF: u64 = 2_600;
const SPARSE_BASE_LUT: u64 = 3_400;
const SPARSE_DECODE_FF_PER_UNIT: u64 = 320;
const SPARSE_DECODE_LUT_PER_UNIT: u64 = 410;
/// LUT cost of one 16-bit adder in a transform network.
const LUT_PER_ADD: u64 = 18;
/// FF cost of one pipeline register stage in a transform network.
const FF_PER_ADD: u64 = 21;

const POOL_BASE_FF: u64 = 500;
const POOL_BASE_LUT: u64 = 400;
const POOL_FF_PER_LANE: u64 = 50;
const POOL_LUT_PER_LANE: u64 = 45;

const LRN_BASE_FF: u64 = 700;
const LRN_BASE_LUT: u64 = 800;
const LRN_FF_PER_LANE: u64 = 180;
const LRN_LUT_PER_LANE: u64 = 150;
const LRN_DSP_PER_LANE: u64 = 3;

fn brams_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(BRAM18K_BYTES).max(1)
}

fn line_buffer_brams(rows: usize, input: FmShape, dtype: DataType) -> u64 {
    // Each row is a separate partition so the sliding window reads all
    // rows in parallel (§6: "templates carefully partition line buffers").
    rows as u64 * brams_for_bytes(input.row_bytes(dtype) as u64)
}

/// Estimates the engine for a layer at the given configuration.
///
/// # Errors
///
/// * [`FpgaError::InvalidParameter`] — zero parallelism.
/// * [`FpgaError::UnsupportedConfig`] — Winograd requested for a
///   non-convolution layer, a strided convolution, an unsupported tile
///   size, or parallelism above [`max_parallelism`].
pub fn estimate_layer(
    layer: &Layer,
    input: FmShape,
    cfg: &EngineConfig,
) -> Result<LayerEstimate, FpgaError> {
    if cfg.parallelism == 0 {
        return Err(FpgaError::InvalidParameter(
            "parallelism must be nonzero".into(),
        ));
    }
    let dtype = DataType::Fixed16;
    match &layer.kind {
        LayerKind::Conv(c) => {
            let output = layer
                .output_shape(input)
                .map_err(|e| FpgaError::InvalidParameter(e.to_string()))?;
            let max_p = max_parallelism(layer, cfg.algorithm);
            if cfg.parallelism > max_p {
                return Err(FpgaError::UnsupportedConfig(format!(
                    "parallelism {} exceeds maximum {max_p} for {} on `{}`",
                    cfg.parallelism,
                    cfg.algorithm.tag(),
                    layer.name
                )));
            }
            let p = cfg.parallelism as u64;
            let total_macs = layer.macs(input);
            match cfg.algorithm {
                Algorithm::Conventional => {
                    // One output row sweep: outW · N · (M/groups) · K² MACs
                    // (derived from the layer's group-aware MAC count).
                    let row_macs = total_macs.div_ceil(output.height as u64);
                    let cycles_per_row = row_macs.div_ceil(p);
                    let compute_cycles = cycles_per_row * output.height as u64;

                    let lb_rows = c.kernel + c.stride;
                    let bram_lb = line_buffer_brams(lb_rows, input, dtype);
                    // Output-channel group in flight: p lanes unrolled over
                    // the K² window first, then output channels.
                    let tn = (cfg.parallelism / (c.kernel * c.kernel)).max(1) as u64;
                    let weight_bytes = 2
                        * tn
                        * c.channels_per_group(input.channels) as u64
                        * (c.kernel as u64).pow(2)
                        * dtype.bytes() as u64;
                    let bram_w = brams_for_bytes(weight_bytes);

                    let resources = ResourceVec::new(
                        bram_lb + bram_w,
                        p,
                        CONV_BASE_FF + CONV_FF_PER_LANE * p,
                        CONV_BASE_LUT + CONV_LUT_PER_LANE * p,
                    );
                    Ok(LayerEstimate {
                        resources,
                        compute_cycles,
                        macs_per_cycle: p,
                        input_rows_per_iter: c.stride,
                        output_rows_per_iter: 1,
                        line_buffer_rows: lb_rows,
                    })
                }
                Algorithm::Winograd { m } => {
                    if c.stride != 1 {
                        return Err(FpgaError::UnsupportedConfig(format!(
                            "winograd requires stride 1, layer `{}` has stride {}",
                            layer.name, c.stride
                        )));
                    }
                    let transform = WinogradTransform::generate(m, c.kernel).map_err(|e| {
                        FpgaError::UnsupportedConfig(format!(
                            "cannot generate F({m},{}): {e}",
                            c.kernel
                        ))
                    })?;
                    let alpha = transform.alpha() as u64;
                    let unit_macs = (m as u64 * c.kernel as u64).pow(2);
                    let tiles_h = output.height.div_ceil(m) as u64;
                    let tiles_w = output.width.div_ceil(m) as u64;
                    // One unit retires one tile × (input channel, output
                    // channel) pair per cycle; grouped layers only pair
                    // channels within a group.
                    let tile_channel_pairs = tiles_h
                        * tiles_w
                        * c.channels_per_group(input.channels) as u64
                        * output.channels as u64;
                    let compute_cycles = tile_channel_pairs.div_ceil(p);

                    let lb_rows = transform.alpha() + m;
                    let bram_lb = line_buffer_brams(lb_rows, input, dtype);
                    // Transformed weights: α² coefficients per channel pair;
                    // double-buffer the p output channels in flight.
                    let weight_bytes = 2
                        * p
                        * c.channels_per_group(input.channels) as u64
                        * alpha
                        * alpha
                        * dtype.bytes() as u64;
                    let bram_w = brams_for_bytes(weight_bytes);

                    // Transform adder networks: α row-wise 1-D transforms
                    // plus α column-wise per tile, for input and output.
                    let input_adds =
                        2 * alpha * transform.input_transform_adds() as u64;
                    let output_adds =
                        (m as u64 + alpha) * transform.output_transform_adds() as u64;
                    let adds_per_unit = input_adds + output_adds;
                    let resources = ResourceVec::new(
                        bram_lb + bram_w,
                        alpha * alpha * p,
                        WINO_BASE_FF + (FF_PER_ADD * adds_per_unit + 24 * alpha * alpha) * p,
                        WINO_BASE_LUT + (LUT_PER_ADD * adds_per_unit + 10 * alpha * alpha) * p,
                    );
                    // Equivalent MAC throughput (used for GOPS reporting).
                    let macs_per_cycle =
                        (unit_macs * p).min(total_macs.max(1)); // cap for degenerate layers
                    Ok(LayerEstimate {
                        resources,
                        compute_cycles,
                        macs_per_cycle,
                        input_rows_per_iter: m,
                        output_rows_per_iter: m,
                        line_buffer_rows: lb_rows,
                    })
                }
                Algorithm::SparseWinograd { m, density_pm } => {
                    if c.stride != 1 {
                        return Err(FpgaError::UnsupportedConfig(format!(
                            "sparse winograd requires stride 1, layer `{}` has stride {}",
                            layer.name, c.stride
                        )));
                    }
                    if density_pm == 0 || density_pm > 1000 {
                        return Err(FpgaError::InvalidParameter(format!(
                            "sparse winograd density must be in 1..=1000 per-mille, got {density_pm}"
                        )));
                    }
                    let transform = WinogradTransform::generate(m, c.kernel).map_err(|e| {
                        FpgaError::UnsupportedConfig(format!(
                            "cannot generate F({m},{}): {e}",
                            c.kernel
                        ))
                    })?;
                    let alpha = transform.alpha() as u64;
                    let unit_macs = (m as u64 * c.kernel as u64).pow(2);
                    let tiles_h = output.height.div_ceil(m) as u64;
                    let tiles_w = output.width.div_ceil(m) as u64;
                    let cg = c.channels_per_group(input.channels) as u64;
                    let tile_channel_pairs =
                        tiles_h * tiles_w * cg * output.channels as u64;
                    // A sparse unit skips pruned coefficients, so only the
                    // retained fraction of the dense pair stream costs a
                    // cycle.
                    let sparse_pairs = sparse_nnz(tile_channel_pairs, density_pm);
                    let compute_cycles = sparse_pairs.div_ceil(p);

                    let lb_rows = transform.alpha() + m;
                    let bram_lb = line_buffer_brams(lb_rows, input, dtype);
                    // Double-buffered CSR bank for the p output channels in
                    // flight: per channel, α² rows of `density · cg`
                    // (value, column) entries plus one row pointer each.
                    let nnz_row = sparse_nnz(cg, density_pm);
                    let weight_bytes = 2
                        * p
                        * alpha
                        * alpha
                        * (nnz_row * SPARSE_NNZ_BYTES + SPARSE_ROWPTR_BYTES);
                    let bram_w = brams_for_bytes(weight_bytes);

                    let input_adds = 2 * alpha * transform.input_transform_adds() as u64;
                    let output_adds =
                        (m as u64 + alpha) * transform.output_transform_adds() as u64;
                    let adds_per_unit = input_adds + output_adds;
                    let resources = ResourceVec::new(
                        bram_lb + bram_w,
                        alpha * alpha * p,
                        SPARSE_BASE_FF
                            + (FF_PER_ADD * adds_per_unit
                                + 24 * alpha * alpha
                                + SPARSE_DECODE_FF_PER_UNIT)
                                * p,
                        SPARSE_BASE_LUT
                            + (LUT_PER_ADD * adds_per_unit
                                + 10 * alpha * alpha
                                + SPARSE_DECODE_LUT_PER_UNIT)
                                * p,
                    );
                    // Effective MAC throughput: the same useful work retires
                    // in a `density` fraction of the dense cycles.
                    let macs_per_cycle = (unit_macs * p * 1000 / density_pm as u64)
                        .min(total_macs.max(1));
                    Ok(LayerEstimate {
                        resources,
                        compute_cycles,
                        macs_per_cycle,
                        input_rows_per_iter: m,
                        output_rows_per_iter: m,
                        line_buffer_rows: lb_rows,
                    })
                }
            }
        }
        LayerKind::Pool(pp) => {
            if !matches!(cfg.algorithm, Algorithm::Conventional) {
                return Err(FpgaError::UnsupportedConfig(
                    "pooling layers only support the conventional engine".into(),
                ));
            }
            let output = layer
                .output_shape(input)
                .map_err(|e| FpgaError::InvalidParameter(e.to_string()))?;
            let p = cfg.parallelism as u64;
            let comparisons = output.elements() as u64 * (pp.kernel as u64).pow(2);
            let lb_rows = pp.kernel + pp.stride;
            let resources = ResourceVec::new(
                line_buffer_brams(lb_rows, input, dtype),
                0,
                POOL_BASE_FF + POOL_FF_PER_LANE * p,
                POOL_BASE_LUT + POOL_LUT_PER_LANE * p,
            );
            Ok(LayerEstimate {
                resources,
                compute_cycles: comparisons.div_ceil(p),
                macs_per_cycle: 0,
                input_rows_per_iter: pp.stride,
                output_rows_per_iter: 1,
                line_buffer_rows: lb_rows,
            })
        }
        LayerKind::Lrn(spec) => {
            if !matches!(cfg.algorithm, Algorithm::Conventional) {
                return Err(FpgaError::UnsupportedConfig(
                    "lrn layers only support the conventional engine".into(),
                ));
            }
            let p = cfg.parallelism as u64;
            let ops = input.elements() as u64 * (spec.local_size as u64 + 2);
            let resources = ResourceVec::new(
                line_buffer_brams(2, input, dtype),
                LRN_DSP_PER_LANE * p,
                LRN_BASE_FF + LRN_FF_PER_LANE * p,
                LRN_BASE_LUT + LRN_LUT_PER_LANE * p,
            );
            Ok(LayerEstimate {
                resources,
                compute_cycles: ops.div_ceil(p),
                macs_per_cycle: 0,
                input_rows_per_iter: 1,
                output_rows_per_iter: 1,
                line_buffer_rows: 2,
            })
        }
        LayerKind::Relu => {
            // Folded into the producing layer; a standalone ReLU engine is
            // a free pass-through comparator.
            Ok(LayerEstimate {
                resources: ResourceVec::new(0, 0, 200, 150),
                compute_cycles: input.elements() as u64 / cfg.parallelism.max(1) as u64,
                macs_per_cycle: 0,
                input_rows_per_iter: 1,
                output_rows_per_iter: 1,
                line_buffer_rows: 1,
            })
        }
        _ => Err(FpgaError::UnsupportedConfig(format!(
            "layer `{}` ({}) is not mapped to the fusion accelerator (the paper omits FC layers, §7.3)",
            layer.name,
            layer.kind.tag()
        ))),
    }
}

/// Maximum meaningful hardware parallelism of an algorithm for a layer
/// (Algorithm 2 iterates "from max to min parallelism").
///
/// Conventional engines unroll at most the kernel window times all output
/// channels; Winograd engines instantiate at most one unit per output
/// channel. Non-conv layers get a modest cap.
pub fn max_parallelism(layer: &Layer, algorithm: Algorithm) -> usize {
    match (&layer.kind, algorithm) {
        (LayerKind::Conv(c), Algorithm::Conventional) => c.num_output * c.kernel * c.kernel,
        (LayerKind::Conv(c), Algorithm::Winograd { .. })
        | (LayerKind::Conv(c), Algorithm::SparseWinograd { .. }) => c.num_output,
        (LayerKind::Pool(_), _) | (LayerKind::Lrn(_), _) => 64,
        _ => 16,
    }
}

/// Parallelism candidates for a layer/algorithm, largest first, thinned to
/// keep the branch-and-bound tractable (powers of two and the exact max).
pub fn parallelism_candidates(layer: &Layer, algorithm: Algorithm, device_dsp: u64) -> Vec<usize> {
    let hard_max = max_parallelism(layer, algorithm);
    let dsp_per_unit = match (&layer.kind, algorithm) {
        (LayerKind::Conv(_), Algorithm::Conventional) => 1u64,
        (LayerKind::Conv(c), Algorithm::Winograd { m })
        | (LayerKind::Conv(c), Algorithm::SparseWinograd { m, .. }) => {
            let alpha = (m + c.kernel - 1) as u64;
            alpha * alpha
        }
        (LayerKind::Lrn(_), _) => LRN_DSP_PER_LANE,
        _ => 0,
    };
    let dsp_max = device_dsp
        .checked_div(dsp_per_unit)
        .map_or(hard_max, |d| d as usize);
    let max_p = hard_max.min(dsp_max.max(1)).max(1);
    let mut out = vec![max_p];
    let mut p = 1usize;
    let mut pow2 = Vec::new();
    while p < max_p {
        pow2.push(p);
        p *= 2;
    }
    out.extend(pow2.into_iter().rev());
    out.dedup();
    out
}

/// Computational roof in GOPS when the whole device's DSP budget runs one
/// algorithm (the roofs of Fig. 1).
pub fn computational_roof_gops(device: &FpgaDevice, algorithm: Algorithm, kernel: usize) -> f64 {
    let dsp = device.resources().dsp;
    let clk = device.clock_hz() as f64;
    match algorithm {
        Algorithm::Conventional => dsp as f64 * 2.0 * clk / 1e9,
        Algorithm::Winograd { m } => {
            let alpha = (m + kernel - 1) as u64;
            let units = dsp / (alpha * alpha);
            (units * (m as u64 * kernel as u64).pow(2)) as f64 * 2.0 * clk / 1e9
        }
        Algorithm::SparseWinograd { m, density_pm } => {
            // The dense roof scaled by the kept-coefficient fraction: the
            // same multiplier array retires the work in `density` of the
            // cycles.
            let alpha = (m + kernel - 1) as u64;
            let units = dsp / (alpha * alpha);
            (units * (m as u64 * kernel as u64).pow(2)) as f64 * 2.0 * clk / 1e9 * 1000.0
                / density_pm.max(1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winofuse_model::layer::{ConvParams, PoolParams};
    use winofuse_model::zoo;

    fn conv_layer(n: usize, k: usize, s: usize, p: usize) -> Layer {
        Layer::new("c", LayerKind::Conv(ConvParams::new(n, k, s, p, true)))
    }

    #[test]
    fn conventional_dsp_equals_parallelism() {
        let l = conv_layer(64, 3, 1, 1);
        let input = FmShape::new(64, 56, 56);
        for p in [1, 16, 128] {
            let e = estimate_layer(
                &l,
                input,
                &EngineConfig {
                    algorithm: Algorithm::Conventional,
                    parallelism: p,
                },
            )
            .unwrap();
            assert_eq!(e.resources.dsp, p as u64);
            assert_eq!(e.macs_per_cycle, p as u64);
        }
    }

    #[test]
    fn winograd_uses_quarter_dsp_for_same_throughput() {
        // The paper's claim (§7.1): F(4×4,3×3) completes the same work
        // with 1/4 of the DSPs.
        let l = conv_layer(64, 3, 1, 1);
        let input = FmShape::new(64, 56, 56);
        let wino = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::winograd_f43(),
                parallelism: 1,
            },
        )
        .unwrap();
        // One unit: 36 DSPs, 144 equivalent MACs/cycle.
        assert_eq!(wino.resources.dsp, 36);
        assert_eq!(wino.macs_per_cycle, 144);
        let conv = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 144,
            },
        )
        .unwrap();
        assert_eq!(conv.macs_per_cycle, 144);
        assert_eq!(conv.resources.dsp, 4 * wino.resources.dsp);
    }

    #[test]
    fn winograd_compute_cycles_count_ragged_tiles() {
        let l = conv_layer(4, 3, 1, 1);
        // 13x13 output: 4x4 tile grid (with waste) instead of 3.25².
        let input = FmShape::new(2, 13, 13);
        let e = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::winograd_f43(),
                parallelism: 1,
            },
        )
        .unwrap();
        assert_eq!(e.compute_cycles, 4 * 4 * 2 * 4);
    }

    #[test]
    fn conventional_cycles_match_mac_count() {
        let l = conv_layer(8, 3, 1, 1);
        let input = FmShape::new(4, 16, 16);
        let e = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 9,
            },
        )
        .unwrap();
        // Row MACs = 16·8·4·9 = 4608, /9 = 512 cycles per row, ×16 rows.
        assert_eq!(e.compute_cycles, 512 * 16);
    }

    #[test]
    fn winograd_rejected_for_strided_layer() {
        let l = conv_layer(96, 11, 4, 0);
        let input = FmShape::new(3, 227, 227);
        let r = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::winograd_f43(),
                parallelism: 1,
            },
        );
        assert!(matches!(r, Err(FpgaError::UnsupportedConfig(_))));
    }

    #[test]
    fn winograd_line_buffer_is_deeper() {
        let l = conv_layer(64, 3, 1, 1);
        let input = FmShape::new(64, 224, 224);
        let conv = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 9,
            },
        )
        .unwrap();
        let wino = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::winograd_f43(),
                parallelism: 1,
            },
        )
        .unwrap();
        assert_eq!(conv.line_buffer_rows, 4); // K + S
        assert_eq!(wino.line_buffer_rows, 10); // α + m
        assert!(wino.resources.bram_18k > conv.resources.bram_18k);
    }

    #[test]
    fn parallelism_cap_enforced() {
        let l = conv_layer(4, 3, 1, 1);
        let input = FmShape::new(2, 8, 8);
        assert_eq!(max_parallelism(&l, Algorithm::Conventional), 36);
        assert_eq!(max_parallelism(&l, Algorithm::winograd_f43()), 4);
        assert!(estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 37
            }
        )
        .is_err());
        assert!(estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 0
            }
        )
        .is_err());
    }

    #[test]
    fn candidates_are_descending_and_bounded() {
        let l = conv_layer(64, 3, 1, 1);
        let c = parallelism_candidates(&l, Algorithm::Conventional, 900);
        assert_eq!(c[0], 576); // 64·9
        assert!(c.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(*c.last().unwrap(), 1);
        // Winograd units are DSP-bounded: 900/36 = 25 units max.
        let w = parallelism_candidates(&l, Algorithm::winograd_f43(), 900);
        assert_eq!(w[0], 25);
    }

    #[test]
    fn pool_and_lrn_engines_estimate() {
        let pool = Layer::new("p", LayerKind::Pool(PoolParams::max2x2()));
        let input = FmShape::new(64, 112, 112);
        let e = estimate_layer(
            &pool,
            input,
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 16,
            },
        )
        .unwrap();
        assert_eq!(e.resources.dsp, 0);
        assert_eq!(e.compute_cycles, (56 * 56 * 64 * 4u64).div_ceil(16));

        let lrn = Layer::new("n", LayerKind::Lrn(Default::default()));
        let e = estimate_layer(
            &lrn,
            FmShape::new(96, 55, 55),
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 4,
            },
        )
        .unwrap();
        assert_eq!(e.resources.dsp, 12);
        assert!(e.compute_cycles > 0);

        // Winograd makes no sense for either.
        assert!(estimate_layer(
            &pool,
            input,
            &EngineConfig {
                algorithm: Algorithm::winograd_f43(),
                parallelism: 1
            }
        )
        .is_err());
    }

    #[test]
    fn fc_layers_are_rejected() {
        let net = zoo::alexnet();
        let fc = &net.layers()[10];
        let input = net.input_shape_of(10).unwrap();
        assert!(matches!(
            estimate_layer(
                fc,
                input,
                &EngineConfig {
                    algorithm: Algorithm::Conventional,
                    parallelism: 1
                }
            ),
            Err(FpgaError::UnsupportedConfig(_))
        ));
    }

    #[test]
    fn roofs_have_the_paper_ratio() {
        let dev = FpgaDevice::virtex7_485t();
        let conv = computational_roof_gops(&dev, Algorithm::Conventional, 3);
        let wino = computational_roof_gops(&dev, Algorithm::winograd_f43(), 3);
        // 2800 DSPs → 560 GOPS conventional; 77 winograd units → 2217.6.
        assert!((conv - 560.0).abs() < 1e-9);
        assert!((wino - 2217.6).abs() < 1e-6);
        // Close to the paper's exact 4× (floor() loses a little).
        let ratio = wino / conv;
        assert!((3.8..=4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sparse_winograd_scales_cycles_by_density() {
        let l = conv_layer(64, 3, 1, 1);
        let input = FmShape::new(64, 56, 56);
        let dense = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::winograd_f43(),
                parallelism: 4,
            },
        )
        .unwrap();
        let sparse = estimate_layer(
            &l,
            input,
            &EngineConfig {
                algorithm: Algorithm::sparse_f43(250),
                parallelism: 4,
            },
        )
        .unwrap();
        // Quarter density → quarter of the dense pair stream (rounding
        // up), still spread over the same p=4 units.
        assert_eq!(
            sparse.compute_cycles,
            sparse_nnz(dense.compute_cycles * 4, 250).div_ceil(4)
        );
        assert!(sparse.compute_cycles * 4 <= dense.compute_cycles + 4);
        // Same multiplier array, so the DSP bill does not shrink...
        assert_eq!(sparse.resources.dsp, dense.resources.dsp);
        // ...but the CSR decode stage costs extra fabric.
        assert!(sparse.resources.ff > dense.resources.ff);
        assert!(sparse.resources.lut > dense.resources.lut);
        // The sparse weight bank (values + indices at quarter density) is
        // no larger than the dense one.
        assert!(sparse.resources.bram_18k <= dense.resources.bram_18k);
    }

    #[test]
    fn sparse_density_1000_matches_dense_cycles() {
        let l = conv_layer(32, 3, 1, 1);
        let input = FmShape::new(16, 28, 28);
        for p in [1, 4, 32] {
            let dense = estimate_layer(
                &l,
                input,
                &EngineConfig {
                    algorithm: Algorithm::winograd_f43(),
                    parallelism: p,
                },
            )
            .unwrap();
            let sparse = estimate_layer(
                &l,
                input,
                &EngineConfig {
                    algorithm: Algorithm::sparse_f43(1000),
                    parallelism: p,
                },
            )
            .unwrap();
            assert_eq!(sparse.compute_cycles, dense.compute_cycles);
            assert_eq!(sparse.resources.dsp, dense.resources.dsp);
        }
    }

    #[test]
    fn sparse_rejects_bad_density_and_stride() {
        let l = conv_layer(16, 3, 1, 1);
        let input = FmShape::new(8, 16, 16);
        for bad in [0u16, 1001] {
            assert!(estimate_layer(
                &l,
                input,
                &EngineConfig {
                    algorithm: Algorithm::sparse_f43(bad),
                    parallelism: 1
                }
            )
            .is_err());
        }
        let strided = conv_layer(96, 11, 4, 0);
        assert!(estimate_layer(
            &strided,
            FmShape::new(3, 227, 227),
            &EngineConfig {
                algorithm: Algorithm::sparse_f43(250),
                parallelism: 1
            }
        )
        .is_err());
    }

    #[test]
    fn sparse_stream_bytes_formula() {
        // 4 output channels × 8 input channels at density 250‰ keeps
        // ceil(32·0.25) = 8 nonzeros per 6×6-transform plane: 36 planes ×
        // (8·4 + 5·4) bytes.
        assert_eq!(sparse_nnz(32, 250), 8);
        assert_eq!(sparse_stream_bytes(4, 8, 6, 250), 36 * (8 * 4 + 5 * 4));
        // Density 1000 degenerates to all coefficients plus CSR overhead.
        assert_eq!(sparse_nnz(32, 1000), 32);
        assert_eq!(
            sparse_stream_bytes(4, 8, 6, 1000),
            36 * (32 * 4 + 5 * 4)
        );
    }

    #[test]
    fn table2_magnitudes_conv1() {
        // AlexNet conv1, conventional, parallelism 122 (Table 2 reports
        // DSP 122, FF 42 578, LUT 31 512, BRAM 48): our calibrated model
        // must land in the same ballpark (±40%).
        let net = zoo::alexnet();
        let e = estimate_layer(
            &net.layers()[0],
            net.input_shape(),
            &EngineConfig {
                algorithm: Algorithm::Conventional,
                parallelism: 122,
            },
        )
        .unwrap();
        assert_eq!(e.resources.dsp, 122);
        assert!(
            (25_000..60_000).contains(&e.resources.ff),
            "FF {}",
            e.resources.ff
        );
        assert!(
            (18_000..45_000).contains(&e.resources.lut),
            "LUT {}",
            e.resources.lut
        );
        assert!(
            (10..80).contains(&e.resources.bram_18k),
            "BRAM {}",
            e.resources.bram_18k
        );
    }
}
