//! The roofline performance model of §2.2 / Fig. 1.
//!
//! "In Roofline model, the X-axis is the computation to communication
//! (CTC) ratio while the Y-axis represents the attainable performance.
//! \[...\] Bandwidth roof (e.g. slope) is the product of CTC ratio and
//! off-chip memory bandwidth. Computational roof describes the peak
//! performance provided by the available hardware resources."

use std::fmt;

use crate::device::FpgaDevice;

/// A design point on the roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label for reports (the paper uses A, B, B′, C).
    pub label: String,
    /// Computation-to-communication ratio in ops per byte.
    pub ctc_ops_per_byte: f64,
    /// Computational roof of the design in GOPS.
    pub computational_roof_gops: f64,
    /// Attainable performance in GOPS (min of the two roofs).
    pub attainable_gops: f64,
    /// Whether the bandwidth roof is the binding constraint.
    pub bandwidth_bound: bool,
}

/// Roofline evaluator for a device.
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    bandwidth_gbytes_per_sec: f64,
}

impl Roofline {
    /// Builds the model from a device's off-chip bandwidth.
    pub fn for_device(device: &FpgaDevice) -> Self {
        Roofline {
            bandwidth_gbytes_per_sec: device.bandwidth_bytes_per_sec() as f64 / 1e9,
        }
    }

    /// Builds the model from a raw bandwidth in GB/s.
    pub fn with_bandwidth_gbps(bandwidth_gbytes_per_sec: f64) -> Self {
        Roofline {
            bandwidth_gbytes_per_sec,
        }
    }

    /// The bandwidth roof at a given CTC ratio: `CTC × BW` (GOPS).
    pub fn bandwidth_roof_gops(&self, ctc_ops_per_byte: f64) -> f64 {
        ctc_ops_per_byte * self.bandwidth_gbytes_per_sec
    }

    /// Evaluates a design point: attainable = min(computational roof,
    /// bandwidth roof).
    pub fn evaluate(
        &self,
        label: impl Into<String>,
        ctc_ops_per_byte: f64,
        computational_roof_gops: f64,
    ) -> RooflinePoint {
        let bw_roof = self.bandwidth_roof_gops(ctc_ops_per_byte);
        let attainable = computational_roof_gops.min(bw_roof);
        RooflinePoint {
            label: label.into(),
            ctc_ops_per_byte,
            computational_roof_gops,
            attainable_gops: attainable,
            bandwidth_bound: bw_roof < computational_roof_gops,
        }
    }

    /// The CTC ratio where a computational roof meets the bandwidth roof —
    /// the minimum data reuse needed to escape bandwidth starvation.
    pub fn break_even_ctc(&self, computational_roof_gops: f64) -> f64 {
        computational_roof_gops / self.bandwidth_gbytes_per_sec
    }
}

impl fmt::Display for RooflinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: CTC {:.2} op/B, roof {:.1} GOPS, attainable {:.1} GOPS{}",
            self.label,
            self.ctc_ops_per_byte,
            self.computational_roof_gops,
            self.attainable_gops,
            if self.bandwidth_bound {
                " (bandwidth bound)"
            } else {
                " (compute bound)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_is_min_of_roofs() {
        let r = Roofline::with_bandwidth_gbps(4.5);
        // Low CTC: bandwidth bound.
        let p = r.evaluate("B", 10.0, 3000.0);
        assert_eq!(p.attainable_gops, 45.0);
        assert!(p.bandwidth_bound);
        // High CTC: compute bound.
        let p = r.evaluate("A", 1000.0, 300.0);
        assert_eq!(p.attainable_gops, 300.0);
        assert!(!p.bandwidth_bound);
    }

    #[test]
    fn winograd_needs_higher_ctc_than_conventional() {
        // Same data-reuse structure means the same CTC ratio (§2.2) — so
        // the algorithm with the higher computational roof saturates
        // bandwidth at a higher break-even CTC.
        let r = Roofline::with_bandwidth_gbps(4.5);
        let conventional_roof = 560.0;
        let winograd_roof = 4.0 * conventional_roof;
        assert!(r.break_even_ctc(winograd_roof) > r.break_even_ctc(conventional_roof));
        assert_eq!(
            r.break_even_ctc(winograd_roof),
            4.0 * r.break_even_ctc(conventional_roof)
        );
    }

    #[test]
    fn for_device_uses_device_bandwidth() {
        let r = Roofline::for_device(&crate::device::FpgaDevice::zc706());
        assert!((r.bandwidth_roof_gops(1.0) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_binding_constraint() {
        let r = Roofline::with_bandwidth_gbps(4.0);
        assert!(r
            .evaluate("B", 1.0, 100.0)
            .to_string()
            .contains("bandwidth bound"));
        assert!(r
            .evaluate("A", 100.0, 100.0)
            .to_string()
            .contains("compute bound"));
    }
}
