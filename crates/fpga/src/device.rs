//! FPGA device catalog.
//!
//! "The specification of the target FPGA includes Block RAMs (BRAMs),
//! DSPs, off-chip bandwidth and others" (§3). Capacities below are the
//! published numbers the paper reports (Table 2's "Available" row for the
//! XC7Z045).

use std::fmt;

use crate::resource::ResourceVec;

/// Bytes per 18-kilobit block RAM (18432 bits).
pub const BRAM18K_BYTES: u64 = 18_432 / 8;

/// A target FPGA platform: resource capacities, clock and off-chip
/// bandwidth.
///
/// # Examples
///
/// ```
/// use winofuse_fpga::device::FpgaDevice;
///
/// let dev = FpgaDevice::zc706();
/// // 4.2 GB/s at 100 MHz: 42 bytes transferred per cycle.
/// assert_eq!(dev.bytes_per_cycle(), 42.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    name: String,
    resources: ResourceVec,
    clock_hz: u64,
    bandwidth_bytes_per_sec: u64,
    reconfig_cycles: u64,
}

impl FpgaDevice {
    /// Creates a custom device description.
    pub fn new(
        name: impl Into<String>,
        resources: ResourceVec,
        clock_hz: u64,
        bandwidth_bytes_per_sec: u64,
    ) -> Self {
        FpgaDevice {
            name: name.into(),
            resources,
            clock_hz,
            bandwidth_bytes_per_sec,
            reconfig_cycles: 0,
        }
    }

    /// Looks a device up by name. Known names: `zc706` (the paper's
    /// platform), `vx485t` (Fig. 1), `zedboard` (XC7Z020), `vc709`
    /// (XC7VX690T), `ku060` (Kintex UltraScale).
    pub fn by_name(name: &str) -> Option<FpgaDevice> {
        match name {
            "zc706" | "xc7z045" => Some(Self::zc706()),
            "vx485t" | "virtex7" | "xc7vx485t" => Some(Self::virtex7_485t()),
            "zedboard" | "xc7z020" => Some(Self::zedboard()),
            "vc709" | "xc7vx690t" => Some(Self::vc709()),
            "ku060" | "xcku060" => Some(Self::ku060()),
            _ => None,
        }
    }

    /// ZedBoard (XC7Z020): the small embedded sibling of the ZC706.
    pub fn zedboard() -> Self {
        FpgaDevice::new(
            "zedboard-xc7z020",
            ResourceVec::new(280, 220, 106_400, 53_200),
            100_000_000,
            3_200_000_000,
        )
    }

    /// VC709 (Virtex-7 XC7VX690T): the large PCIe accelerator card many
    /// contemporary CNN accelerators targeted.
    pub fn vc709() -> Self {
        FpgaDevice::new(
            "vc709-xc7vx690t",
            ResourceVec::new(2_940, 3_600, 866_400, 433_200),
            100_000_000,
            12_800_000_000,
        )
    }

    /// Kintex UltraScale KU060 (the device of several 2016-17 CNN
    /// accelerator papers).
    pub fn ku060() -> Self {
        FpgaDevice::new(
            "xcku060",
            ResourceVec::new(2_160, 2_760, 663_360, 331_680),
            200_000_000,
            9_600_000_000,
        )
    }

    /// The paper's evaluation platform (§7.1): Xilinx ZC706 board with an
    /// XC7Z045 chip, 100 MHz designs, 4.2 GB/s peak DDR3 bandwidth.
    pub fn zc706() -> Self {
        FpgaDevice::new(
            "zc706-xc7z045",
            ResourceVec::new(1090, 900, 437_200, 218_600),
            100_000_000,
            4_200_000_000,
        )
    }

    /// The Virtex-7 485T used in the paper's Fig. 1 motivation (with the
    /// figure's 4.5 GB/s bandwidth roof).
    pub fn virtex7_485t() -> Self {
        FpgaDevice::new(
            "virtex7-xc7vx485t",
            ResourceVec::new(2060, 2800, 607_200, 303_600),
            100_000_000,
            4_500_000_000,
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resource capacities (the constraint `R` of Problem 1).
    pub fn resources(&self) -> &ResourceVec {
        &self.resources
    }

    /// Design clock in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Peak off-chip bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> u64 {
        self.bandwidth_bytes_per_sec
    }

    /// Peak off-chip bandwidth expressed per clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_bytes_per_sec as f64 / self.clock_hz as f64
    }

    /// Converts a cycle count to seconds at the design clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Effective performance in GOPS for `ops` completed in `cycles`.
    pub fn effective_gops(&self, ops: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        ops as f64 / self.cycles_to_seconds(cycles) / 1e9
    }

    /// Returns a copy with a different bandwidth (used by sensitivity
    /// sweeps).
    pub fn with_bandwidth(&self, bytes_per_sec: u64) -> FpgaDevice {
        FpgaDevice {
            bandwidth_bytes_per_sec: bytes_per_sec,
            ..self.clone()
        }
    }

    /// Returns a copy with scaled resource capacities (used by ablations).
    pub fn with_resources(&self, resources: ResourceVec) -> FpgaDevice {
        FpgaDevice {
            resources,
            ..self.clone()
        }
    }

    /// Cycles to reconfigure the fabric between fusion groups (0 by
    /// default — the paper's accounting; a full ZC706 bitstream load is
    /// on the order of 2.5 M cycles at 100 MHz).
    pub fn reconfig_cycles(&self) -> u64 {
        self.reconfig_cycles
    }

    /// Returns a copy with a reconfiguration cost (used by the batch
    /// pipelining extension).
    pub fn with_reconfig_cycles(&self, cycles: u64) -> FpgaDevice {
        FpgaDevice {
            reconfig_cycles: cycles,
            ..self.clone()
        }
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {:.0} MHz, {:.1} GB/s)",
            self.name,
            self.resources,
            self.clock_hz as f64 / 1e6,
            self.bandwidth_bytes_per_sec as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc706_matches_table2_available_row() {
        let d = FpgaDevice::zc706();
        assert_eq!(
            *d.resources(),
            ResourceVec::new(1090, 900, 437_200, 218_600)
        );
        assert_eq!(d.clock_hz(), 100_000_000);
        assert_eq!(d.bandwidth_bytes_per_sec(), 4_200_000_000);
    }

    #[test]
    fn bytes_per_cycle() {
        assert_eq!(FpgaDevice::zc706().bytes_per_cycle(), 42.0);
        assert_eq!(FpgaDevice::virtex7_485t().bytes_per_cycle(), 45.0);
    }

    #[test]
    fn effective_gops() {
        let d = FpgaDevice::zc706();
        // 1e9 ops in 1e8 cycles (1 second at 100 MHz... no: 1e8 cycles = 1s)
        assert!((d.effective_gops(1_000_000_000, 100_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(d.effective_gops(100, 0), 0.0);
    }

    #[test]
    fn with_bandwidth_preserves_rest() {
        let d = FpgaDevice::zc706().with_bandwidth(1_000_000_000);
        assert_eq!(d.bytes_per_cycle(), 10.0);
        assert_eq!(d.resources().dsp, 900);
    }

    #[test]
    fn registry_resolves_known_names() {
        assert_eq!(FpgaDevice::by_name("zc706").unwrap().resources().dsp, 900);
        assert_eq!(
            FpgaDevice::by_name("xc7vx485t").unwrap().resources().dsp,
            2800
        );
        assert_eq!(
            FpgaDevice::by_name("zedboard").unwrap().resources().dsp,
            220
        );
        assert_eq!(FpgaDevice::by_name("vc709").unwrap().resources().dsp, 3600);
        assert_eq!(
            FpgaDevice::by_name("ku060").unwrap().clock_hz(),
            200_000_000
        );
        assert!(FpgaDevice::by_name("tpu").is_none());
    }

    #[test]
    fn reconfig_default_zero_and_override() {
        let d = FpgaDevice::zc706();
        assert_eq!(d.reconfig_cycles(), 0);
        let r = d.with_reconfig_cycles(2_500_000);
        assert_eq!(r.reconfig_cycles(), 2_500_000);
        assert_eq!(r.resources().dsp, 900);
    }

    #[test]
    fn display_contains_name() {
        assert!(FpgaDevice::zc706().to_string().contains("zc706"));
    }
}
