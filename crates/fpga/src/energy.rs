//! Linear power/energy model for the Table 1 comparisons.
//!
//! The paper reports board power (~9.4 W), energy efficiency (GOPS/W) and
//! relative energy savings (68.2% average transfer-energy saving, ~50%
//! compute-energy saving, §7.2). Absolute watts from an analytical model
//! are not meaningful; the constants below are chosen so that a
//! near-fully-utilized ZC706 lands in the paper's 9–10 W range, and only
//! **ratios** are quoted in EXPERIMENTS.md.

use crate::resource::ResourceVec;

/// Linear activity-based power/energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Static (leakage + PS subsystem) power in watts.
    pub static_watts: f64,
    /// Dynamic power per active DSP48E slice, watts.
    pub watts_per_dsp: f64,
    /// Dynamic power per active BRAM18K, watts.
    pub watts_per_bram: f64,
    /// Dynamic power per active LUT, watts.
    pub watts_per_lut: f64,
    /// Dynamic power per active FF, watts.
    pub watts_per_ff: f64,
    /// DRAM transfer energy, joules per byte.
    pub joules_per_dram_byte: f64,
}

impl Default for EnergyModel {
    /// Constants calibrated to land a ~90%-utilized XC7Z045 near the
    /// paper's 9.4 W: 1.2 W static + ~4 W DSP + ~2.4 W BRAM + ~1.6 W
    /// logic. DRAM at 70 pJ/byte (typical DDR3 estimate).
    fn default() -> Self {
        EnergyModel {
            static_watts: 1.2,
            watts_per_dsp: 5.0e-3,
            watts_per_bram: 2.8e-3,
            watts_per_lut: 8.0e-6,
            watts_per_ff: 2.0e-6,
            joules_per_dram_byte: 70e-12,
        }
    }
}

impl EnergyModel {
    /// Creates the default calibrated model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Board power in watts for a design occupying `used` resources.
    pub fn power_watts(&self, used: &ResourceVec) -> f64 {
        self.static_watts
            + used.dsp as f64 * self.watts_per_dsp
            + used.bram_18k as f64 * self.watts_per_bram
            + used.lut as f64 * self.watts_per_lut
            + used.ff as f64 * self.watts_per_ff
    }

    /// Compute-side energy in joules for a design running `seconds`.
    pub fn compute_energy_joules(&self, used: &ResourceVec, seconds: f64) -> f64 {
        self.power_watts(used) * seconds
    }

    /// DRAM transfer energy in joules for `bytes` moved.
    pub fn transfer_energy_joules(&self, bytes: u64) -> f64 {
        bytes as f64 * self.joules_per_dram_byte
    }

    /// Total energy: compute + transfer.
    pub fn total_energy_joules(&self, used: &ResourceVec, seconds: f64, bytes: u64) -> f64 {
        self.compute_energy_joules(used, seconds) + self.transfer_energy_joules(bytes)
    }

    /// Energy efficiency in GOPS/W for `ops` completed in `seconds` on a
    /// design occupying `used`.
    pub fn energy_efficiency_gops_per_watt(
        &self,
        used: &ResourceVec,
        ops: u64,
        seconds: f64,
    ) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        let gops = ops as f64 / seconds / 1e9;
        gops / self.power_watts(used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_full_zc706_lands_in_paper_power_band() {
        // Table 1 reports ~9.4 W at BRAM 909 / DSP 824 / FF 120k / LUT 155k.
        let used = ResourceVec::new(909, 824, 120_957, 155_000);
        let p = EnergyModel::new().power_watts(&used);
        assert!((7.0..12.0).contains(&p), "power {p} W");
    }

    #[test]
    fn power_is_monotone_in_usage() {
        let m = EnergyModel::new();
        let small = ResourceVec::new(10, 10, 1000, 1000);
        let big = ResourceVec::new(100, 100, 10_000, 10_000);
        assert!(m.power_watts(&small) < m.power_watts(&big));
        assert!(m.power_watts(&ResourceVec::ZERO) >= m.static_watts);
    }

    #[test]
    fn transfer_energy_is_linear_in_bytes() {
        let m = EnergyModel::new();
        assert_eq!(
            m.transfer_energy_joules(2_000_000),
            2.0 * m.transfer_energy_joules(1_000_000)
        );
    }

    #[test]
    fn efficiency_decreases_with_time() {
        let m = EnergyModel::new();
        let used = ResourceVec::new(500, 500, 100_000, 100_000);
        let fast = m.energy_efficiency_gops_per_watt(&used, 1_000_000_000, 0.01);
        let slow = m.energy_efficiency_gops_per_watt(&used, 1_000_000_000, 0.02);
        assert!(fast > slow);
        assert_eq!(m.energy_efficiency_gops_per_watt(&used, 1, 0.0), 0.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = EnergyModel::new();
        let used = ResourceVec::new(1, 1, 1, 1);
        let total = m.total_energy_joules(&used, 2.0, 1000);
        assert!(
            (total - m.compute_energy_joules(&used, 2.0) - m.transfer_energy_joules(1000)).abs()
                < 1e-15
        );
    }
}
