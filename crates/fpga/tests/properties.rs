//! Property tests for the engine cost models: the monotonicities the
//! branch-and-bound's pruning logic depends on must hold for arbitrary
//! layers.

use proptest::prelude::*;
use winofuse_fpga::engine::{estimate_layer, parallelism_candidates, Algorithm, EngineConfig};
use winofuse_model::layer::{ConvParams, Layer, LayerKind};
use winofuse_model::shape::FmShape;

fn arb_conv_layer() -> impl Strategy<Value = (Layer, FmShape)> {
    (
        1usize..5,  // kernel index -> 1/3/5/7
        1usize..3,  // stride
        1usize..32, // output channels
        1usize..16, // input channels
        8usize..40, // spatial
    )
        .prop_map(|(ki, stride, n, c, hw)| {
            let kernel = [1, 3, 5, 7][ki - 1];
            let pad = kernel / 2;
            let layer = Layer::new(
                "l",
                LayerKind::Conv(ConvParams::new(n, kernel, stride, pad, true)),
            );
            (layer, FmShape::new(c, hw, hw))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2 explores parallelism from max to min and `break`s when
    /// the latency bound exceeds the incumbent — valid only if compute
    /// cycles are non-increasing and resources non-decreasing in p.
    #[test]
    fn estimates_are_monotone_in_parallelism((layer, input) in arb_conv_layer()) {
        for algo in [Algorithm::Conventional, Algorithm::winograd_f43()] {
            let candidates = parallelism_candidates(&layer, algo, 900);
            let mut prev: Option<(u64, u64)> = None; // (cycles, dsp) at higher p
            for p in candidates {
                let Ok(e) = estimate_layer(&layer, input, &EngineConfig { algorithm: algo, parallelism: p })
                else { continue };
                if let Some((cycles_hi, dsp_hi)) = prev {
                    // Candidates descend: lower p => more cycles, fewer DSPs.
                    prop_assert!(e.compute_cycles >= cycles_hi,
                        "{algo:?} p={p}: cycles must grow as p shrinks");
                    prop_assert!(e.resources.dsp <= dsp_hi,
                        "{algo:?} p={p}: dsp must shrink with p");
                }
                prev = Some((e.compute_cycles, e.resources.dsp));
            }
        }
    }

    /// Work conservation: cycles × throughput covers the layer's MACs.
    #[test]
    fn compute_cycles_cover_the_work((layer, input) in arb_conv_layer()) {
        let macs = layer.macs(input);
        for p in [1usize, 4, 16] {
            let Ok(e) = estimate_layer(
                &layer,
                input,
                &EngineConfig { algorithm: Algorithm::Conventional, parallelism: p },
            ) else { continue };
            prop_assert!(
                e.compute_cycles * p as u64 >= macs,
                "p={p}: {} cycles x {p} lanes < {macs} MACs",
                e.compute_cycles
            );
            // ...and not absurdly more (ceil effects only).
            prop_assert!(e.compute_cycles <= macs / p as u64 + input.height as u64 + 1);
        }
    }

    /// Winograd at matched MAC throughput never uses more DSPs than
    /// conventional (the paper's whole premise).
    #[test]
    fn winograd_dsp_advantage_holds((layer, input) in arb_conv_layer()) {
        let LayerKind::Conv(c) = &layer.kind else { unreachable!() };
        prop_assume!(c.stride == 1 && (2..=5).contains(&c.kernel));
        let Ok(w) = estimate_layer(
            &layer,
            input,
            &EngineConfig { algorithm: Algorithm::winograd_f43(), parallelism: 1 },
        ) else { return Ok(()) };
        // A conventional engine with the same MACs/cycle:
        let p = w.macs_per_cycle as usize;
        prop_assume!(p <= winofuse_fpga::engine::max_parallelism(&layer, Algorithm::Conventional));
        let conv = estimate_layer(
            &layer,
            input,
            &EngineConfig { algorithm: Algorithm::Conventional, parallelism: p },
        ).unwrap();
        prop_assert!(
            w.resources.dsp <= conv.resources.dsp,
            "winograd {} DSP vs conventional {} at matched throughput",
            w.resources.dsp,
            conv.resources.dsp
        );
    }
}
