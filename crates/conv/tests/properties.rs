//! Property-based tests for the convolution substrate: every algorithm
//! must agree with the direct reference on arbitrary shapes and data.

use proptest::prelude::*;
use winofuse_conv::cook_toom::WinogradTransform;
use winofuse_conv::fixed::Fix16;
use winofuse_conv::rational::Rational;
use winofuse_conv::tensor::{random_tensor, Tensor};
use winofuse_conv::{direct, im2col, winograd, ConvGeometry};

/// Relative-ish tolerance for Winograd vs direct: inputs are in [-1,1),
/// accumulation depth is bounded by channels·K², so an absolute bound
/// scaled by channel count is safe.
fn tol(channels: usize, k: usize) -> f32 {
    1e-4 * (channels * k * k) as f32 + 1e-4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn im2col_matches_direct(
        h in 3usize..12,
        w in 3usize..12,
        k in 1usize..4,
        s in 1usize..3,
        pad in 0usize..2,
        in_c in 1usize..4,
        out_c in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= h + 2 * pad && k <= w + 2 * pad);
        let geom = ConvGeometry::rect(h, w, k, s, pad).unwrap();
        let x = random_tensor(1, in_c, h, w, seed);
        let kr = random_tensor(out_c, in_c, k, k, seed + 1);
        let a = direct::conv2d(&x, &kr, geom).unwrap();
        let b = im2col::conv2d(&x, &kr, geom).unwrap();
        prop_assert!(a.approx_eq(&b, tol(in_c, k)));
    }

    #[test]
    fn winograd_f43_matches_direct(
        h in 3usize..16,
        w in 3usize..16,
        pad in 0usize..2,
        in_c in 1usize..4,
        out_c in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(3 <= h + 2 * pad && 3 <= w + 2 * pad);
        let geom = ConvGeometry::rect(h, w, 3, 1, pad).unwrap();
        let x = random_tensor(1, in_c, h, w, seed);
        let kr = random_tensor(out_c, in_c, 3, 3, seed + 7);
        let a = direct::conv2d(&x, &kr, geom).unwrap();
        let b = winograd::conv2d_f43(&x, &kr, geom).unwrap();
        prop_assert!(
            a.approx_eq(&b, tol(in_c, 3)),
            "max diff {}", a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn winograd_arbitrary_tile_matches_direct(
        m in 1usize..6,
        r in 2usize..5,
        extra in 0usize..5,
        in_c in 1usize..3,
        seed in 0u64..1000,
    ) {
        let t = match WinogradTransform::generate(m, r) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        let h = r + m + extra; // always large enough for at least one tile
        let geom = ConvGeometry::rect(h, h, r, 1, 0).unwrap();
        let x = random_tensor(1, in_c, h, h, seed);
        let kr = random_tensor(2, in_c, r, r, seed + 13);
        let a = direct::conv2d(&x, &kr, geom).unwrap();
        let b = winograd::conv2d_with(&x, &kr, geom, &t).unwrap();
        prop_assert!(a.approx_eq(&b, tol(in_c, r)));
    }

    #[test]
    fn cook_toom_identity_exact(
        m in 1usize..7,
        r in 1usize..6,
        gseed in -20i128..20,
        dseed in -20i128..20,
    ) {
        let t = match WinogradTransform::generate(m, r) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        let alpha = m + r - 1;
        let g: Vec<Rational> =
            (0..r).map(|i| Rational::new(gseed + i as i128, 1 + (i as i128 % 3))).collect();
        let d: Vec<Rational> =
            (0..alpha).map(|i| Rational::new(dseed - 2 * i as i128, 2 + (i as i128 % 2))).collect();
        let fast = t.apply_1d(&g, &d).unwrap();
        for k in 0..m {
            let mut acc = Rational::ZERO;
            for v in 0..r {
                acc = acc + d[k + v] * g[v];
            }
            prop_assert_eq!(fast[k], acc, "F({},{}) output {}", m, r, k);
        }
    }

    #[test]
    fn fix16_roundtrip_within_half_ulp(v in -127.9f32..127.9) {
        let q = Fix16::from_f32(v);
        prop_assert!((q.to_f32() - v).abs() <= 0.5 / 256.0 + 1e-6);
    }

    #[test]
    fn fix16_conv_tracks_f32(
        h in 3usize..8,
        k in 1usize..4,
        in_c in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= h);
        let geom = ConvGeometry::rect(h, h, k, 1, 0).unwrap();
        let x = random_tensor(1, in_c, h, h, seed);
        let kr = random_tensor(1, in_c, k, k, seed + 3);
        let f = direct::conv2d(&x, &kr, geom).unwrap();
        let q = direct::conv2d_fix16(&x.cast(), &kr.cast(), geom).unwrap();
        let qf: Tensor<f32> = q.cast();
        // Quantization error bound: each operand has <= 1/512 error, values
        // bounded by 1, depth = in_c·k².
        let bound = (in_c * k * k) as f32 * (2.0 / 512.0) + 1.0 / 512.0 + 1e-3;
        prop_assert!(f.max_abs_diff(&qf).unwrap() <= bound);
    }

    #[test]
    fn pool_output_is_member_or_mean(
        h in 2usize..8,
        k in 1usize..4,
        s in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= h);
        let geom = ConvGeometry::rect(h, h, k, s, 0).unwrap();
        let x = random_tensor(1, 2, h, h, seed);
        let y = winofuse_conv::ops::pool(&x, geom, winofuse_conv::ops::PoolKind::Max).unwrap();
        // Max-pool outputs must be elements of the input.
        for &v in y.as_slice() {
            prop_assert!(x.as_slice().contains(&v));
        }
        let ya = winofuse_conv::ops::pool(&x, geom, winofuse_conv::ops::PoolKind::Average).unwrap();
        let (lo, hi) = x.as_slice().iter().fold((f32::MAX, f32::MIN), |(l, h2), &v| (l.min(v), h2.max(v)));
        for &v in ya.as_slice() {
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_matches_direct(
        h in 4usize..14,
        k in 1usize..5,
        s in 1usize..3,
        pad in 0usize..2,
        in_c in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= h + 2 * pad);
        let geom = ConvGeometry::rect(h, h, k, s, pad).unwrap();
        let x = random_tensor(1, in_c, h, h, seed);
        let kr = random_tensor(2, in_c, k, k, seed + 31);
        let a = direct::conv2d(&x, &kr, geom).unwrap();
        let b = winofuse_conv::fft::conv2d(&x, &kr, geom).unwrap();
        prop_assert!(
            a.approx_eq(&b, tol(in_c, k)),
            "max diff {}", a.max_abs_diff(&b).unwrap()
        );
    }
}
