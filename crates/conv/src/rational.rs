//! Exact rational arithmetic over `i128`.
//!
//! Winograd transform matrices have small rational entries (e.g. `-1/6`,
//! `1/24` for `F(4,3)`). Generating them with floating point would smuggle
//! rounding error into what hardware implements with exact shift/add
//! networks, so the Cook–Toom generator works over [`Rational`] and converts
//! to `f32`/`f64` only at the edge.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::ConvError;

/// An exact rational number `num/den` with `den > 0`, always stored in
/// lowest terms.
///
/// Arithmetic returns `Result` so that an (extremely unlikely for the tile
/// sizes in question) `i128` overflow surfaces as
/// [`ConvError::RationalOverflow`] instead of a wrong matrix. The
/// operator impls panic on overflow and exist for test convenience; library
/// code uses the checked methods.
///
/// # Examples
///
/// ```
/// use winofuse_conv::rational::Rational;
///
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!((a + b), Rational::new(1, 2));
/// assert_eq!(Rational::new(2, 4), Rational::new(1, 2)); // normalized
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The value zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The value one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational denominator must be nonzero");
        if num == 0 {
            return Rational::ZERO;
        }
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let g = gcd(num, den);
        Rational {
            num: sign * (num.abs() / g),
            den: den.abs() / g,
        }
    }

    /// Creates the integer `v`.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Converts to `f64` (exact for all values arising in Winograd
    /// transforms of practical size).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Converts to `f32`.
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// [`ConvError::RationalOverflow`] on `i128` overflow.
    pub fn checked_add(self, rhs: Self) -> Result<Self, ConvError> {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .ok_or(ConvError::RationalOverflow)?;
        let den = self
            .den
            .checked_mul(rhs.den)
            .ok_or(ConvError::RationalOverflow)?;
        Ok(Rational::new(num, den))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// [`ConvError::RationalOverflow`] on `i128` overflow.
    pub fn checked_sub(self, rhs: Self) -> Result<Self, ConvError> {
        self.checked_add(Rational::new(-rhs.num, rhs.den))
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// [`ConvError::RationalOverflow`] on `i128` overflow.
    pub fn checked_mul(self, rhs: Self) -> Result<Self, ConvError> {
        // Cross-reduce first to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or(ConvError::RationalOverflow)?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or(ConvError::RationalOverflow)?;
        Ok(Rational::new(num, den))
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// [`ConvError::RationalOverflow`] on overflow. Panics on division by
    /// zero (a logic error in transform generation, not an input error).
    pub fn checked_div(self, rhs: Self) -> Result<Self, ConvError> {
        assert!(!rhs.is_zero(), "rational division by zero");
        self.checked_mul(Rational::new(rhs.den, rhs.num))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Self {
        assert!(!self.is_zero(), "zero has no reciprocal");
        Rational::new(self.den, self.num)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("rational overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        self.checked_sub(rhs).expect("rational overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul(rhs).expect("rational overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Self) -> Self {
        self.checked_div(rhs).expect("rational overflow")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 6);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(b - a, a);
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::new(1, 2));
        assert_eq!(-a, Rational::new(-1, 6));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
    }

    #[test]
    fn conversion() {
        assert_eq!(Rational::new(1, 4).to_f64(), 0.25);
        assert_eq!(Rational::from_int(-3).to_f32(), -3.0);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-1, 6).to_string(), "-1/6");
    }

    #[test]
    fn overflow_is_reported() {
        let huge = Rational::new(i128::MAX - 1, 1);
        assert_eq!(huge.checked_add(huge), Err(ConvError::RationalOverflow));
        assert_eq!(huge.checked_mul(huge), Err(ConvError::RationalOverflow));
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
    }
}
