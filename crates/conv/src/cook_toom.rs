//! Cook–Toom construction of Winograd minimal-filtering transforms.
//!
//! For an `m`-output, `r`-tap FIR filter, `F(m, r)` needs only
//! `α = m + r − 1` multiplications (§2.1 of the paper). The bilinear
//! algorithm is
//!
//! ```text
//! y = Aᵀ [ (G·g) ⊙ (Bᵀ·d) ]          (1-D)
//! Y = Aᵀ [ (G·g·Gᵀ) ⊙ (Bᵀ·d·B) ] A   (2-D nesting, Eq. 3 of the paper)
//! ```
//!
//! This module *generates* the constant matrices `Aᵀ`, `G`, `Bᵀ` for
//! arbitrary `(m, r)` instead of hard-coding the two published cases. The
//! construction follows the transposition (matrix-interchange) theorem:
//! a Toom–Cook polynomial-multiplication algorithm with evaluation points
//! `p₀ … p_{α−2}` plus the point at infinity is transposed into a minimal
//! filtering algorithm. All arithmetic is exact rational, so the matrices
//! are bit-identical to what an RTL shift/add network implements.
//!
//! The generated `F(2,3)` and `F(4,3)` are verified in the tests against
//! the matrices published by Lavin (arXiv:1509.09308), up to the standard
//! per-row scaling freedom.

use crate::matrix::Mat;
use crate::rational::Rational;
use crate::ConvError;

/// The canonical interpolation-point sequence used by practical Winograd
/// implementations: small magnitudes first to keep transform constants
/// cheap in hardware (0, ±1, ±2, ±½, ±4, ±¼, ±8, ±⅛).
const POINT_SEQUENCE: [(i64, i64); 15] = [
    (0, 1),
    (1, 1),
    (-1, 1),
    (2, 1),
    (-2, 1),
    (1, 2),
    (-1, 2),
    (4, 1),
    (-4, 1),
    (1, 4),
    (-1, 4),
    (8, 1),
    (-8, 1),
    (1, 8),
    (-1, 8),
];

/// A generated Winograd transform for `F(m, r)` (1-D) and its 2-D nesting
/// `F(m×m, r×r)`.
///
/// # Examples
///
/// ```
/// use winofuse_conv::cook_toom::WinogradTransform;
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let t = WinogradTransform::generate(4, 3)?; // the paper's F(4×4, 3×3)
/// assert_eq!(t.alpha(), 6);
/// assert_eq!(t.multiplies_2d(), 36);
/// // 16 outputs × 9 MACs = 144 MACs done with 36 multiplies: 4× DSP saving.
/// assert_eq!(t.dsp_efficiency(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WinogradTransform {
    m: usize,
    r: usize,
    a_t: Mat<Rational>,
    g: Mat<Rational>,
    b_t: Mat<Rational>,
}

impl WinogradTransform {
    /// Generates the transform for `F(m, r)`: `m` outputs of an `r`-tap
    /// filter.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::UnsupportedTransform`] when `m` or `r` is zero,
    /// when `m + r − 2` exceeds the built-in interpolation point sequence,
    /// or (theoretically) when exact arithmetic overflows.
    pub fn generate(m: usize, r: usize) -> Result<Self, ConvError> {
        if m == 0 || r == 0 {
            return Err(ConvError::UnsupportedTransform(
                "F(m, r) requires m >= 1 and r >= 1".into(),
            ));
        }
        let alpha = m + r - 1;
        let n_points = alpha - 1;
        if n_points > POINT_SEQUENCE.len() {
            return Err(ConvError::UnsupportedTransform(format!(
                "F({m}, {r}) needs {n_points} interpolation points, only {} available",
                POINT_SEQUENCE.len()
            )));
        }
        let points: Vec<Rational> = POINT_SEQUENCE[..n_points]
            .iter()
            .map(|&(n, d)| Rational::new(n as i128, d as i128))
            .collect();

        // Evaluation matrix E(n): α×n. Row i evaluates a degree-(n−1)
        // polynomial at pᵢ; the last row picks the leading coefficient
        // (the point at infinity).
        let eval = |n: usize| -> Result<Mat<Rational>, ConvError> {
            let mut e = Mat::<Rational>::zeros(alpha, n);
            for (i, p) in points.iter().enumerate() {
                let mut pow = Rational::ONE;
                for j in 0..n {
                    e.set(i, j, pow);
                    pow = pow.checked_mul(*p)?;
                }
            }
            e.set(alpha - 1, n - 1, Rational::ONE);
            Ok(e)
        };

        let a_t = eval(m)?.transpose(); // m×α: transposed input-evaluation map
        let g = eval(r)?; // α×r: filter evaluation
        let v = eval(alpha)?; // α×α: full Vandermonde-with-∞
        let b_t = v.inverse()?.transpose(); // α×α: transposed interpolation

        Ok(WinogradTransform { m, r, a_t, g, b_t })
    }

    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter tap count `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Input tile size `α = m + r − 1` (= multiplications in 1-D).
    pub fn alpha(&self) -> usize {
        self.m + self.r - 1
    }

    /// Multiplications required by the 1-D algorithm.
    pub fn multiplies_1d(&self) -> usize {
        self.alpha()
    }

    /// Multiplications required by the nested 2-D algorithm (`α²`).
    pub fn multiplies_2d(&self) -> usize {
        self.alpha() * self.alpha()
    }

    /// DSP-efficiency of the 2-D algorithm versus conventional convolution:
    /// `m²·r² / α²` equivalent MACs per multiplier.
    ///
    /// For the paper's `F(4×4, 3×3)` this is exactly 4.0 — the source of
    /// the "one quarter of the DSPs / 4× the bandwidth" trade-off.
    pub fn dsp_efficiency(&self) -> f64 {
        (self.m * self.m * self.r * self.r) as f64 / self.multiplies_2d() as f64
    }

    /// Output-transform matrix `Aᵀ` (`m × α`), exact.
    pub fn a_t(&self) -> &Mat<Rational> {
        &self.a_t
    }

    /// Filter-transform matrix `G` (`α × r`), exact.
    pub fn g(&self) -> &Mat<Rational> {
        &self.g
    }

    /// Input-transform matrix `Bᵀ` (`α × α`), exact.
    pub fn b_t(&self) -> &Mat<Rational> {
        &self.b_t
    }

    /// `Aᵀ` as `f32` for runtime kernels.
    pub fn a_t_f32(&self) -> Mat<f32> {
        self.a_t.to_f32()
    }

    /// `G` as `f32` for runtime kernels.
    pub fn g_f32(&self) -> Mat<f32> {
        self.g.to_f32()
    }

    /// `Bᵀ` as `f32` for runtime kernels.
    pub fn b_t_f32(&self) -> Mat<f32> {
        self.b_t.to_f32()
    }

    /// Applies the 1-D algorithm: `y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]` with exact
    /// rational arithmetic. `g` must have `r` taps and `d` must have `α`
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::ShapeMismatch`] on wrong input lengths.
    pub fn apply_1d(&self, g: &[Rational], d: &[Rational]) -> Result<Vec<Rational>, ConvError> {
        if g.len() != self.r {
            return Err(ConvError::ShapeMismatch {
                expected: format!("{} filter taps", self.r),
                found: format!("{}", g.len()),
            });
        }
        if d.len() != self.alpha() {
            return Err(ConvError::ShapeMismatch {
                expected: format!("{} input samples", self.alpha()),
                found: format!("{}", d.len()),
            });
        }
        let gv = Mat::from_rows(g.iter().map(|&x| vec![x]).collect());
        let dv = Mat::from_rows(d.iter().map(|&x| vec![x]).collect());
        let u = self.g.mul(&gv); // α×1
        let v = self.b_t.mul(&dv); // α×1
        let prod = u.hadamard(&v);
        let y = self.a_t.mul(&prod); // m×1
        Ok((0..self.m).map(|i| y.get(i, 0)).collect())
    }

    /// Number of additions/subtractions a matrix-vector product with `mat`
    /// costs in hardware (nonzero entries minus one per nonzero row).
    fn matvec_adds(mat: &Mat<Rational>) -> usize {
        (0..mat.rows())
            .map(|r| {
                let nz = (0..mat.cols())
                    .filter(|&c| !mat.get(r, c).is_zero())
                    .count();
                nz.saturating_sub(1)
            })
            .sum()
    }

    /// Total adder count of one 1-D input transform (`Bᵀ·d`).
    pub fn input_transform_adds(&self) -> usize {
        Self::matvec_adds(&self.b_t)
    }

    /// Total adder count of one 1-D output transform (`Aᵀ·…`).
    pub fn output_transform_adds(&self) -> usize {
        Self::matvec_adds(&self.a_t)
    }

    /// Number of non-trivial constants (≠ 0, ±1) in `Bᵀ` and `Aᵀ`
    /// combined — each costs extra LUT shift/add logic in hardware.
    pub fn nontrivial_constants(&self) -> usize {
        let count = |m: &Mat<Rational>| {
            m.as_slice()
                .iter()
                .filter(|v| !v.is_zero() && **v != Rational::ONE && **v != -Rational::ONE)
                .count()
        };
        count(&self.b_t) + count(&self.a_t)
    }
}

impl WinogradTransform {
    /// Returns a numerically rebalanced variant for fixed-point
    /// datapaths: row `i` of `Bᵀ` is scaled by a power of two `cᵢ` and
    /// row `i` of `G` by `1/cᵢ` (their Hadamard pairing makes this an
    /// identity), chosen so both rows have comparable magnitude. The
    /// Cook–Toom construction naturally leaves tiny interpolation
    /// fractions in `Bᵀ`; quantizing such values to Q8.8 destroys them,
    /// while a power-of-two rescale is a free shift in hardware.
    ///
    /// The rebalanced transform computes exactly the same convolution
    /// (verified by the exactness tests — scalings are exact rationals).
    pub fn rebalanced(&self) -> WinogradTransform {
        let alpha = self.alpha();
        let max_abs_row = |m: &Mat<Rational>, r: usize| -> f64 {
            (0..m.cols())
                .map(|c| m.get(r, c).to_f64().abs())
                .fold(0.0, f64::max)
        };
        let mut b_t = self.b_t.clone();
        let mut g = self.g.clone();
        for i in 0..alpha {
            let mb = max_abs_row(&b_t, i).max(1e-12);
            let mg = max_abs_row(&g, i).max(1e-12);
            // c = 2^round(log2(sqrt(mg/mb))): after scaling, row maxima
            // of Bᵀ·c and G/c are within ~sqrt(2) of each other.
            let exp = ((mg / mb).sqrt()).log2().round() as i32;
            let c = if exp >= 0 {
                Rational::new(1i128 << exp.min(60), 1)
            } else {
                Rational::new(1, 1i128 << (-exp).min(60))
            };
            for col in 0..b_t.cols() {
                b_t.set(i, col, b_t.get(i, col) * c);
            }
            let inv = c.recip();
            for col in 0..g.cols() {
                g.set(i, col, g.get(i, col) * inv);
            }
        }
        WinogradTransform {
            m: self.m,
            r: self.r,
            a_t: self.a_t.clone(),
            g,
            b_t,
        }
    }
}

/// Convenience: the paper's uniform tile choice `F(4×4, 3×3)` (§2.1).
///
/// # Panics
///
/// Never panics: `F(4, 3)` is always generatable from the built-in point
/// sequence.
pub fn f43() -> WinogradTransform {
    WinogradTransform::generate(4, 3).expect("F(4,3) generation cannot fail")
}

/// Convenience: the small `F(2×2, 3×3)` tile from Lavin's paper.
///
/// # Panics
///
/// Never panics.
pub fn f23() -> WinogradTransform {
    WinogradTransform::generate(2, 3).expect("F(2,3) generation cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// Direct 1-D correlation reference: y_k = Σ_v d_{k+v} g_v.
    fn direct_1d(g: &[Rational], d: &[Rational], m: usize) -> Vec<Rational> {
        (0..m)
            .map(|k| {
                g.iter()
                    .enumerate()
                    .fold(Rational::ZERO, |acc, (v, &gv)| acc + d[k + v] * gv)
            })
            .collect()
    }

    #[test]
    fn f23_matches_direct() {
        let t = WinogradTransform::generate(2, 3).unwrap();
        let g = vec![rat(1, 1), rat(2, 1), rat(-1, 3)];
        let d = vec![rat(5, 1), rat(-4, 1), rat(1, 2), rat(7, 1)];
        assert_eq!(t.apply_1d(&g, &d).unwrap(), direct_1d(&g, &d, 2));
    }

    #[test]
    fn f43_matches_direct() {
        let t = f43();
        assert_eq!(t.alpha(), 6);
        let g = vec![rat(-1, 2), rat(3, 1), rat(1, 7)];
        let d = vec![
            rat(1, 1),
            rat(0, 1),
            rat(-2, 1),
            rat(5, 3),
            rat(4, 1),
            rat(-1, 6),
        ];
        assert_eq!(t.apply_1d(&g, &d).unwrap(), direct_1d(&g, &d, 4));
    }

    #[test]
    fn exhaustive_small_transforms_match_direct() {
        // Every (m, r) the optimizer could reasonably request.
        for m in 1..=6usize {
            for r in 1..=5usize {
                let t = match WinogradTransform::generate(m, r) {
                    Ok(t) => t,
                    Err(ConvError::UnsupportedTransform(_)) => continue,
                    Err(e) => panic!("unexpected error for F({m},{r}): {e}"),
                };
                let alpha = m + r - 1;
                let g: Vec<Rational> = (0..r).map(|i| rat(i as i128 * 2 - 3, 2)).collect();
                let d: Vec<Rational> = (0..alpha).map(|i| rat(7 - 3 * i as i128, 3)).collect();
                assert_eq!(
                    t.apply_1d(&g, &d).unwrap(),
                    direct_1d(&g, &d, m),
                    "F({m},{r}) disagrees with direct correlation"
                );
            }
        }
    }

    #[test]
    fn f43_dsp_efficiency_is_four() {
        assert_eq!(f43().dsp_efficiency(), 4.0);
        assert_eq!(f43().multiplies_2d(), 36);
    }

    #[test]
    fn f23_known_multiply_count() {
        // Paper §2.1: F(2,3) needs 4 multiplications instead of 6.
        assert_eq!(f23().multiplies_1d(), 4);
    }

    #[test]
    fn f43_g_matrix_has_published_denominators() {
        // Lavin's G for F(4,3) contains 1/4, 1/6, 1/12, 1/24 (up to the
        // per-row scaling freedom the construction allows). Check that our
        // exact matrix only uses denominators from that family.
        let t = f43();
        for v in t.g().as_slice() {
            assert!(
                [1, 2, 3, 4, 6, 8, 12, 24].contains(&(v.denom() as i64)),
                "unexpected denominator in G: {v}"
            );
        }
    }

    #[test]
    fn rebalanced_transform_is_exact() {
        for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (4, 5)] {
            let t = WinogradTransform::generate(m, r).unwrap().rebalanced();
            let g: Vec<Rational> = (0..r).map(|i| rat(2 * i as i128 - 1, 3)).collect();
            let d: Vec<Rational> = (0..m + r - 1).map(|i| rat(5 - i as i128, 2)).collect();
            assert_eq!(
                t.apply_1d(&g, &d).unwrap(),
                direct_1d(&g, &d, m),
                "rebalanced F({m},{r}) must stay exact"
            );
        }
    }

    #[test]
    fn rebalanced_rows_have_comparable_magnitudes() {
        let t = f43().rebalanced();
        for i in 0..t.alpha() {
            let mb: f64 = (0..t.b_t().cols())
                .map(|c| t.b_t().get(i, c).to_f64().abs())
                .fold(0.0, f64::max);
            let mg: f64 = (0..t.g().cols())
                .map(|c| t.g().get(i, c).to_f64().abs())
                .fold(0.0, f64::max);
            let ratio = mb / mg;
            assert!(
                (0.2..5.0).contains(&ratio),
                "row {i}: |Bt|={mb:.3} vs |G|={mg:.3} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn rejects_degenerate_requests() {
        assert!(WinogradTransform::generate(0, 3).is_err());
        assert!(WinogradTransform::generate(4, 0).is_err());
        assert!(WinogradTransform::generate(20, 20).is_err());
    }

    #[test]
    fn transform_cost_counts_are_positive() {
        let t = f43();
        assert!(t.input_transform_adds() > 0);
        assert!(t.output_transform_adds() > 0);
        assert!(t.nontrivial_constants() > 0);
        // F(1,1) is the trivial algorithm: no adds at all.
        let triv = WinogradTransform::generate(1, 1).unwrap();
        assert_eq!(triv.input_transform_adds(), 0);
        assert_eq!(triv.output_transform_adds(), 0);
    }

    #[test]
    fn apply_1d_validates_lengths() {
        let t = f23();
        assert!(t.apply_1d(&[rat(1, 1); 2], &[rat(1, 1); 4]).is_err());
        assert!(t.apply_1d(&[rat(1, 1); 3], &[rat(1, 1); 5]).is_err());
    }
}
