//! Sparse Winograd filter banks and the CSR-panel sparse GEMM.
//!
//! "Efficient Sparse-Winograd Convolutional Neural Networks" (1810.01973)
//! prunes weights *in the transform domain*: the `α²` coefficient planes
//! of a [`crate::winograd::BatchedFilters`] bank are thresholded so only
//! the top-magnitude fraction survives, and the per-transform-point GEMMs
//! skip the zeros. This module provides the pruning pass
//! ([`SparseFilters`]), the CSR plane layout ([`CsrPlane`]), and the
//! sparse GEMM kernel ([`sparse_gemm`]) the batched Winograd path
//! dispatches to.
//!
//! ## Determinism contract
//!
//! * **Pruning** keeps *exactly* `⌈coeffs · density/1000⌉` coefficients
//!   per plane — the same count the analytic DRAM model
//!   (`winofuse_fpga::engine::sparse_stream_bytes`) charges for — chosen
//!   by descending magnitude with ties broken toward the lower flat
//!   index. No data-dependent surprises: the bank's wire size is a pure
//!   function of shape and density.
//! * **The sparse GEMM** accumulates each output element's products in
//!   ascending column order, split at the same `KC` boundaries as the
//!   dense blocked GEMM (first block overwrites, later blocks
//!   accumulate). At density 1000 the stored planes contain every
//!   coefficient in ascending order, so the result is **bit-identical**
//!   to [`crate::gemm::gemm_f32_prepacked`] — the oracle relationship the
//!   test matrix pins, mirroring the dense microkernel's scalar-oracle
//!   pattern.

use crate::cook_toom::WinogradTransform;
use crate::gemm::{BOperand, GemmBlocking};
use crate::tensor::Tensor;
use crate::winograd::TransformedFilters;
use crate::ConvError;

/// Per-mille density denominator (1000‰ = dense).
pub const DENSITY_SCALE: u64 = 1000;

/// Number of coefficients retained when pruning `coeffs` values at
/// `density_pm` per-mille density. Must stay in lock-step with
/// `winofuse_fpga::engine::sparse_nnz` — the fused runner's strict DRAM
/// reconciliation pins the two against each other.
pub fn sparse_keep_count(coeffs: u64, density_pm: u16) -> u64 {
    (coeffs * density_pm as u64).div_ceil(DENSITY_SCALE)
}

/// One transform point's pruned coefficient plane in compressed sparse
/// row form: rows are output channels, columns are input channels.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrPlane {
    /// `out_c + 1` row offsets into `cols`/`vals`.
    row_ptr: Vec<u32>,
    /// Input-channel column of each retained coefficient, ascending
    /// within each row.
    cols: Vec<u16>,
    /// Retained coefficient values, parallel to `cols`.
    vals: Vec<f32>,
}

impl CsrPlane {
    /// Retained nonzero slots (including stored exact zeros — the count
    /// is shape-determined, not value-determined).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// The `(columns, values)` slices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> (&[u16], &[f32]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }
}

/// A transformed filter bank pruned plane-wise to a target density:
/// `α²` [`CsrPlane`]s, one per transform point, each keeping exactly
/// [`sparse_keep_count`]`(out_c·in_c, density_pm)` coefficients.
#[derive(Debug, Clone)]
pub struct SparseFilters {
    m: usize,
    r: usize,
    alpha: usize,
    out_c: usize,
    in_c: usize,
    density_pm: u16,
    planes: Vec<CsrPlane>,
}

impl SparseFilters {
    /// Transforms a kernel tensor (`N×C×r×r`) and prunes each of the `α²`
    /// coefficient planes to `density_pm` per-mille of its `N·C` entries,
    /// by descending magnitude (ties toward the lower flat index).
    ///
    /// # Errors
    ///
    /// [`ConvError::ShapeMismatch`] when the kernel spatial size is not
    /// `r × r`, when `density_pm` is outside `1..=1000`, or when the
    /// channel counts overflow the CSR index types (`in_c > 65535`).
    pub fn new(
        kernels: &Tensor<f32>,
        transform: &WinogradTransform,
        density_pm: u16,
    ) -> Result<Self, ConvError> {
        if density_pm == 0 || density_pm as u64 > DENSITY_SCALE {
            return Err(ConvError::ShapeMismatch {
                expected: "sparse density in 1..=1000 per-mille".into(),
                found: format!("{density_pm}"),
            });
        }
        let (out_c, in_c) = (kernels.n(), kernels.c());
        if in_c > u16::MAX as usize {
            return Err(ConvError::ShapeMismatch {
                expected: "at most 65535 input channels for CSR u16 columns".into(),
                found: format!("{in_c}"),
            });
        }
        let banks = TransformedFilters::new(kernels, transform)?;
        let alpha = transform.alpha();
        let aa = alpha * alpha;
        // Dense plane scratch plus the selection index, reused per uv.
        let mut dense = vec![0.0f32; out_c * in_c];
        let keep = sparse_keep_count((out_c * in_c) as u64, density_pm) as usize;
        let mut order: Vec<u32> = Vec::with_capacity(out_c * in_c);
        let mut planes = Vec::with_capacity(aa);
        for uv in 0..aa {
            for k in 0..out_c {
                for c in 0..in_c {
                    dense[k * in_c + c] = banks.bank(k, c).as_slice()[uv];
                }
            }
            order.clear();
            order.extend(0..(out_c * in_c) as u32);
            // Top-magnitude selection, deterministic: magnitude descending,
            // flat index ascending on ties.
            order.sort_by(|&a, &b| {
                dense[b as usize]
                    .abs()
                    .total_cmp(&dense[a as usize].abs())
                    .then(a.cmp(&b))
            });
            let mut kept = order[..keep].to_vec();
            kept.sort_unstable(); // row-major order → CSR rows ascending
            let mut row_ptr = Vec::with_capacity(out_c + 1);
            let mut cols = Vec::with_capacity(keep);
            let mut vals = Vec::with_capacity(keep);
            row_ptr.push(0u32);
            let mut row = 0usize;
            for &flat in &kept {
                let (k, c) = ((flat as usize) / in_c, (flat as usize) % in_c);
                while row < k {
                    row_ptr.push(cols.len() as u32);
                    row += 1;
                }
                cols.push(c as u16);
                vals.push(dense[flat as usize]);
            }
            while row < out_c {
                row_ptr.push(cols.len() as u32);
                row += 1;
            }
            debug_assert_eq!(row_ptr.len(), out_c + 1);
            debug_assert_eq!(cols.len(), keep);
            planes.push(CsrPlane {
                row_ptr,
                cols,
                vals,
            });
        }
        Ok(SparseFilters {
            m: transform.m(),
            r: transform.r(),
            alpha,
            out_c,
            in_c,
            density_pm,
            planes,
        })
    }

    /// The pruned CSR plane for transform point `uv`.
    pub fn plane(&self, uv: usize) -> &CsrPlane {
        &self.planes[uv]
    }

    /// Output channels.
    pub fn out_c(&self) -> usize {
        self.out_c
    }

    /// Input channels.
    pub fn in_c(&self) -> usize {
        self.in_c
    }

    /// Tile side `α` of the transform the bank was built with.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Output tile side `m` of the transform.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter side `r` of the transform.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Configured retained density in per-mille.
    pub fn density_pm(&self) -> u16 {
        self.density_pm
    }

    /// Total retained coefficients across all `α²` planes — exactly
    /// `α² ·` [`sparse_keep_count`]`(N·C, density)` by construction, the
    /// invariant that lets the analytic DRAM model price the stream
    /// without looking at the weights.
    pub fn nnz_total(&self) -> u64 {
        self.planes.iter().map(|p| p.nnz() as u64).sum()
    }
}

/// Sparse GEMM kernel flavor. Mirrors
/// [`crate::microkernel::KernelChoice`]: `Scalar` is the oracle every
/// future vectorized variant must match bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseKernelChoice {
    /// Portable scalar CSR row sweep — the bit-exactness oracle.
    #[default]
    Scalar,
}

impl SparseKernelChoice {
    /// Every kernel the current build can run (oracle first).
    pub fn all_supported() -> Vec<SparseKernelChoice> {
        vec![SparseKernelChoice::Scalar]
    }

    /// Kernel name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SparseKernelChoice::Scalar => "sparse-scalar",
        }
    }
}

/// `C = A·B` for a CSR `A` plane (`out_c × in_c`), strided `B`
/// (`in_c × n`) and row-major `C` (`out_c × n`, fully overwritten).
///
/// Accumulation replicates the dense blocked GEMM's association exactly:
/// the column space is split at `blocking.kc` boundaries, each block's
/// partial sum accumulates in ascending column order with separate
/// multiply and add, the first block *overwrites* `C` and later blocks
/// *add* — so at density 1000 (every coefficient stored) the result is
/// bit-identical to [`crate::gemm::gemm_f32_prepacked`] on the same
/// operands, including `-0.0` copy-vs-add semantics.
///
/// Returns the exact multiply-add flops performed (`2·nnz·n`).
///
/// # Panics
///
/// Panics when `c.len() != out_c·n` or `blocking.kc == 0`.
pub fn sparse_gemm(
    kernel: SparseKernelChoice,
    plane: &CsrPlane,
    in_c: usize,
    n: usize,
    b: BOperand<'_>,
    c: &mut [f32],
    blocking: GemmBlocking,
) -> u64 {
    let SparseKernelChoice::Scalar = kernel;
    let m = plane.rows();
    assert_eq!(c.len(), m * n, "C must be out_c×n row-major");
    assert!(blocking.kc > 0, "KC block depth must be positive");
    if n == 0 {
        return 0;
    }
    if in_c == 0 {
        c.fill(0.0);
        return 0;
    }
    let kc = blocking.kc;
    for i in 0..m {
        let (cols, vals) = plane.row(i);
        let out_row = &mut c[i * n..(i + 1) * n];
        // Walk the row once per KC block: entries are ascending, so each
        // block is a contiguous sub-range.
        let mut e0 = 0usize;
        let mut first = true;
        let mut pc = 0usize;
        while pc < in_c {
            let hi = (pc + kc).min(in_c);
            let mut e1 = e0;
            while e1 < cols.len() && (cols[e1] as usize) < hi {
                e1 += 1;
            }
            for (j, slot) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for e in e0..e1 {
                    let prod = vals[e] * b.at(cols[e] as usize, j);
                    acc += prod;
                }
                if first {
                    *slot = acc;
                } else {
                    *slot += acc;
                }
            }
            first = false;
            e0 = e1;
            pc = hi;
        }
    }
    2 * plane.nnz() as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cook_toom::f43;
    use crate::gemm::{gemm_f32_prepacked, GemmScratch, PackedA};
    use crate::tensor::random_tensor;
    use crate::winograd::BatchedFilters;

    #[test]
    fn keep_count_rounds_up_and_saturates() {
        assert_eq!(sparse_keep_count(32, 250), 8);
        assert_eq!(sparse_keep_count(33, 250), 9);
        assert_eq!(sparse_keep_count(32, 1000), 32);
        assert_eq!(sparse_keep_count(1, 1), 1); // never zero
    }

    #[test]
    fn pruning_keeps_exactly_the_budgeted_count_per_plane() {
        let k = random_tensor(6, 5, 3, 3, 11);
        let t = f43();
        for density in [1u16, 100, 250, 500, 999, 1000] {
            let sf = SparseFilters::new(&k, &t, density).unwrap();
            let keep = sparse_keep_count(30, density) as usize;
            for uv in 0..36 {
                assert_eq!(sf.plane(uv).nnz(), keep, "density {density} uv {uv}");
            }
            assert_eq!(sf.nnz_total(), 36 * keep as u64);
        }
    }

    #[test]
    fn pruning_keeps_top_magnitudes() {
        let k = random_tensor(4, 3, 3, 3, 23);
        let t = f43();
        let dense = BatchedFilters::new(&k, &t).unwrap();
        let sf = SparseFilters::new(&k, &t, 500).unwrap();
        // Every kept value must be ≥ every dropped value in magnitude.
        for uv in 0..36 {
            let plane = sf.plane(uv);
            let mut kept = std::collections::HashSet::new();
            for i in 0..plane.rows() {
                let (cols, vals) = plane.row(i);
                for (c, v) in cols.iter().zip(vals) {
                    kept.insert(i * sf.in_c() + *c as usize);
                    // Stored values equal the dense transform's.
                    let dense_v = dense_plane_value(&k, &t, uv, i, *c as usize);
                    assert_eq!(*v, dense_v);
                }
            }
            let min_kept = (0..plane.rows())
                .flat_map(|i| plane.row(i).1.iter().map(|v| v.abs()))
                .fold(f32::INFINITY, f32::min);
            for flat in 0..sf.out_c() * sf.in_c() {
                if !kept.contains(&flat) {
                    let v = dense_plane_value(&k, &t, uv, flat / sf.in_c(), flat % sf.in_c());
                    assert!(
                        v.abs() <= min_kept,
                        "dropped |{v}| > kept min {min_kept} at uv {uv}"
                    );
                }
            }
        }
        let _ = dense;
    }

    fn dense_plane_value(
        k: &Tensor<f32>,
        t: &WinogradTransform,
        uv: usize,
        row: usize,
        col: usize,
    ) -> f32 {
        let banks = TransformedFilters::new(k, t).unwrap();
        banks.bank(row, col).as_slice()[uv]
    }

    #[test]
    fn density_1000_stores_every_coefficient_in_order() {
        let k = random_tensor(3, 4, 3, 3, 31);
        let sf = SparseFilters::new(&k, &f43(), 1000).unwrap();
        for uv in 0..36 {
            let plane = sf.plane(uv);
            for i in 0..plane.rows() {
                let (cols, _) = plane.row(i);
                let expect: Vec<u16> = (0..4u16).collect();
                assert_eq!(cols, &expect[..], "uv {uv} row {i}");
            }
        }
    }

    #[test]
    fn rejects_bad_density_and_wrong_kernel_size() {
        let k = random_tensor(2, 2, 3, 3, 5);
        assert!(SparseFilters::new(&k, &f43(), 0).is_err());
        assert!(SparseFilters::new(&k, &f43(), 1001).is_err());
        let k5 = random_tensor(2, 2, 5, 5, 5);
        assert!(SparseFilters::new(&k5, &f43(), 500).is_err());
    }

    #[test]
    fn sparse_gemm_density_1000_bit_identical_to_dense() {
        // The oracle contract: at density 1000 the CSR sweep must
        // reproduce the dense blocked GEMM bit-for-bit, including across
        // multiple KC blocks.
        for &(m, k, n, kc) in &[
            (4usize, 8usize, 16usize, 256usize),
            (7, 300, 19, 256), // k spans two KC blocks
            (5, 37, 1, 16),
            (1, 1, 1, 1),
        ] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 37 % 19) as f32 - 9.0) / 7.0)
                .collect();
            let bvals: Vec<f32> = (0..k * n)
                .map(|i| ((i * 53 % 23) as f32 - 11.0) / 5.0)
                .collect();
            let blocking = GemmBlocking {
                kc,
                ..GemmBlocking::default()
            };
            let packed = PackedA::pack(&a, m, k, blocking);
            let mut scratch = GemmScratch::new();
            let mut dense_c = vec![f32::NAN; m * n];
            gemm_f32_prepacked(
                &mut scratch,
                &packed,
                n,
                BOperand::row_major(&bvals, n),
                &mut dense_c,
                false,
            );
            // Build a density-1000 CSR plane directly from `a`.
            let plane = csr_from_dense(&a, m, k);
            let mut sparse_c = vec![f32::NAN; m * n];
            let flops = sparse_gemm(
                SparseKernelChoice::Scalar,
                &plane,
                k,
                n,
                BOperand::row_major(&bvals, n),
                &mut sparse_c,
                blocking,
            );
            assert_eq!(flops, 2 * (m * k * n) as u64);
            assert_eq!(
                sparse_c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dense_c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{m}x{k}x{n} kc={kc}"
            );
        }
    }

    fn csr_from_dense(a: &[f32], m: usize, k: usize) -> CsrPlane {
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..m {
            for c in 0..k {
                cols.push(c as u16);
                vals.push(a[i * k + c]);
            }
            row_ptr.push(cols.len() as u32);
        }
        CsrPlane {
            row_ptr,
            cols,
            vals,
        }
    }

    #[test]
    fn sparse_gemm_skips_pruned_rows_but_overwrites_output() {
        // A plane with an empty row must still overwrite C (no stale
        // garbage in the first-KC-block copy).
        let plane = CsrPlane {
            row_ptr: vec![0, 2, 2, 3],
            cols: vec![0, 2, 1],
            vals: vec![2.0, -1.0, 3.0],
        };
        let b = [1.0f32, 10.0, 100.0, 1000.0, 0.5, 0.25];
        let mut c = vec![f32::NAN; 6];
        sparse_gemm(
            SparseKernelChoice::Scalar,
            &plane,
            3,
            2,
            BOperand::row_major(&b, 2),
            &mut c,
            GemmBlocking::default(),
        );
        // Row 0: 2·b[0] − 1·b[2]; row 1 empty → zeros; row 2: 3·b[1].
        assert_eq!(c, vec![2.0 - 0.5, 20.0 - 0.25, 0.0, 0.0, 300.0, 3000.0]);
    }

    #[test]
    fn sparse_gemm_strided_b_matches_row_major() {
        let k = random_tensor(5, 6, 3, 3, 77);
        let sf = SparseFilters::new(&k, &f43(), 400).unwrap();
        let n = 9usize;
        let in_c = 6usize;
        let dense: Vec<f32> = (0..in_c * n).map(|i| (i as f32).sin()).collect();
        // Column-major copy: row stride 1, col stride in_c.
        let mut colmajor = vec![0.0f32; in_c * n];
        for r in 0..in_c {
            for cc in 0..n {
                colmajor[cc * in_c + r] = dense[r * n + cc];
            }
        }
        let plane = sf.plane(7);
        let mut c1 = vec![0.0f32; 5 * n];
        let mut c2 = vec![0.0f32; 5 * n];
        sparse_gemm(
            SparseKernelChoice::Scalar,
            plane,
            in_c,
            n,
            BOperand::row_major(&dense, n),
            &mut c1,
            GemmBlocking::default(),
        );
        sparse_gemm(
            SparseKernelChoice::Scalar,
            plane,
            in_c,
            n,
            BOperand::strided(&colmajor, 1, in_c),
            &mut c2,
            GemmBlocking::default(),
        );
        assert_eq!(c1, c2);
    }
}
