//! # winofuse-conv — numeric convolution substrate
//!
//! Reference implementations of every convolution algorithm discussed in
//! Xiao et al., *"Exploring Heterogeneous Algorithms for Accelerating Deep
//! Convolutional Neural Networks on FPGAs"* (DAC 2017):
//!
//! * [`direct`] — the conventional algorithm (Eq. 1 of the paper),
//! * [`im2col`] — convolution lowered to matrix multiplication,
//! * [`fft`] — convolution by the convolution theorem,
//! * [`winograd`] — Winograd minimal-filtering convolution `F(m×m, r×r)`,
//!   with transform matrices generated for arbitrary `(m, r)` by the
//!   Cook–Toom construction in [`cook_toom`],
//! * [`sparse`] — sparse Winograd: transform-domain pruned CSR filter
//!   banks and the CSR-panel GEMM the batched path dispatches to.
//!
//! Supporting pieces: a 4-D NCHW [`tensor::Tensor`], a saturating 16-bit
//! fixed-point type [`fixed::Fix16`] matching the paper's data type, exact
//! [`rational::Rational`] arithmetic for transform generation, and the
//! non-convolution CNN operators (pooling, ReLU, LRN, fully connected,
//! softmax) in [`ops`].
//!
//! ## Example
//!
//! ```
//! use winofuse_conv::{direct, winograd, tensor::Tensor, ConvGeometry};
//!
//! # fn main() -> Result<(), winofuse_conv::ConvError> {
//! let geom = ConvGeometry::new(8, 8, 3, 1, 1)?; // 8×8 input, 3×3 kernel, stride 1, pad 1
//! let input = Tensor::filled(1, 4, 8, 8, 0.5f32);
//! let kernels = Tensor::filled(2, 4, 3, 3, 0.25f32);
//! let y_direct = direct::conv2d(&input, &kernels, geom)?;
//! let y_wino = winograd::conv2d_f43(&input, &kernels, geom)?;
//! assert!(y_direct.approx_eq(&y_wino, 1e-3));
//! # Ok(())
//! # }
//! ```

pub mod cook_toom;
pub mod direct;
pub mod fft;
pub mod fixed;
pub mod gemm;
pub mod im2col;
pub mod matrix;
pub mod microkernel;
pub mod ops;
pub mod rational;
pub mod sparse;
pub mod tensor;
pub mod winograd;

mod error;
mod geometry;

pub use error::ConvError;
pub use geometry::ConvGeometry;
