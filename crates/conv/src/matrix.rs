//! Small dense matrices used for Winograd transforms.
//!
//! [`Mat`] is generic over the element, so the Cook–Toom generator can work
//! with exact [`crate::rational::Rational`] entries and the runtime kernels
//! with `f32`/`f64`.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::rational::Rational;
use crate::ConvError;

/// Element requirements for matrix arithmetic.
pub trait MatElem:
    Copy
    + PartialEq
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
}

impl MatElem for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
}

impl MatElem for f32 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
}

impl MatElem for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
}

/// A small dense row-major matrix.
///
/// # Examples
///
/// ```
/// use winofuse_conv::matrix::Mat;
///
/// let a = Mat::from_rows(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
/// let i = Mat::identity(2);
/// assert_eq!(a.mul(&i), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: MatElem> Mat<T> {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::one());
        }
        m
    }

    /// Creates a matrix from nested row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the matrix is empty.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let nrows = rows.len();
        Mat {
            rows: nrows,
            cols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn<F: FnMut(usize, usize) -> T>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree.
    pub fn mul(&self, rhs: &Mat<T>) -> Mat<T> {
        assert_eq!(self.cols, rhs.rows, "matrix dimension mismatch in mul");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == T::zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.get(i, j) + a * rhs.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Matrix product `self · rhs` written into `out`, which is fully
    /// overwritten — the allocation-free form of [`Mat::mul`] for hot
    /// loops that reuse a scratch matrix.
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree or `out` has the wrong shape.
    pub fn mul_into(&self, rhs: &Mat<T>, out: &mut Mat<T>) {
        assert_eq!(self.cols, rhs.rows, "matrix dimension mismatch in mul");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "output shape mismatch in mul_into"
        );
        for v in &mut out.data {
            *v = T::zero();
        }
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == T::zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.get(i, j) + a * rhs.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat<T> {
        Mat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree.
    pub fn hadamard(&self, rhs: &Mat<T>) -> Mat<T> {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        Mat::from_fn(self.rows, self.cols, |r, c| self.get(r, c) * rhs.get(r, c))
    }

    /// Maps every element through `f`, possibly changing the element type.
    pub fn map<U: MatElem, F: FnMut(T) -> U>(&self, mut f: F) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Row-major element slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl Mat<Rational> {
    /// Exact inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::UnsupportedTransform`] when the matrix is
    /// singular and [`ConvError::RationalOverflow`] when exact arithmetic
    /// overflows.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn inverse(&self) -> Result<Mat<Rational>, ConvError> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Mat::<Rational>::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot_row = (col..n)
                .find(|&r| !a.get(r, col).is_zero())
                .ok_or_else(|| {
                    ConvError::UnsupportedTransform(
                        "singular evaluation matrix (duplicate interpolation points?)".into(),
                    )
                })?;
            if pivot_row != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot_row, c));
                    a.set(col, c, y);
                    a.set(pivot_row, c, x);
                    let (x, y) = (inv.get(col, c), inv.get(pivot_row, c));
                    inv.set(col, c, y);
                    inv.set(pivot_row, c, x);
                }
            }
            let pivot = a.get(col, col);
            let pivot_inv = pivot.recip();
            for c in 0..n {
                a.set(col, c, a.get(col, c).checked_mul(pivot_inv)?);
                inv.set(col, c, inv.get(col, c).checked_mul(pivot_inv)?);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                for c in 0..n {
                    let v = a
                        .get(r, c)
                        .checked_sub(factor.checked_mul(a.get(col, c))?)?;
                    a.set(r, c, v);
                    let v = inv
                        .get(r, c)
                        .checked_sub(factor.checked_mul(inv.get(col, c))?)?;
                    inv.set(r, c, v);
                }
            }
        }
        Ok(inv)
    }

    /// Converts to an `f64` matrix.
    pub fn to_f64(&self) -> Mat<f64> {
        self.map(|v| v.to_f64())
    }

    /// Converts to an `f32` matrix.
    pub fn to_f32(&self) -> Mat<f32> {
        self.map(|v| v.to_f32())
    }
}

impl<T: MatElem + fmt::Display> fmt::Display for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn identity_mul() {
        let a = Mat::from_rows(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul(&Mat::identity(2)), a);
        assert_eq!(Mat::identity(2).mul(&a), a);
    }

    #[test]
    fn mul_known_product() {
        let a = Mat::from_rows(vec![vec![1.0f64, 2.0, 3.0]]);
        let b = Mat::from_rows(vec![vec![1.0f64], vec![0.0], vec![-1.0]]);
        let c = a.mul(&b);
        assert_eq!(c.get(0, 0), -2.0);
        assert_eq!((c.rows(), c.cols()), (1, 1));
    }

    #[test]
    fn mul_into_matches_mul_and_overwrites() {
        let a = Mat::from_rows(vec![vec![1.0f64, 2.0, 0.0], vec![0.0, -1.0, 3.0]]);
        let b = Mat::from_rows(vec![vec![2.0f64], vec![0.5], vec![-1.0]]);
        let mut out = Mat::from_rows(vec![vec![99.0f64], vec![-99.0]]); // stale garbage
        a.mul_into(&b, &mut out);
        assert_eq!(out, a.mul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(vec![vec![1.0f64, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn hadamard_product() {
        let a = Mat::from_rows(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(vec![vec![2.0f64, 0.5], vec![1.0, 0.25]]);
        let h = a.hadamard(&b);
        assert_eq!(h.as_slice(), &[2.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn rational_inverse_roundtrip() {
        let a = Mat::from_rows(vec![
            vec![rat(1, 1), rat(2, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(1, 2)],
            vec![rat(1, 3), rat(0, 1), rat(1, 1)],
        ]);
        let inv = a.inverse().unwrap();
        assert_eq!(a.mul(&inv), Mat::identity(3));
        assert_eq!(inv.mul(&a), Mat::identity(3));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Mat::from_rows(vec![vec![rat(1, 1), rat(2, 1)], vec![rat(2, 1), rat(4, 1)]]);
        assert!(matches!(
            a.inverse(),
            Err(ConvError::UnsupportedTransform(_))
        ));
    }

    #[test]
    fn inverse_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = Mat::from_rows(vec![vec![rat(0, 1), rat(1, 1)], vec![rat(1, 1), rat(0, 1)]]);
        let inv = a.inverse().unwrap();
        assert_eq!(a.mul(&inv), Mat::identity(2));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Mat::from_rows(vec![vec![1.0f64, 2.0], vec![3.0]]);
    }

    #[test]
    fn map_changes_type() {
        let a = Mat::from_rows(vec![vec![rat(1, 2), rat(-1, 4)]]);
        let f = a.to_f64();
        assert_eq!(f.as_slice(), &[0.5, -0.25]);
    }
}
