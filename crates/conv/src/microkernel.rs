//! Explicitly vectorized GEMM microkernels behind the [`MicroKernel`]
//! trait, with the scalar 4×8 register tile as the bit-exactness oracle.
//!
//! Rust stable has no `std::simd`, so the vector path uses `std::arch`
//! x86-64 AVX2 intrinsics gated by `is_x86_feature_detected!` at runtime
//! (and compiled out entirely on other architectures). Bit-exactness
//! against the scalar oracle is by construction, not by tolerance:
//!
//! * **f32 tile** — the scalar kernel performs, per `k` step and output
//!   element, one multiply followed by one add (never an FMA), with `k`
//!   ascending. The AVX2 kernel maps the `NR = 8` output columns onto one
//!   256-bit lane register and issues `_mm256_mul_ps` + `_mm256_add_ps` in
//!   the same ascending-`k` order — IEEE-754 lane arithmetic is identical
//!   to the scalar sequence, so every output bit matches.
//! * **fix16 span** — products of raw Q8.8 values accumulate exactly in
//!   64-bit integers; integer addition is associative, so *any* lane
//!   arrangement is exact. The AVX2 span widens `i16 → i32` products into
//!   `i64` lanes.
//!
//! `tests/conv_equiv.rs` holds the oracle contract down with a proptest
//! matrix that runs every supported kernel explicitly against
//! [`ScalarKernel`].

use crate::fixed::Fix16;
use crate::gemm::{MR, NR};
use std::sync::OnceLock;

/// One register-tiled GEMM microkernel implementation.
///
/// Implementations must produce results bit-identical to [`ScalarKernel`]
/// (the oracle): per output element, the `k` dimension is reduced in
/// ascending order with separate multiply and add — no FMA contraction, no
/// reassociation.
pub trait MicroKernel {
    /// Short identifier (`"scalar"`, `"avx2"`) for reports and telemetry.
    fn name(&self) -> &'static str;

    /// Whether this kernel can run on the current host.
    fn supported(&self) -> bool;

    /// The `MR×NR` f32 register tile: `kb` rank-1 updates over one packed
    /// `A` panel (`a_pack[p·MR + i]`) and one packed `B` panel
    /// (`b_pack[p·NR + j]`).
    fn tile_f32(&self, ap: &[f32], bp: &[f32], kb: usize) -> [[f32; NR]; MR];

    /// Fixed-point multiply-accumulate span: `acc[j] += raw(data[j]) ·
    /// raw(coeff)` over `min(acc.len(), data.len())` lanes, exact in i64.
    fn mac_span_fix16(&self, acc: &mut [i64], data: &[Fix16], coeff: Fix16);
}

/// The reference 4×8 scalar kernel — the bit-exactness oracle every other
/// implementation is tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl MicroKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn supported(&self) -> bool {
        true
    }

    #[inline]
    fn tile_f32(&self, ap: &[f32], bp: &[f32], kb: usize) -> [[f32; NR]; MR] {
        let mut acc = [[0.0f32; NR]; MR];
        for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kb) {
            let av: &[f32; MR] = av.try_into().expect("packed A panel stride");
            let bv: &[f32; NR] = bv.try_into().expect("packed B panel stride");
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let a = av[i];
                for (j, slot) in acc_row.iter_mut().enumerate() {
                    *slot += a * bv[j];
                }
            }
        }
        acc
    }

    #[inline]
    fn mac_span_fix16(&self, acc: &mut [i64], data: &[Fix16], coeff: Fix16) {
        let c = coeff.to_raw() as i64;
        for (a, &d) in acc.iter_mut().zip(data) {
            *a += d.to_raw() as i64 * c;
        }
    }
}

/// AVX2 lane kernel: 8-wide f32 mul+add (no FMA) and widened integer
/// fix16 spans. Only compiled on x86-64; [`MicroKernel::supported`] gates
/// on runtime CPUID detection.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl MicroKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn supported(&self) -> bool {
        is_x86_feature_detected!("avx2")
    }

    #[inline]
    fn tile_f32(&self, ap: &[f32], bp: &[f32], kb: usize) -> [[f32; NR]; MR] {
        assert!(ap.len() >= kb * MR && bp.len() >= kb * NR, "short panels");
        debug_assert!(self.supported(), "AVX2 kernel selected without CPUID");
        // SAFETY: panel lengths checked above; the caller (kernel
        // selection) only picks this kernel when `supported()` is true.
        unsafe { tile_f32_avx2(ap, bp, kb) }
    }

    #[inline]
    fn mac_span_fix16(&self, acc: &mut [i64], data: &[Fix16], coeff: Fix16) {
        debug_assert!(self.supported(), "AVX2 kernel selected without CPUID");
        // SAFETY: lane loop below stays within both slices; AVX2 presence
        // is guaranteed by kernel selection.
        unsafe { mac_span_fix16_avx2(acc, data, coeff) }
    }
}

/// The 4×8 tile with the B panel held in one 256-bit register.
///
/// Per `k` step the scalar oracle computes `acc[i][j] += a[i] * b[j]` for
/// ascending `k`; `_mm256_mul_ps` + `_mm256_add_ps` perform exactly the
/// same IEEE-754 operations per lane, so the result is bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_f32_avx2(ap: &[f32], bp: &[f32], kb: usize) -> [[f32; NR]; MR] {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_ps(); MR];
    for p in 0..kb {
        // SAFETY: p < kb, and the safe wrapper checked ap/bp hold kb panels.
        unsafe {
            let bv = _mm256_loadu_ps(bp.as_ptr().add(p * NR));
            for (i, lane) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.get_unchecked(p * MR + i));
                *lane = _mm256_add_ps(*lane, _mm256_mul_ps(av, bv));
            }
        }
    }
    let mut out = [[0.0f32; NR]; MR];
    for (row, lane) in out.iter_mut().zip(acc.iter()) {
        // SAFETY: row is NR = 8 f32s, exactly one 256-bit store.
        unsafe { _mm256_storeu_ps(row.as_mut_ptr(), *lane) };
    }
    out
}

/// 8-lane fix16 MAC span: `i16·i16` products are exact in `i32`
/// (`|p| ≤ 2³⁰`), widened to `i64` lanes before accumulation — identical
/// to the scalar oracle because integer arithmetic never rounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mac_span_fix16_avx2(acc: &mut [i64], data: &[Fix16], coeff: Fix16) {
    use std::arch::x86_64::*;
    let n = acc.len().min(data.len());
    let c32 = coeff.to_raw() as i32;
    let cv = _mm256_set1_epi32(c32);
    let mut idx = 0usize;
    let mut raw = [0i16; 8];
    while idx + 8 <= n {
        for (slot, d) in raw.iter_mut().zip(&data[idx..idx + 8]) {
            *slot = d.to_raw();
        }
        // SAFETY: idx + 8 <= n bounds every pointer below; loads/stores are
        // unaligned-tolerant (`loadu`/`storeu`).
        unsafe {
            let d16 = _mm_loadu_si128(raw.as_ptr() as *const __m128i);
            let d32 = _mm256_cvtepi16_epi32(d16);
            let prod = _mm256_mullo_epi32(d32, cv);
            let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
            let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1));
            let p0 = acc.as_mut_ptr().add(idx) as *mut __m256i;
            let p1 = acc.as_mut_ptr().add(idx + 4) as *mut __m256i;
            _mm256_storeu_si256(p0, _mm256_add_epi64(_mm256_loadu_si256(p0 as *const _), lo));
            _mm256_storeu_si256(p1, _mm256_add_epi64(_mm256_loadu_si256(p1 as *const _), hi));
        }
        idx += 8;
    }
    let c = c32 as i64;
    for (a, d) in acc[idx..n].iter_mut().zip(&data[idx..n]) {
        *a += d.to_raw() as i64 * c;
    }
}

/// Which microkernel a GEMM call dispatches to. Carried by
/// [`crate::gemm::GemmScratch`] so every fast path resolves it once per
/// worker, and constructible explicitly so tests can pin a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// The scalar 4×8 oracle (always available).
    Scalar,
    /// Runtime-detected AVX2 lanes (x86-64 only).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Default for KernelChoice {
    fn default() -> Self {
        KernelChoice::auto()
    }
}

impl KernelChoice {
    /// The best kernel the host supports, detected once per process.
    pub fn auto() -> KernelChoice {
        static AUTO: OnceLock<KernelChoice> = OnceLock::new();
        *AUTO.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            if Avx2Kernel.supported() {
                return KernelChoice::Avx2;
            }
            KernelChoice::Scalar
        })
    }

    /// Every kernel the current host can actually execute (always contains
    /// [`KernelChoice::Scalar`]) — the test matrix iterates this.
    pub fn all_supported() -> Vec<KernelChoice> {
        let mut all = vec![KernelChoice::Scalar];
        #[cfg(target_arch = "x86_64")]
        if Avx2Kernel.supported() {
            all.push(KernelChoice::Avx2);
        }
        all
    }

    /// The chosen kernel's identifier.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Scalar => ScalarKernel.name(),
            #[cfg(target_arch = "x86_64")]
            KernelChoice::Avx2 => Avx2Kernel.name(),
        }
    }

    /// Dispatches [`MicroKernel::tile_f32`].
    #[inline]
    pub fn tile_f32(self, ap: &[f32], bp: &[f32], kb: usize) -> [[f32; NR]; MR] {
        match self {
            KernelChoice::Scalar => ScalarKernel.tile_f32(ap, bp, kb),
            #[cfg(target_arch = "x86_64")]
            KernelChoice::Avx2 => Avx2Kernel.tile_f32(ap, bp, kb),
        }
    }

    /// Dispatches [`MicroKernel::mac_span_fix16`].
    #[inline]
    pub fn mac_span_fix16(self, acc: &mut [i64], data: &[Fix16], coeff: Fix16) {
        match self {
            KernelChoice::Scalar => ScalarKernel.mac_span_fix16(acc, data, coeff),
            #[cfg(target_arch = "x86_64")]
            KernelChoice::Avx2 => Avx2Kernel.mac_span_fix16(acc, data, coeff),
        }
    }
}

/// Identifier of the kernel auto-selection resolves to on this host —
/// recorded in `BENCH_*.json` host blocks so perf trajectories are
/// attributable to the vector ISA in use.
pub fn active_kernel_name() -> &'static str {
    KernelChoice::auto().name()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(len: usize, seed: u64) -> Vec<f32> {
        crate::tensor::random_tensor(1, 1, 1, len.max(1), seed).as_slice()[..len].to_vec()
    }

    #[test]
    fn scalar_is_always_supported_and_listed_first() {
        let all = KernelChoice::all_supported();
        assert_eq!(all[0], KernelChoice::Scalar);
        assert!(ScalarKernel.supported());
    }

    #[test]
    fn every_supported_kernel_matches_scalar_tile_bitwise() {
        for kb in [0usize, 1, 3, 8, 37, 256] {
            let ap = seeded(kb.max(1) * MR, 11 + kb as u64);
            let bp = seeded(kb.max(1) * NR, 23 + kb as u64);
            let oracle = ScalarKernel.tile_f32(&ap, &bp, kb);
            for k in KernelChoice::all_supported() {
                let got = k.tile_f32(&ap, &bp, kb);
                assert_eq!(got, oracle, "kernel {} kb {kb}", k.name());
            }
        }
    }

    #[test]
    fn every_supported_kernel_matches_scalar_fix16_span() {
        for len in [0usize, 1, 7, 8, 9, 64, 100] {
            let data: Vec<Fix16> = seeded(len, 31 + len as u64)
                .into_iter()
                .map(Fix16::from_f32)
                .collect();
            let coeff = Fix16::from_f32(-0.73);
            let mut oracle = vec![5i64; len];
            ScalarKernel.mac_span_fix16(&mut oracle, &data, coeff);
            for k in KernelChoice::all_supported() {
                let mut acc = vec![5i64; len];
                k.mac_span_fix16(&mut acc, &data, coeff);
                assert_eq!(acc, oracle, "kernel {} len {len}", k.name());
            }
        }
    }

    #[test]
    fn auto_choice_is_stable_and_named() {
        assert_eq!(KernelChoice::auto(), KernelChoice::auto());
        assert_eq!(active_kernel_name(), KernelChoice::auto().name());
        assert!(KernelChoice::all_supported()
            .iter()
            .any(|k| *k == KernelChoice::auto()));
    }
}
