//! Cache-blocked, register-tiled f32 GEMM — the engine behind the fast
//! convolution paths.
//!
//! Both batched Winograd ([`crate::winograd::conv2d_batched`]) and im2col
//! direct convolution ([`crate::direct::conv2d_fast`]) reduce to dense
//! `C = A·B` products. This module implements the classic three-level
//! blocking (Goto/BLIS): `NC`-wide column panels of `B` and `KC`-deep
//! blocks are packed into contiguous buffers sized for the L3/L2 caches,
//! `MC`-tall row blocks of `A` are packed for the L1, and an `MR×NR`
//! register-tiled microkernel runs over the packed panels with a
//! fixed-size accumulator array the compiler can keep in vector registers.
//!
//! Determinism: for every output element the `k`-dimension is accumulated
//! in one fixed serial order (`KC` blocks ascending, elements ascending
//! inside a block) regardless of blocking parameters' interaction with
//! threads — callers parallelize by splitting rows of `A`/`C` or issuing
//! independent GEMMs, never by splitting `k`.

use crate::microkernel::KernelChoice;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Rows of the microkernel register tile.
pub const MR: usize = 4;
/// Columns of the microkernel register tile.
pub const NR: usize = 8;

/// Cache-blocking parameters, in elements.
///
/// Defaults target a generic contemporary x86-64/ARM core: `KC·NR` floats
/// of packed `B` streamed from L2, `MC·KC` floats of packed `A` resident
/// in L1/L2, `NC` bounding the packed-`B` panel to a few hundred KiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Row-block height of `A` (L2-resident packed panel).
    pub mc: usize,
    /// Depth of the packed `k` block.
    pub kc: usize,
    /// Column-panel width of `B`.
    pub nc: usize,
}

impl Default for GemmBlocking {
    fn default() -> Self {
        GemmBlocking {
            mc: 64,
            kc: 256,
            nc: 2048,
        }
    }
}

/// A read-only GEMM `B` operand with arbitrary element strides, so both a
/// row-major patch matrix and the channel-strided Winograd scatter buffer
/// can feed the same packing routine. Element `(r, c)` lives at
/// `data[r·row_stride + c·col_stride]`.
#[derive(Debug, Clone, Copy)]
pub struct BOperand<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> BOperand<'a> {
    /// A strided view. Bounds are checked lazily at element access.
    pub fn strided(data: &'a [f32], row_stride: usize, col_stride: usize) -> Self {
        BOperand {
            data,
            row_stride,
            col_stride,
        }
    }

    /// A dense row-major `k × n` view.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        BOperand {
            data,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// Element `(r, c)` of the operand (bounds-checked on the underlying
    /// slice). Public for the sparse CSR kernel, which reads `B` by
    /// column index instead of packing panels.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.row_stride + c * self.col_stride]
    }
}

/// Reusable packing buffers. Keep one per worker thread and feed it to
/// every [`gemm_f32`] call that worker issues — the buffers grow to the
/// largest panel seen and are never shrunk, so steady-state GEMMs allocate
/// nothing.
#[derive(Debug, Default)]
pub struct GemmScratch {
    a_pack: Vec<f32>,
    b_pack: Vec<f32>,
    kernel: KernelChoice,
}

impl GemmScratch {
    /// An empty scratch (buffers grow on first use) dispatching to the
    /// auto-detected microkernel.
    pub fn new() -> Self {
        GemmScratch::default()
    }

    /// An empty scratch pinned to an explicit microkernel — the handle the
    /// oracle test matrix uses to run every kernel over the same inputs.
    pub fn with_kernel(kernel: KernelChoice) -> Self {
        GemmScratch {
            kernel,
            ..GemmScratch::default()
        }
    }

    /// The microkernel this scratch dispatches to.
    pub fn kernel(&self) -> KernelChoice {
        self.kernel
    }
}

/// Kernel phase a convolution fast path attributes work to.
///
/// Both algorithms map onto the same three-phase shape: a data-layout
/// phase (`Scatter` — Winograd input transforms, or the direct path's
/// im2col lowering), the GEMM phase, and an output phase (`Gather` —
/// Winograd output transforms; absent for direct convolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvPhase {
    Scatter,
    Gemm,
    Gather,
}

/// Shared counters for the convolution fast paths, designed to be updated
/// from worker threads (relaxed atomic adds commute, so totals are
/// deterministic for a fixed job set regardless of scheduling).
///
/// Two kinds of quantities live here, and their contracts differ:
///
/// * **Work accounting** (flops, algorithm-level bytes, call/tile counts)
///   is exact and analytic — for a fixed input it is bit-identical at any
///   thread count (see `tests/determinism.rs`).
/// * **Wall-clock accounting** (per-phase ns, pack-vs-microkernel split)
///   measures real time and is *not* deterministic; it is only populated
///   on profiled runs and must never be compared across runs bit-wise.
#[derive(Debug, Default)]
pub struct ConvStats {
    gemm_calls: AtomicU64,
    tiles: AtomicU64,
    bytes_packed: AtomicU64,
    flops_scatter: AtomicU64,
    flops_gemm: AtomicU64,
    flops_gather: AtomicU64,
    bytes_scatter: AtomicU64,
    bytes_gemm: AtomicU64,
    bytes_gather: AtomicU64,
    scatter_ns: AtomicU64,
    gemm_ns: AtomicU64,
    gather_ns: AtomicU64,
    pack_ns: AtomicU64,
    kernel_ns: AtomicU64,
}

impl ConvStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ConvStats::default()
    }

    /// Records `calls` microkernel-level GEMM invocations that packed
    /// `bytes` bytes of panels.
    pub fn add_gemm(&self, calls: u64, bytes: u64) {
        self.gemm_calls.fetch_add(calls, Ordering::Relaxed);
        self.bytes_packed.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` Winograd input tiles transformed.
    pub fn add_tiles(&self, n: u64) {
        self.tiles.fetch_add(n, Ordering::Relaxed);
    }

    /// Records exact analytic work for a phase: `flops` arithmetic
    /// operations and `bytes` of algorithm-level traffic (operands read
    /// plus results written; cache-oblivious by construction).
    pub fn add_phase(&self, phase: ConvPhase, flops: u64, bytes: u64) {
        let (f, b) = match phase {
            ConvPhase::Scatter => (&self.flops_scatter, &self.bytes_scatter),
            ConvPhase::Gemm => (&self.flops_gemm, &self.bytes_gemm),
            ConvPhase::Gather => (&self.flops_gather, &self.bytes_gather),
        };
        f.fetch_add(flops, Ordering::Relaxed);
        b.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records wall-clock time spent in a phase (main-thread wall time
    /// around the parallel region, not summed worker time).
    pub fn add_phase_ns(&self, phase: ConvPhase, ns: u64) {
        match phase {
            ConvPhase::Scatter => &self.scatter_ns,
            ConvPhase::Gemm => &self.gemm_ns,
            ConvPhase::Gather => &self.gather_ns,
        }
        .fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a GEMM call's internal split between panel packing and the
    /// register-tiled microkernel (summed across workers).
    pub fn add_gemm_split(&self, pack_ns: u64, kernel_ns: u64) {
        self.pack_ns.fetch_add(pack_ns, Ordering::Relaxed);
        self.kernel_ns.fetch_add(kernel_ns, Ordering::Relaxed);
    }

    /// Snapshot as `(gemm_calls, tiles, bytes_packed)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.gemm_calls.load(Ordering::Relaxed),
            self.tiles.load(Ordering::Relaxed),
            self.bytes_packed.load(Ordering::Relaxed),
        )
    }

    /// Full snapshot of every counter.
    pub fn profile(&self) -> ConvProfile {
        ConvProfile {
            gemm_calls: self.gemm_calls.load(Ordering::Relaxed),
            tiles: self.tiles.load(Ordering::Relaxed),
            bytes_packed: self.bytes_packed.load(Ordering::Relaxed),
            flops_scatter: self.flops_scatter.load(Ordering::Relaxed),
            flops_gemm: self.flops_gemm.load(Ordering::Relaxed),
            flops_gather: self.flops_gather.load(Ordering::Relaxed),
            bytes_scatter: self.bytes_scatter.load(Ordering::Relaxed),
            bytes_gemm: self.bytes_gemm.load(Ordering::Relaxed),
            bytes_gather: self.bytes_gather.load(Ordering::Relaxed),
            scatter_ns: self.scatter_ns.load(Ordering::Relaxed),
            gemm_ns: self.gemm_ns.load(Ordering::Relaxed),
            gather_ns: self.gather_ns.load(Ordering::Relaxed),
            pack_ns: self.pack_ns.load(Ordering::Relaxed),
            kernel_ns: self.kernel_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of a [`ConvStats`] — per-phase flops, bytes, and
/// wall times for one convolution (or one layer, when the executor keeps
/// one `ConvStats` per layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvProfile {
    pub gemm_calls: u64,
    pub tiles: u64,
    pub bytes_packed: u64,
    pub flops_scatter: u64,
    pub flops_gemm: u64,
    pub flops_gather: u64,
    pub bytes_scatter: u64,
    pub bytes_gemm: u64,
    pub bytes_gather: u64,
    pub scatter_ns: u64,
    pub gemm_ns: u64,
    pub gather_ns: u64,
    pub pack_ns: u64,
    pub kernel_ns: u64,
}

impl ConvProfile {
    /// Exact arithmetic operations across all phases.
    pub fn total_flops(&self) -> u64 {
        self.flops_scatter + self.flops_gemm + self.flops_gather
    }

    /// Algorithm-level bytes moved across all phases.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_scatter + self.bytes_gemm + self.bytes_gather
    }

    /// Flops per byte of algorithm-level traffic — the CPU-side analogue
    /// of the paper's computation-to-communication ratio.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            0.0
        } else {
            self.total_flops() as f64 / bytes as f64
        }
    }

    /// Wall time summed over the per-phase measurements.
    pub fn total_phase_ns(&self) -> u64 {
        self.scatter_ns + self.gemm_ns + self.gather_ns
    }
}

/// What one [`gemm_f32_profiled`] call did: bytes of packed panels, exact
/// flops (`2·m·k·n`), and — only when timing was requested — the wall time
/// split between packing and the microkernel sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmOutcome {
    pub bytes_packed: u64,
    pub flops: u64,
    pub pack_ns: u64,
    pub kernel_ns: u64,
}

/// `C = A·B` for row-major `A` (`m × k`), strided `B` (`k × n`) and
/// row-major `C` (`m × n`, fully overwritten). Returns the bytes of panel
/// data packed (the `conv.bytes_packed` telemetry unit).
///
/// `C` may be a row-block window of a larger matrix as long as its row
/// stride equals `n` — callers parallelize over row blocks by slicing `A`
/// and `C` consistently.
///
/// # Panics
///
/// Panics when slice lengths disagree with `m`, `k`, `n` or a blocking
/// parameter is zero.
#[allow(clippy::too_many_arguments)] // the seven dims/operands of a GEMM
pub fn gemm_f32(
    scratch: &mut GemmScratch,
    blocking: GemmBlocking,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: BOperand<'_>,
    c: &mut [f32],
) -> u64 {
    gemm_f32_profiled(scratch, blocking, m, k, n, a, b, c, false).bytes_packed
}

/// [`gemm_f32`] with a full [`GemmOutcome`]. When `timed` is set, the wall
/// time of every pack and macro-kernel sweep is accumulated into the
/// outcome's `pack_ns`/`kernel_ns` split; when clear the timing fields
/// stay zero and no clock is read.
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_profiled(
    scratch: &mut GemmScratch,
    blocking: GemmBlocking,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: BOperand<'_>,
    c: &mut [f32],
    timed: bool,
) -> GemmOutcome {
    assert_eq!(a.len(), m * k, "A must be m×k row-major");
    assert_eq!(c.len(), m * n, "C must be m×n row-major");
    assert!(
        blocking.mc > 0 && blocking.kc > 0 && blocking.nc > 0,
        "blocking parameters must be positive"
    );
    if m == 0 || n == 0 {
        return GemmOutcome::default();
    }
    if k == 0 {
        c.fill(0.0);
        return GemmOutcome::default();
    }
    // Touch the far corner of B up front so a stride mistake fails loudly
    // rather than mid-panel.
    let _ = b.at(k - 1, n - 1);

    let GemmBlocking { mc, kc, nc } = blocking;
    let mut out = GemmOutcome {
        flops: 2 * (m as u64) * (k as u64) * (n as u64),
        ..GemmOutcome::default()
    };
    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kb = kc.min(k - pc);
            let t0 = timed.then(Instant::now);
            pack_b(&mut scratch.b_pack, b, pc, kb, jc, nb);
            if let Some(t0) = t0 {
                out.pack_ns += t0.elapsed().as_nanos() as u64;
            }
            out.bytes_packed += (nb.div_ceil(NR) * NR * kb * 4) as u64;
            let first_k_block = pc == 0;
            for ic in (0..m).step_by(mc) {
                let mb = mc.min(m - ic);
                let t0 = timed.then(Instant::now);
                pack_a(&mut scratch.a_pack, a, k, ic, mb, pc, kb);
                if let Some(t0) = t0 {
                    out.pack_ns += t0.elapsed().as_nanos() as u64;
                }
                out.bytes_packed += (mb.div_ceil(MR) * MR * kb * 4) as u64;
                let t0 = timed.then(Instant::now);
                macro_kernel(
                    scratch.kernel,
                    &scratch.a_pack,
                    &scratch.b_pack,
                    mb,
                    kb,
                    nb,
                    c,
                    ic,
                    jc,
                    n,
                    first_k_block,
                );
                if let Some(t0) = t0 {
                    out.kernel_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
    }
    out
}

/// Packs `B[pc..pc+kb, jc..jc+nb]` into `NR`-wide column panels:
/// `b_pack[panel][p·NR + j]`, zero-padded to a full `NR` on the ragged
/// last panel.
fn pack_b(b_pack: &mut Vec<f32>, b: BOperand<'_>, pc: usize, kb: usize, jc: usize, nb: usize) {
    let panels = nb.div_ceil(NR);
    b_pack.clear();
    b_pack.resize(panels * kb * NR, 0.0);
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(nb - j0);
        let dst = &mut b_pack[panel * kb * NR..(panel + 1) * kb * NR];
        for p in 0..kb {
            let row = &mut dst[p * NR..p * NR + NR];
            for (j, slot) in row.iter_mut().enumerate().take(width) {
                *slot = b.at(pc + p, jc + j0 + j);
            }
            for slot in row.iter_mut().skip(width) {
                *slot = 0.0;
            }
        }
    }
}

/// Packs `A[ic..ic+mb, pc..pc+kb]` into `MR`-tall row panels:
/// `a_pack[panel][p·MR + i]`, zero-padded to a full `MR` on the ragged
/// last panel.
fn pack_a(a_pack: &mut Vec<f32>, a: &[f32], k: usize, ic: usize, mb: usize, pc: usize, kb: usize) {
    let panels = mb.div_ceil(MR);
    a_pack.clear();
    a_pack.resize(panels * kb * MR, 0.0);
    pack_a_into(a_pack, a, k, ic, mb, pc, kb);
}

/// [`pack_a`] into a pre-zeroed destination of exactly
/// `⌈mb/MR⌉·MR·kb` elements — shared by the on-the-fly path and
/// [`PackedA::pack`] so both produce bit-identical panels.
fn pack_a_into(dst: &mut [f32], a: &[f32], k: usize, ic: usize, mb: usize, pc: usize, kb: usize) {
    let panels = mb.div_ceil(MR);
    for panel in 0..panels {
        let i0 = panel * MR;
        let height = MR.min(mb - i0);
        let dst = &mut dst[panel * kb * MR..(panel + 1) * kb * MR];
        for i in 0..height {
            let src = &a[(ic + i0 + i) * k + pc..(ic + i0 + i) * k + pc + kb];
            for (p, &v) in src.iter().enumerate() {
                dst[p * MR + i] = v;
            }
        }
    }
}

/// Runs the register-tiled microkernel over every `MR×NR` tile of the
/// packed block and writes (or accumulates) into `C` with edge clipping.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    kernel: KernelChoice,
    a_pack: &[f32],
    b_pack: &[f32],
    mb: usize,
    kb: usize,
    nb: usize,
    c: &mut [f32],
    ic: usize,
    jc: usize,
    n: usize,
    first_k_block: bool,
) {
    let m_panels = mb.div_ceil(MR);
    let n_panels = nb.div_ceil(NR);
    for jp in 0..n_panels {
        let bp = &b_pack[jp * kb * NR..(jp + 1) * kb * NR];
        let j0 = jc + jp * NR;
        let width = NR.min(nb - jp * NR);
        for ip in 0..m_panels {
            let ap = &a_pack[ip * kb * MR..(ip + 1) * kb * MR];
            let acc = kernel.tile_f32(ap, bp, kb);
            let i0 = ic + ip * MR;
            let height = MR.min(mb - ip * MR);
            for (i, acc_row) in acc.iter().enumerate().take(height) {
                let row = &mut c[(i0 + i) * n + j0..(i0 + i) * n + j0 + width];
                if first_k_block {
                    row.copy_from_slice(&acc_row[..width]);
                } else {
                    for (dst, &v) in row.iter_mut().zip(acc_row.iter()) {
                        *dst += v;
                    }
                }
            }
        }
    }
}

/// A row-major `m × k` GEMM `A` operand packed once into the exact
/// `(pc, ic)`-blocked panel layout the macro kernel consumes, so repeated
/// GEMMs against the same `A` (every strip of a fused run, every transform
/// point of a Winograd layer) skip the per-call `pack_a` entirely.
///
/// The pack is bit-for-bit the layout [`gemm_f32_profiled`] would build on
/// the fly with the same [`GemmBlocking`], so results are bit-identical.
#[derive(Debug, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    blocking: GemmBlocking,
    /// Concatenated per-`(pc, ic)` panel blocks, `pc`-major.
    data: Vec<f32>,
    /// Start of each `(pc, ic)` block in `data`, indexed
    /// `pc_idx · n_ic_blocks + ic_idx`.
    offsets: Vec<usize>,
    n_ic_blocks: usize,
}

impl PackedA {
    /// Packs row-major `a` (`m × k`) for reuse under `blocking`. Exactly
    /// two allocations regardless of shape (the panel buffer and the
    /// offset table) — the property the counting-allocator test pins so
    /// bank preparation stays a plan-lowering-time cost.
    ///
    /// # Panics
    ///
    /// Panics when `a.len() != m·k` or a blocking parameter is zero.
    pub fn pack(a: &[f32], m: usize, k: usize, blocking: GemmBlocking) -> Self {
        assert_eq!(a.len(), m * k, "A must be m×k row-major");
        assert!(
            blocking.mc > 0 && blocking.kc > 0 && blocking.nc > 0,
            "blocking parameters must be positive"
        );
        let n_ic_blocks = if m == 0 { 0 } else { m.div_ceil(blocking.mc) };
        let mut total = 0usize;
        let mut offsets = Vec::with_capacity(k.div_ceil(blocking.kc) * n_ic_blocks);
        for pc in (0..k).step_by(blocking.kc) {
            let kb = blocking.kc.min(k - pc);
            for ic in (0..m).step_by(blocking.mc) {
                let mb = blocking.mc.min(m - ic);
                offsets.push(total);
                total += mb.div_ceil(MR) * MR * kb;
            }
        }
        let mut data = vec![0.0f32; total];
        let mut idx = 0usize;
        for pc in (0..k).step_by(blocking.kc) {
            let kb = blocking.kc.min(k - pc);
            for ic in (0..m).step_by(blocking.mc) {
                let mb = blocking.mc.min(m - ic);
                let len = mb.div_ceil(MR) * MR * kb;
                pack_a_into(
                    &mut data[offsets[idx]..offsets[idx] + len],
                    a,
                    k,
                    ic,
                    mb,
                    pc,
                    kb,
                );
                idx += 1;
            }
        }
        PackedA {
            m,
            k,
            blocking,
            data,
            offsets,
            n_ic_blocks,
        }
    }

    /// Rows of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Depth of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The blocking the panels were packed for.
    pub fn blocking(&self) -> GemmBlocking {
        self.blocking
    }

    /// Bytes held by the packed panels (the one-time pack cost).
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// The packed panel block for cache block `(pc_idx, ic_idx)`.
    fn block(&self, pc_idx: usize, ic_idx: usize) -> &[f32] {
        let idx = pc_idx * self.n_ic_blocks + ic_idx;
        let start = self.offsets[idx];
        let end = self
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or(self.data.len());
        &self.data[start..end]
    }
}

/// [`gemm_f32_profiled`] against a pre-packed `A`: identical loop
/// structure, blocking, and accumulation order — only the per-call
/// `pack_a` is gone, so `bytes_packed` counts the `B` panels alone.
pub fn gemm_f32_prepacked(
    scratch: &mut GemmScratch,
    packed_a: &PackedA,
    n: usize,
    b: BOperand<'_>,
    c: &mut [f32],
    timed: bool,
) -> GemmOutcome {
    let (m, k) = (packed_a.m, packed_a.k);
    assert_eq!(c.len(), m * n, "C must be m×n row-major");
    if m == 0 || n == 0 {
        return GemmOutcome::default();
    }
    if k == 0 {
        c.fill(0.0);
        return GemmOutcome::default();
    }
    let _ = b.at(k - 1, n - 1);

    let GemmBlocking { mc, kc, nc } = packed_a.blocking;
    let mut out = GemmOutcome {
        flops: 2 * (m as u64) * (k as u64) * (n as u64),
        ..GemmOutcome::default()
    };
    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for (pc_idx, pc) in (0..k).step_by(kc).enumerate() {
            let kb = kc.min(k - pc);
            let t0 = timed.then(Instant::now);
            pack_b(&mut scratch.b_pack, b, pc, kb, jc, nb);
            if let Some(t0) = t0 {
                out.pack_ns += t0.elapsed().as_nanos() as u64;
            }
            out.bytes_packed += (nb.div_ceil(NR) * NR * kb * 4) as u64;
            let first_k_block = pc == 0;
            for (ic_idx, ic) in (0..m).step_by(mc).enumerate() {
                let mb = mc.min(m - ic);
                let t0 = timed.then(Instant::now);
                macro_kernel(
                    scratch.kernel,
                    packed_a.block(pc_idx, ic_idx),
                    &scratch.b_pack,
                    mb,
                    kb,
                    nb,
                    c,
                    ic,
                    jc,
                    n,
                    first_k_block,
                );
                if let Some(t0) = t0 {
                    out.kernel_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: same fixed k-order as the blocked kernel only when
    /// k fits one KC block — the equivalence tolerance below covers the
    /// general reassociation.
    fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn seeded(len: usize, seed: u64) -> Vec<f32> {
        let t = crate::tensor::random_tensor(1, 1, 1, len.max(1), seed);
        t.as_slice()[..len].to_vec()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn matches_reference_across_shapes() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (17, 31, 23),
            (64, 70, 40),
            (5, 300, 9), // k spans multiple KC blocks at tiny kc below
        ] {
            let a = seeded(m * k, (m * 1000 + k) as u64);
            let b = seeded(k * n, (k * 1000 + n) as u64);
            let mut c = vec![f32::NAN; m * n];
            gemm_f32(
                &mut scratch,
                GemmBlocking::default(),
                m,
                k,
                n,
                &a,
                BOperand::row_major(&b, n),
                &mut c,
            );
            let r = gemm_ref(m, k, n, &a, &b);
            assert!(
                max_diff(&c, &r) < 1e-4,
                "{m}x{k}x{n} diff {}",
                max_diff(&c, &r)
            );
        }
    }

    #[test]
    fn blocking_parameters_do_not_change_results_beyond_rounding() {
        let (m, k, n) = (33, 65, 29);
        let a = seeded(m * k, 1);
        let b = seeded(k * n, 2);
        let mut scratch = GemmScratch::new();
        let mut reference = vec![0.0f32; m * n];
        gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut reference,
        );
        for blocking in [
            GemmBlocking {
                mc: 8,
                kc: 16,
                nc: 8,
            },
            GemmBlocking {
                mc: 1,
                kc: 1,
                nc: 1,
            },
            GemmBlocking {
                mc: 1024,
                kc: 1024,
                nc: 1024,
            },
        ] {
            let mut c = vec![0.0f32; m * n];
            gemm_f32(
                &mut scratch,
                blocking,
                m,
                k,
                n,
                &a,
                BOperand::row_major(&b, n),
                &mut c,
            );
            assert!(max_diff(&c, &reference) < 1e-4, "blocking {blocking:?}");
        }
    }

    #[test]
    fn identical_calls_are_bit_identical() {
        // Scratch reuse must not leak state between calls.
        let (m, k, n) = (20, 48, 12);
        let a = seeded(m * k, 7);
        let b = seeded(k * n, 8);
        let mut s1 = GemmScratch::new();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![1.0f32; m * n]; // different initial garbage
        gemm_f32(
            &mut s1,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c1,
        );
        // Warm scratch + dirty output: C is fully overwritten.
        gemm_f32(
            &mut s1,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c2,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn strided_b_matches_dense() {
        // B stored column-major: row stride 1, column stride k.
        let (m, k, n) = (6, 10, 14);
        let a = seeded(m * k, 3);
        let b_dense = seeded(k * n, 4);
        let mut b_colmajor = vec![0.0f32; k * n];
        for r in 0..k {
            for c in 0..n {
                b_colmajor[c * k + r] = b_dense[r * n + c];
            }
        }
        let mut scratch = GemmScratch::new();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b_dense, n),
            &mut c1,
        );
        gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::strided(&b_colmajor, 1, k),
            &mut c2,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn zero_k_writes_zeros() {
        let mut scratch = GemmScratch::new();
        let mut c = vec![f32::NAN; 6];
        let bytes = gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            2,
            0,
            3,
            &[],
            BOperand::row_major(&[], 3),
            &mut c,
        );
        assert_eq!(bytes, 0);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reports_packed_bytes() {
        let mut scratch = GemmScratch::new();
        let (m, k, n) = (MR, 5, NR);
        let a = seeded(m * k, 5);
        let b = seeded(k * n, 6);
        let mut c = vec![0.0f32; m * n];
        let bytes = gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c,
        );
        // One full A panel + one full B panel, each k deep.
        assert_eq!(bytes, ((MR * k + NR * k) * 4) as u64);
    }

    #[test]
    fn prepacked_a_matches_on_the_fly_bitwise() {
        // Same blocking ⇒ same panels ⇒ same accumulation order ⇒ same bits,
        // across ragged shapes and every supported microkernel.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (17, 31, 23), (64, 300, 40)] {
            let a = seeded(m * k, (m + k) as u64);
            let b = seeded(k * n, (k + n) as u64);
            for blocking in [
                GemmBlocking::default(),
                GemmBlocking {
                    mc: 8,
                    kc: 16,
                    nc: 8,
                },
            ] {
                let packed = PackedA::pack(&a, m, k, blocking);
                assert!(packed.bytes() > 0);
                for kernel in crate::microkernel::KernelChoice::all_supported() {
                    let mut s1 = GemmScratch::with_kernel(kernel);
                    let mut c1 = vec![f32::NAN; m * n];
                    let fly = gemm_f32_profiled(
                        &mut s1,
                        blocking,
                        m,
                        k,
                        n,
                        &a,
                        BOperand::row_major(&b, n),
                        &mut c1,
                        false,
                    );
                    let mut c2 = vec![f32::NAN; m * n];
                    let pre = gemm_f32_prepacked(
                        &mut s1,
                        &packed,
                        n,
                        BOperand::row_major(&b, n),
                        &mut c2,
                        false,
                    );
                    assert_eq!(c1, c2, "{m}x{k}x{n} {blocking:?} {}", kernel.name());
                    assert_eq!(pre.flops, fly.flops);
                    // The prepacked call packs only B panels.
                    assert!(pre.bytes_packed < fly.bytes_packed);
                }
            }
        }
    }

    #[test]
    fn explicit_kernels_match_auto_bitwise() {
        let (m, k, n) = (21, 300, 19); // spans multiple KC blocks
        let a = seeded(m * k, 71);
        let b = seeded(k * n, 72);
        let mut auto = GemmScratch::new();
        let mut c_auto = vec![0.0f32; m * n];
        gemm_f32(
            &mut auto,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c_auto,
        );
        for kernel in crate::microkernel::KernelChoice::all_supported() {
            let mut s = GemmScratch::with_kernel(kernel);
            assert_eq!(s.kernel(), kernel);
            let mut c = vec![0.0f32; m * n];
            gemm_f32(
                &mut s,
                GemmBlocking::default(),
                m,
                k,
                n,
                &a,
                BOperand::row_major(&b, n),
                &mut c,
            );
            assert_eq!(c, c_auto, "kernel {}", kernel.name());
        }
    }

    #[test]
    fn conv_stats_accumulate() {
        let s = ConvStats::new();
        s.add_gemm(2, 100);
        s.add_tiles(7);
        s.add_gemm(1, 20);
        assert_eq!(s.snapshot(), (3, 7, 120));
    }

    #[test]
    fn profiled_gemm_reports_flops_and_split() {
        let mut scratch = GemmScratch::new();
        let (m, k, n) = (13, 17, 19);
        let a = seeded(m * k, 9);
        let b = seeded(k * n, 10);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        let untimed = gemm_f32_profiled(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c1,
            false,
        );
        assert_eq!(untimed.flops, 2 * (m * k * n) as u64);
        assert_eq!((untimed.pack_ns, untimed.kernel_ns), (0, 0));
        let timed = gemm_f32_profiled(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c2,
            true,
        );
        // Timing never changes results or the deterministic fields.
        assert_eq!(c1, c2);
        assert_eq!(timed.bytes_packed, untimed.bytes_packed);
        assert_eq!(timed.flops, untimed.flops);
    }

    #[test]
    fn conv_stats_phase_accounting() {
        let s = ConvStats::new();
        s.add_phase(ConvPhase::Scatter, 100, 10);
        s.add_phase(ConvPhase::Gemm, 200, 20);
        s.add_phase(ConvPhase::Gather, 300, 30);
        s.add_phase_ns(ConvPhase::Gemm, 5);
        s.add_gemm_split(3, 4);
        let p = s.profile();
        assert_eq!(
            (p.flops_scatter, p.flops_gemm, p.flops_gather),
            (100, 200, 300)
        );
        assert_eq!(p.total_flops(), 600);
        assert_eq!(p.total_bytes(), 60);
        assert!((p.arithmetic_intensity() - 10.0).abs() < 1e-12);
        assert_eq!(p.gemm_ns, 5);
        assert_eq!((p.pack_ns, p.kernel_ns), (3, 4));
        assert_eq!(p.total_phase_ns(), 5);
    }
}
