//! Cache-blocked, register-tiled f32 GEMM — the engine behind the fast
//! convolution paths.
//!
//! Both batched Winograd ([`crate::winograd::conv2d_batched`]) and im2col
//! direct convolution ([`crate::direct::conv2d_fast`]) reduce to dense
//! `C = A·B` products. This module implements the classic three-level
//! blocking (Goto/BLIS): `NC`-wide column panels of `B` and `KC`-deep
//! blocks are packed into contiguous buffers sized for the L3/L2 caches,
//! `MC`-tall row blocks of `A` are packed for the L1, and an `MR×NR`
//! register-tiled microkernel runs over the packed panels with a
//! fixed-size accumulator array the compiler can keep in vector registers.
//!
//! Determinism: for every output element the `k`-dimension is accumulated
//! in one fixed serial order (`KC` blocks ascending, elements ascending
//! inside a block) regardless of blocking parameters' interaction with
//! threads — callers parallelize by splitting rows of `A`/`C` or issuing
//! independent GEMMs, never by splitting `k`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Rows of the microkernel register tile.
pub const MR: usize = 4;
/// Columns of the microkernel register tile.
pub const NR: usize = 8;

/// Cache-blocking parameters, in elements.
///
/// Defaults target a generic contemporary x86-64/ARM core: `KC·NR` floats
/// of packed `B` streamed from L2, `MC·KC` floats of packed `A` resident
/// in L1/L2, `NC` bounding the packed-`B` panel to a few hundred KiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Row-block height of `A` (L2-resident packed panel).
    pub mc: usize,
    /// Depth of the packed `k` block.
    pub kc: usize,
    /// Column-panel width of `B`.
    pub nc: usize,
}

impl Default for GemmBlocking {
    fn default() -> Self {
        GemmBlocking {
            mc: 64,
            kc: 256,
            nc: 2048,
        }
    }
}

/// A read-only GEMM `B` operand with arbitrary element strides, so both a
/// row-major patch matrix and the channel-strided Winograd scatter buffer
/// can feed the same packing routine. Element `(r, c)` lives at
/// `data[r·row_stride + c·col_stride]`.
#[derive(Debug, Clone, Copy)]
pub struct BOperand<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> BOperand<'a> {
    /// A strided view. Bounds are checked lazily at element access.
    pub fn strided(data: &'a [f32], row_stride: usize, col_stride: usize) -> Self {
        BOperand {
            data,
            row_stride,
            col_stride,
        }
    }

    /// A dense row-major `k × n` view.
    pub fn row_major(data: &'a [f32], cols: usize) -> Self {
        BOperand {
            data,
            row_stride: cols,
            col_stride: 1,
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.row_stride + c * self.col_stride]
    }
}

/// Reusable packing buffers. Keep one per worker thread and feed it to
/// every [`gemm_f32`] call that worker issues — the buffers grow to the
/// largest panel seen and are never shrunk, so steady-state GEMMs allocate
/// nothing.
#[derive(Debug, Default)]
pub struct GemmScratch {
    a_pack: Vec<f32>,
    b_pack: Vec<f32>,
}

impl GemmScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        GemmScratch::default()
    }
}

/// Shared counters for the convolution fast paths, designed to be updated
/// from worker threads (relaxed atomic adds commute, so totals are
/// deterministic for a fixed job set regardless of scheduling).
#[derive(Debug, Default)]
pub struct ConvStats {
    gemm_calls: AtomicU64,
    tiles: AtomicU64,
    bytes_packed: AtomicU64,
}

impl ConvStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ConvStats::default()
    }

    /// Records `calls` microkernel-level GEMM invocations that packed
    /// `bytes` bytes of panels.
    pub fn add_gemm(&self, calls: u64, bytes: u64) {
        self.gemm_calls.fetch_add(calls, Ordering::Relaxed);
        self.bytes_packed.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` Winograd input tiles transformed.
    pub fn add_tiles(&self, n: u64) {
        self.tiles.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot as `(gemm_calls, tiles, bytes_packed)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.gemm_calls.load(Ordering::Relaxed),
            self.tiles.load(Ordering::Relaxed),
            self.bytes_packed.load(Ordering::Relaxed),
        )
    }
}

/// `C = A·B` for row-major `A` (`m × k`), strided `B` (`k × n`) and
/// row-major `C` (`m × n`, fully overwritten). Returns the bytes of panel
/// data packed (the `conv.bytes_packed` telemetry unit).
///
/// `C` may be a row-block window of a larger matrix as long as its row
/// stride equals `n` — callers parallelize over row blocks by slicing `A`
/// and `C` consistently.
///
/// # Panics
///
/// Panics when slice lengths disagree with `m`, `k`, `n` or a blocking
/// parameter is zero.
#[allow(clippy::too_many_arguments)] // the seven dims/operands of a GEMM
pub fn gemm_f32(
    scratch: &mut GemmScratch,
    blocking: GemmBlocking,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: BOperand<'_>,
    c: &mut [f32],
) -> u64 {
    assert_eq!(a.len(), m * k, "A must be m×k row-major");
    assert_eq!(c.len(), m * n, "C must be m×n row-major");
    assert!(
        blocking.mc > 0 && blocking.kc > 0 && blocking.nc > 0,
        "blocking parameters must be positive"
    );
    if m == 0 || n == 0 {
        return 0;
    }
    if k == 0 {
        c.fill(0.0);
        return 0;
    }
    // Touch the far corner of B up front so a stride mistake fails loudly
    // rather than mid-panel.
    let _ = b.at(k - 1, n - 1);

    let GemmBlocking { mc, kc, nc } = blocking;
    let mut bytes_packed = 0u64;
    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kb = kc.min(k - pc);
            pack_b(&mut scratch.b_pack, b, pc, kb, jc, nb);
            bytes_packed += (nb.div_ceil(NR) * NR * kb * 4) as u64;
            let first_k_block = pc == 0;
            for ic in (0..m).step_by(mc) {
                let mb = mc.min(m - ic);
                pack_a(&mut scratch.a_pack, a, k, ic, mb, pc, kb);
                bytes_packed += (mb.div_ceil(MR) * MR * kb * 4) as u64;
                macro_kernel(
                    &scratch.a_pack,
                    &scratch.b_pack,
                    mb,
                    kb,
                    nb,
                    c,
                    ic,
                    jc,
                    n,
                    first_k_block,
                );
            }
        }
    }
    bytes_packed
}

/// Packs `B[pc..pc+kb, jc..jc+nb]` into `NR`-wide column panels:
/// `b_pack[panel][p·NR + j]`, zero-padded to a full `NR` on the ragged
/// last panel.
fn pack_b(b_pack: &mut Vec<f32>, b: BOperand<'_>, pc: usize, kb: usize, jc: usize, nb: usize) {
    let panels = nb.div_ceil(NR);
    b_pack.clear();
    b_pack.resize(panels * kb * NR, 0.0);
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(nb - j0);
        let dst = &mut b_pack[panel * kb * NR..(panel + 1) * kb * NR];
        for p in 0..kb {
            let row = &mut dst[p * NR..p * NR + NR];
            for (j, slot) in row.iter_mut().enumerate().take(width) {
                *slot = b.at(pc + p, jc + j0 + j);
            }
            for slot in row.iter_mut().skip(width) {
                *slot = 0.0;
            }
        }
    }
}

/// Packs `A[ic..ic+mb, pc..pc+kb]` into `MR`-tall row panels:
/// `a_pack[panel][p·MR + i]`, zero-padded to a full `MR` on the ragged
/// last panel.
fn pack_a(a_pack: &mut Vec<f32>, a: &[f32], k: usize, ic: usize, mb: usize, pc: usize, kb: usize) {
    let panels = mb.div_ceil(MR);
    a_pack.clear();
    a_pack.resize(panels * kb * MR, 0.0);
    for panel in 0..panels {
        let i0 = panel * MR;
        let height = MR.min(mb - i0);
        let dst = &mut a_pack[panel * kb * MR..(panel + 1) * kb * MR];
        for i in 0..height {
            let src = &a[(ic + i0 + i) * k + pc..(ic + i0 + i) * k + pc + kb];
            for (p, &v) in src.iter().enumerate() {
                dst[p * MR + i] = v;
            }
        }
    }
}

/// Runs the register-tiled microkernel over every `MR×NR` tile of the
/// packed block and writes (or accumulates) into `C` with edge clipping.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    a_pack: &[f32],
    b_pack: &[f32],
    mb: usize,
    kb: usize,
    nb: usize,
    c: &mut [f32],
    ic: usize,
    jc: usize,
    n: usize,
    first_k_block: bool,
) {
    let m_panels = mb.div_ceil(MR);
    let n_panels = nb.div_ceil(NR);
    for jp in 0..n_panels {
        let bp = &b_pack[jp * kb * NR..(jp + 1) * kb * NR];
        let j0 = jc + jp * NR;
        let width = NR.min(nb - jp * NR);
        for ip in 0..m_panels {
            let ap = &a_pack[ip * kb * MR..(ip + 1) * kb * MR];
            let acc = micro_kernel(ap, bp, kb);
            let i0 = ic + ip * MR;
            let height = MR.min(mb - ip * MR);
            for (i, acc_row) in acc.iter().enumerate().take(height) {
                let row = &mut c[(i0 + i) * n + j0..(i0 + i) * n + j0 + width];
                if first_k_block {
                    row.copy_from_slice(&acc_row[..width]);
                } else {
                    for (dst, &v) in row.iter_mut().zip(acc_row.iter()) {
                        *dst += v;
                    }
                }
            }
        }
    }
}

/// The `MR×NR` register tile: `kb` rank-1 updates over one packed `A`
/// panel and one packed `B` panel. Fixed-size accumulators let the
/// compiler vectorize the inner loop and keep the tile in registers.
#[inline]
fn micro_kernel(ap: &[f32], bp: &[f32], kb: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kb) {
        let av: &[f32; MR] = av.try_into().expect("packed A panel stride");
        let bv: &[f32; NR] = bv.try_into().expect("packed B panel stride");
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let a = av[i];
            for (j, slot) in acc_row.iter_mut().enumerate() {
                *slot += a * bv[j];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: same fixed k-order as the blocked kernel only when
    /// k fits one KC block — the equivalence tolerance below covers the
    /// general reassociation.
    fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn seeded(len: usize, seed: u64) -> Vec<f32> {
        let t = crate::tensor::random_tensor(1, 1, 1, len.max(1), seed);
        t.as_slice()[..len].to_vec()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn matches_reference_across_shapes() {
        let mut scratch = GemmScratch::new();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (17, 31, 23),
            (64, 70, 40),
            (5, 300, 9), // k spans multiple KC blocks at tiny kc below
        ] {
            let a = seeded(m * k, (m * 1000 + k) as u64);
            let b = seeded(k * n, (k * 1000 + n) as u64);
            let mut c = vec![f32::NAN; m * n];
            gemm_f32(
                &mut scratch,
                GemmBlocking::default(),
                m,
                k,
                n,
                &a,
                BOperand::row_major(&b, n),
                &mut c,
            );
            let r = gemm_ref(m, k, n, &a, &b);
            assert!(
                max_diff(&c, &r) < 1e-4,
                "{m}x{k}x{n} diff {}",
                max_diff(&c, &r)
            );
        }
    }

    #[test]
    fn blocking_parameters_do_not_change_results_beyond_rounding() {
        let (m, k, n) = (33, 65, 29);
        let a = seeded(m * k, 1);
        let b = seeded(k * n, 2);
        let mut scratch = GemmScratch::new();
        let mut reference = vec![0.0f32; m * n];
        gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut reference,
        );
        for blocking in [
            GemmBlocking {
                mc: 8,
                kc: 16,
                nc: 8,
            },
            GemmBlocking {
                mc: 1,
                kc: 1,
                nc: 1,
            },
            GemmBlocking {
                mc: 1024,
                kc: 1024,
                nc: 1024,
            },
        ] {
            let mut c = vec![0.0f32; m * n];
            gemm_f32(
                &mut scratch,
                blocking,
                m,
                k,
                n,
                &a,
                BOperand::row_major(&b, n),
                &mut c,
            );
            assert!(max_diff(&c, &reference) < 1e-4, "blocking {blocking:?}");
        }
    }

    #[test]
    fn identical_calls_are_bit_identical() {
        // Scratch reuse must not leak state between calls.
        let (m, k, n) = (20, 48, 12);
        let a = seeded(m * k, 7);
        let b = seeded(k * n, 8);
        let mut s1 = GemmScratch::new();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![1.0f32; m * n]; // different initial garbage
        gemm_f32(
            &mut s1,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c1,
        );
        // Warm scratch + dirty output: C is fully overwritten.
        gemm_f32(
            &mut s1,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c2,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn strided_b_matches_dense() {
        // B stored column-major: row stride 1, column stride k.
        let (m, k, n) = (6, 10, 14);
        let a = seeded(m * k, 3);
        let b_dense = seeded(k * n, 4);
        let mut b_colmajor = vec![0.0f32; k * n];
        for r in 0..k {
            for c in 0..n {
                b_colmajor[c * k + r] = b_dense[r * n + c];
            }
        }
        let mut scratch = GemmScratch::new();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b_dense, n),
            &mut c1,
        );
        gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::strided(&b_colmajor, 1, k),
            &mut c2,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn zero_k_writes_zeros() {
        let mut scratch = GemmScratch::new();
        let mut c = vec![f32::NAN; 6];
        let bytes = gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            2,
            0,
            3,
            &[],
            BOperand::row_major(&[], 3),
            &mut c,
        );
        assert_eq!(bytes, 0);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reports_packed_bytes() {
        let mut scratch = GemmScratch::new();
        let (m, k, n) = (MR, 5, NR);
        let a = seeded(m * k, 5);
        let b = seeded(k * n, 6);
        let mut c = vec![0.0f32; m * n];
        let bytes = gemm_f32(
            &mut scratch,
            GemmBlocking::default(),
            m,
            k,
            n,
            &a,
            BOperand::row_major(&b, n),
            &mut c,
        );
        // One full A panel + one full B panel, each k deep.
        assert_eq!(bytes, ((MR * k + NR * k) * 4) as u64);
    }

    #[test]
    fn conv_stats_accumulate() {
        let s = ConvStats::new();
        s.add_gemm(2, 100);
        s.add_tiles(7);
        s.add_gemm(1, 20);
        assert_eq!(s.snapshot(), (3, 7, 120));
    }
}
