//! 16-bit fixed-point arithmetic matching the paper's FPGA datapath.
//!
//! The paper's designs use a 16-bit fixed data type (§7.1). [`Fix16`] is a
//! Q8.8 signed fixed-point number with **saturating** conversion and
//! arithmetic, mirroring what a DSP48E-based datapath with a widened
//! accumulator does: products are formed exactly in 32 bits and rounded
//! back to Q8.8; sums saturate at the type's range.
//!
//! # Overflow semantics
//!
//! Every operation in this module **saturates** at the representable range
//! `[-128.0, 127.996]` — values clamp to [`Fix16::MAX`] / [`Fix16::MIN`]
//! and never wrap, in debug and release builds alike (the implementations
//! go through explicit range checks, never through raw `i16` arithmetic
//! that could wrap in release or panic in debug). `NaN` converts to zero.
//! [`Accumulator::mac`] is exact in 64 bits and cannot overflow for any
//! realistic reduction length (it would take ~2⁴⁴ maximal products);
//! saturation happens once, at [`Accumulator::finish`].
//!
//! Each saturation event increments a process-wide counter readable via
//! [`saturation_count`] / [`take_saturation_count`] — the runtime snapshots
//! it around kernel runs to publish the `fix16.saturations` telemetry
//! counter and to detect Winograd-domain range blowups worth falling back
//! to the direct path for. The counter only touches the rare clamp branch;
//! the in-range fast path is unchanged.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::tensor::Scalar;

static SATURATIONS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn note_saturation() {
    SATURATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total fix16 saturation events in this process (monotonic; all threads).
pub fn saturation_count() -> u64 {
    SATURATIONS.load(Ordering::Relaxed)
}

/// Reads and resets the process-wide saturation counter, returning the
/// count drained. Concurrent kernels share the counter, so a drained
/// window attributes saturations to whatever ran inside it.
pub fn take_saturation_count() -> u64 {
    SATURATIONS.swap(0, Ordering::Relaxed)
}

/// Number of fractional bits in [`Fix16`].
pub const FRAC_BITS: u32 = 8;
const ONE_RAW: i32 = 1 << FRAC_BITS;

/// Signed Q8.8 fixed-point value stored in 16 bits.
///
/// Range: `[-128.0, 127.996]`, resolution `2⁻⁸ ≈ 0.0039`.
///
/// # Examples
///
/// ```
/// use winofuse_conv::fixed::Fix16;
///
/// let a = Fix16::from_f32(1.5);
/// let b = Fix16::from_f32(2.25);
/// assert_eq!((a * b).to_f32(), 3.375);
/// assert_eq!((a + b).to_f32(), 3.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fix16(i16);

impl Fix16 {
    /// The value zero.
    pub const ZERO: Fix16 = Fix16(0);
    /// The value one.
    pub const ONE: Fix16 = Fix16(ONE_RAW as i16);
    /// Largest representable value (`127 + 255/256`).
    pub const MAX: Fix16 = Fix16(i16::MAX);
    /// Smallest representable value (`-128`).
    pub const MIN: Fix16 = Fix16(i16::MIN);

    /// Creates a value from its raw two's-complement Q8.8 bits.
    pub fn from_raw(raw: i16) -> Self {
        Fix16(raw)
    }

    /// Raw two's-complement Q8.8 bits.
    pub fn to_raw(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest and saturating at the
    /// representable range (NaN maps to zero).
    pub fn from_f32(v: f32) -> Self {
        if v.is_nan() {
            return Fix16::ZERO;
        }
        let scaled = (v * ONE_RAW as f32).round();
        if scaled >= i16::MAX as f32 {
            if scaled > i16::MAX as f32 {
                note_saturation();
            }
            Fix16::MAX
        } else if scaled <= i16::MIN as f32 {
            if scaled < i16::MIN as f32 {
                note_saturation();
            }
            Fix16::MIN
        } else {
            Fix16(scaled as i16)
        }
    }

    /// Converts to `f32` exactly (every `Fix16` is representable).
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / ONE_RAW as f32
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        match self.0.checked_add(rhs.0) {
            Some(raw) => Fix16(raw),
            None => {
                note_saturation();
                if self.0 >= 0 {
                    Fix16::MAX
                } else {
                    Fix16::MIN
                }
            }
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        match self.0.checked_sub(rhs.0) {
            Some(raw) => Fix16(raw),
            None => {
                note_saturation();
                if self.0 >= 0 {
                    Fix16::MAX
                } else {
                    Fix16::MIN
                }
            }
        }
    }

    /// Saturating multiplication: exact 32-bit product, rounded to nearest
    /// Q8.8, then saturated.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = self.0 as i32 * rhs.0 as i32;
        // Round to nearest (ties away from zero) before dropping FRAC_BITS.
        let rounded = if wide >= 0 {
            (wide + (ONE_RAW / 2)) >> FRAC_BITS
        } else {
            -((-wide + (ONE_RAW / 2)) >> FRAC_BITS)
        };
        if rounded > i16::MAX as i32 {
            note_saturation();
            Fix16::MAX
        } else if rounded < i16::MIN as i32 {
            note_saturation();
            Fix16::MIN
        } else {
            Fix16(rounded as i16)
        }
    }

    /// Absolute value (saturating: `|MIN|` maps to `MAX`).
    pub fn abs(self) -> Self {
        if self.0 == i16::MIN {
            note_saturation();
            Fix16::MAX
        } else {
            Fix16(self.0.abs())
        }
    }
}

impl Add for Fix16 {
    type Output = Fix16;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl Sub for Fix16 {
    type Output = Fix16;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl Mul for Fix16 {
    type Output = Fix16;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl Neg for Fix16 {
    type Output = Fix16;
    fn neg(self) -> Self {
        if self.0 == i16::MIN {
            note_saturation();
            Fix16::MAX
        } else {
            Fix16(-self.0)
        }
    }
}

impl fmt::Display for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<i16> for Fix16 {
    /// Interprets the argument as an **integer** value (not raw bits),
    /// saturating at the Q8.8 range.
    fn from(v: i16) -> Self {
        Fix16::from_f32(v as f32)
    }
}

impl Scalar for Fix16 {
    fn zero() -> Self {
        Fix16::ZERO
    }
    fn from_f32(v: f32) -> Self {
        Fix16::from_f32(v)
    }
    fn to_f32(self) -> f32 {
        Fix16::to_f32(self)
    }
}

/// A 32-bit accumulator for dot products of [`Fix16`] values, mirroring the
/// widened accumulation register of a DSP48E MAC cascade.
///
/// Products are accumulated exactly in Q16.16; [`Accumulator::finish`]
/// rounds and saturates back to Q8.8 once at the end, exactly like the
/// hardware writeback stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accumulator(i64);

impl Accumulator {
    /// Creates an empty (zero) accumulator.
    pub fn new() -> Self {
        Accumulator(0)
    }

    /// Adds the exact product `a·b` to the accumulator.
    pub fn mac(&mut self, a: Fix16, b: Fix16) {
        self.0 += a.to_raw() as i64 * b.to_raw() as i64;
    }

    /// The raw Q16.16 running sum — the lane representation the
    /// vectorized fix16 microkernels accumulate in.
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Rebuilds an accumulator from a raw Q16.16 running sum.
    pub fn from_raw(raw: i64) -> Self {
        Accumulator(raw)
    }

    /// Rounds the Q16.16 accumulation to nearest Q8.8 and saturates.
    pub fn finish(self) -> Fix16 {
        let wide = self.0;
        let half = (ONE_RAW / 2) as i64;
        let rounded = if wide >= 0 {
            (wide + half) >> FRAC_BITS
        } else {
            -((-wide + half) >> FRAC_BITS)
        };
        if rounded > i16::MAX as i64 {
            note_saturation();
            Fix16::MAX
        } else if rounded < i16::MIN as i64 {
            note_saturation();
            Fix16::MIN
        } else {
            Fix16::from_raw(rounded as i16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [-128.0, -1.0, -0.5, 0.0, 0.25, 1.0, 3.375, 127.0] {
            assert_eq!(Fix16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn conversion_saturates() {
        assert_eq!(Fix16::from_f32(1e9), Fix16::MAX);
        assert_eq!(Fix16::from_f32(-1e9), Fix16::MIN);
        assert_eq!(Fix16::from_f32(f32::NAN), Fix16::ZERO);
    }

    #[test]
    fn addition_saturates() {
        let big = Fix16::from_f32(127.0);
        assert_eq!(big + big, Fix16::MAX);
        let small = Fix16::from_f32(-127.0);
        assert_eq!(small + small, Fix16::MIN);
    }

    #[test]
    fn multiplication_rounds_to_nearest() {
        // 0.0039 * 0.5 = 0.00195 -> rounds to 0.0039 (1 ulp), not 0.
        let ulp = Fix16::from_raw(1);
        let half = Fix16::from_f32(0.5);
        assert_eq!((ulp * half).to_raw(), 1);
        // 1 ulp * 0.25 = 0.25 ulp -> rounds to 0.
        let quarter = Fix16::from_f32(0.25);
        assert_eq!((ulp * quarter).to_raw(), 0);
    }

    #[test]
    fn multiplication_saturates() {
        let v = Fix16::from_f32(100.0);
        assert_eq!(v * v, Fix16::MAX);
        assert_eq!(v * -v, Fix16::MIN);
    }

    #[test]
    fn negation_of_min_saturates() {
        assert_eq!(-Fix16::MIN, Fix16::MAX);
        assert_eq!(Fix16::MIN.abs(), Fix16::MAX);
    }

    #[test]
    fn accumulator_is_exact_until_finish() {
        // Sum of 256 products of 1 ulp * 1.0 = 256 ulp = 1.0; a per-step
        // rounding implementation would round each product fine here, but
        // 0.5-ulp products would vanish: check those accumulate exactly.
        let mut acc = Accumulator::new();
        let ulp = Fix16::from_raw(1);
        let half = Fix16::from_f32(0.5);
        for _ in 0..512 {
            acc.mac(ulp, half); // each product is 0.5 ulp exactly
        }
        assert_eq!(acc.finish(), Fix16::from_f32(1.0));
    }

    #[test]
    fn accumulator_saturates_at_finish() {
        let mut acc = Accumulator::new();
        let big = Fix16::from_f32(100.0);
        for _ in 0..10 {
            acc.mac(big, Fix16::ONE);
        }
        assert_eq!(acc.finish(), Fix16::MAX);
    }

    #[test]
    fn saturation_events_are_counted() {
        // The counter is process-global and other tests saturate too, so
        // assert on deltas being at least the events this test causes.
        let before = saturation_count();
        let _ = Fix16::from_f32(1e9); // +1
        let big = Fix16::from_f32(127.0);
        let _ = big + big; // +1
        let _ = Fix16::MIN - big; // +1
        let _ = big * big; // +1
        let _ = -Fix16::MIN; // +1
        let _ = Fix16::MIN.abs(); // +1
        let mut acc = Accumulator::new();
        acc.mac(big, big);
        acc.mac(big, big);
        let _ = acc.finish(); // +1
        assert!(saturation_count() >= before + 7);
        // In-range arithmetic must not count.
        let mid = saturation_count();
        let a = Fix16::from_f32(1.5);
        let _ = a + a;
        let _ = a * a;
        let _ = -a;
        let _ = Fix16::from_f32(-2.0);
        assert!(saturation_count() >= mid); // others may run concurrently…
        let drained = take_saturation_count();
        assert!(drained >= 7 || saturation_count() == 0);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Fix16::from_f32(1.5).to_string(), "1.5");
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Fix16::from_f32(-1.0) < Fix16::from_f32(0.5));
        assert!(Fix16::from_f32(2.0) > Fix16::from_f32(1.996));
    }
}
