//! Convolution lowered to matrix multiplication (im2col + GEMM).
//!
//! §1 of the paper lists matrix multiplication as one of the alternative
//! computation structures for convolutional layers. The lowering unrolls
//! every sliding window into a column of a patch matrix, then a single
//! GEMM against the flattened kernels produces all output feature maps.

use crate::tensor::{Scalar, Tensor};
use crate::{ConvError, ConvGeometry};

/// The patch matrix produced by [`im2col`]: shape
/// `(C·K·K) × (outH·outW)`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> PatchMatrix<T> {
    /// Number of rows (`C·K·K`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`outH·outW`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }
}

/// Unrolls one batch element of `input` into the im2col patch matrix for
/// the given geometry.
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when `input` disagrees with `geom`
/// or `batch` is out of range.
pub fn im2col<T: Scalar>(
    input: &Tensor<T>,
    geom: ConvGeometry,
    batch: usize,
) -> Result<PatchMatrix<T>, ConvError> {
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if batch >= input.n() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("batch < {}", input.n()),
            found: format!("{batch}"),
        });
    }
    let (c, k, s, pad) = (input.c(), geom.kernel(), geom.stride(), geom.pad() as isize);
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let rows = c * k * k;
    let cols = oh * ow;
    let mut data = Vec::with_capacity(rows * cols);
    for m in 0..c {
        for u in 0..k {
            for v in 0..k {
                for i in 0..oh {
                    for j in 0..ow {
                        let hh = (i * s + u) as isize - pad;
                        let ww = (j * s + v) as isize - pad;
                        data.push(input.get_padded(batch, m, hh, ww));
                    }
                }
            }
        }
    }
    Ok(PatchMatrix { rows, cols, data })
}

/// Convolution via im2col + GEMM. Produces the same result as
/// [`crate::direct::conv2d`].
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when shapes disagree with `geom`.
///
/// # Examples
///
/// ```
/// use winofuse_conv::{direct, im2col, tensor::random_tensor, ConvGeometry};
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let geom = ConvGeometry::new(6, 6, 3, 2, 1)?;
/// let x = random_tensor(1, 3, 6, 6, 1);
/// let w = random_tensor(4, 3, 3, 3, 2);
/// let a = direct::conv2d(&x, &w, geom)?;
/// let b = im2col::conv2d(&x, &w, geom)?;
/// assert!(a.approx_eq(&b, 1e-4));
/// # Ok(())
/// # }
/// ```
pub fn conv2d<T: Scalar>(
    input: &Tensor<T>,
    kernels: &Tensor<T>,
    geom: ConvGeometry,
) -> Result<Tensor<T>, ConvError> {
    if kernels.c() != input.c() || kernels.h() != geom.kernel() || kernels.w() != geom.kernel() {
        return Err(ConvError::ShapeMismatch {
            expected: format!(
                "kernels {}x{}x{}x{}",
                kernels.n(),
                input.c(),
                geom.kernel(),
                geom.kernel()
            ),
            found: format!(
                "{}x{}x{}x{}",
                kernels.n(),
                kernels.c(),
                kernels.h(),
                kernels.w()
            ),
        });
    }
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let out_c = kernels.n();
    let kk = input.c() * geom.kernel() * geom.kernel();
    let mut out = Tensor::zeros(input.n(), out_c, oh, ow);
    let kflat = kernels.as_slice(); // N×(C·K·K) row-major already

    for b in 0..input.n() {
        let patches = im2col(input, geom, b)?;
        // GEMM: out[n][col] = Σ_r kflat[n][r] · patches[r][col]
        for n in 0..out_c {
            for col in 0..patches.cols() {
                let mut acc = T::zero();
                for r in 0..kk {
                    acc = acc + kflat[n * kk + r] * patches.get(r, col);
                }
                out.set(b, n, col / ow, col % ow, acc);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use crate::tensor::random_tensor;

    #[test]
    fn patch_matrix_shape() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 0).unwrap();
        let x = random_tensor(1, 2, 4, 4, 3);
        let p = im2col(&x, geom, 0).unwrap();
        assert_eq!(p.rows(), 2 * 9);
        assert_eq!(p.cols(), 4);
    }

    #[test]
    fn patch_matrix_contents() {
        let geom = ConvGeometry::new(3, 3, 2, 1, 0).unwrap();
        let x = Tensor::from_fn(1, 1, 3, 3, |_, _, h, w| (h * 3 + w) as f32);
        let p = im2col(&x, geom, 0).unwrap();
        // Row 0 = kernel offset (0,0): values at output positions
        // (0,0),(0,1),(1,0),(1,1) = 0,1,3,4.
        assert_eq!(
            (0..4).map(|c| p.get(0, c)).collect::<Vec<_>>(),
            vec![0.0, 1.0, 3.0, 4.0]
        );
        // Last row = offset (1,1): 4,5,7,8.
        assert_eq!(
            (0..4).map(|c| p.get(3, c)).collect::<Vec<_>>(),
            vec![4.0, 5.0, 7.0, 8.0]
        );
    }

    #[test]
    fn matches_direct_on_random_input() {
        let geom = ConvGeometry::new(7, 7, 3, 1, 1).unwrap();
        let x = random_tensor(2, 3, 7, 7, 5);
        let w = random_tensor(4, 3, 3, 3, 6);
        let a = direct::conv2d(&x, &w, geom).unwrap();
        let b = conv2d(&x, &w, geom).unwrap();
        assert!(
            a.approx_eq(&b, 1e-4),
            "max diff {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn matches_direct_with_stride_and_pad() {
        let geom = ConvGeometry::new(11, 11, 5, 2, 2).unwrap();
        let x = random_tensor(1, 2, 11, 11, 7);
        let w = random_tensor(3, 2, 5, 5, 8);
        let a = direct::conv2d(&x, &w, geom).unwrap();
        let b = conv2d(&x, &w, geom).unwrap();
        assert!(a.approx_eq(&b, 1e-4));
    }

    #[test]
    fn rejects_out_of_range_batch() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 0).unwrap();
        let x = random_tensor(1, 1, 4, 4, 9);
        assert!(im2col(&x, geom, 1).is_err());
    }

    #[test]
    fn rejects_kernel_mismatch() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 0).unwrap();
        let x = random_tensor(1, 2, 4, 4, 9);
        let w = random_tensor(1, 2, 5, 5, 9);
        assert!(conv2d(&x, &w, geom).is_err());
    }
}
