//! Non-convolution CNN operators: pooling, ReLU, LRN, fully connected and
//! softmax.
//!
//! These are the "other layers" of AlexNet/VGG the paper's code generator
//! has templates for (§6: "templates for various type of layers including
//! convolution, pooling, and local response normalization").

use crate::tensor::{Scalar, Tensor};
use crate::{ConvError, ConvGeometry};

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window (AlexNet/VGG pooling layers).
    Max,
    /// Arithmetic mean over the window (only in-bounds elements count).
    Average,
}

/// Spatial pooling with the given window geometry (kernel/stride/pad taken
/// from `geom`; channel count is preserved).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when `input` disagrees with `geom`.
///
/// # Examples
///
/// ```
/// use winofuse_conv::{ops, tensor::Tensor, ConvGeometry};
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let geom = ConvGeometry::new(4, 4, 2, 2, 0)?;
/// let x = Tensor::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f32);
/// let y = ops::pool(&x, geom, ops::PoolKind::Max)?;
/// assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
/// # Ok(())
/// # }
/// ```
pub fn pool<T: Scalar + PartialOrd>(
    input: &Tensor<T>,
    geom: ConvGeometry,
    kind: PoolKind,
) -> Result<Tensor<T>, ConvError> {
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    let (k, s, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let mut out = Tensor::zeros(input.n(), input.c(), oh, ow);
    for b in 0..input.n() {
        for c in 0..input.c() {
            for i in 0..oh {
                for j in 0..ow {
                    let mut best: Option<T> = None;
                    let mut sum = 0.0f32;
                    let mut count = 0usize;
                    for u in 0..k {
                        for v in 0..k {
                            let hh = (i * s + u) as isize - pad;
                            let ww = (j * s + v) as isize - pad;
                            if hh < 0
                                || ww < 0
                                || hh as usize >= input.h()
                                || ww as usize >= input.w()
                            {
                                continue; // padding excluded from pooling
                            }
                            let val = input.get(b, c, hh as usize, ww as usize);
                            match kind {
                                PoolKind::Max => {
                                    best = Some(match best {
                                        Some(cur) if cur >= val => cur,
                                        _ => val,
                                    });
                                }
                                PoolKind::Average => {
                                    sum += val.to_f32();
                                    count += 1;
                                }
                            }
                        }
                    }
                    let result = match kind {
                        PoolKind::Max => best.unwrap_or_else(T::zero),
                        PoolKind::Average => {
                            if count == 0 {
                                T::zero()
                            } else {
                                T::from_f32(sum / count as f32)
                            }
                        }
                    };
                    out.set(b, c, i, j, result);
                }
            }
        }
    }
    Ok(out)
}

/// Rectified linear unit applied element-wise: `max(x, 0)`.
///
/// The paper integrates ReLU into the preceding convolutional layer
/// (§7.2: "ReLU layers can be easily integrated into convolutional
/// layers"); it is exposed separately here for reference computation.
pub fn relu<T: Scalar + PartialOrd>(input: &Tensor<T>) -> Tensor<T> {
    let mut out = input.clone();
    for v in out.as_mut_slice() {
        if *v < T::zero() {
            *v = T::zero();
        }
    }
    out
}

/// Parameters of AlexNet-style cross-channel local response normalization:
///
/// ```text
/// b[c] = a[c] / (k + α/n · Σ_{c'∈window} a[c']²)^β
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrnParams {
    /// Window size `n` (channels, centered).
    pub local_size: usize,
    /// Scale `α`.
    pub alpha: f32,
    /// Exponent `β`.
    pub beta: f32,
    /// Bias `k`.
    pub k: f32,
}

impl Default for LrnParams {
    /// AlexNet's published constants: `n=5, α=1e−4, β=0.75, k=2`.
    fn default() -> Self {
        LrnParams {
            local_size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }
}

/// Cross-channel local response normalization (computed in `f32`).
///
/// # Errors
///
/// Returns [`ConvError::InvalidGeometry`] when `local_size` is zero or
/// even (the window must have a center channel).
pub fn lrn<T: Scalar>(input: &Tensor<T>, params: LrnParams) -> Result<Tensor<T>, ConvError> {
    if params.local_size == 0 || params.local_size.is_multiple_of(2) {
        return Err(ConvError::InvalidGeometry(format!(
            "lrn local_size must be odd and nonzero, got {}",
            params.local_size
        )));
    }
    let half = (params.local_size / 2) as isize;
    let mut out = Tensor::zeros(input.n(), input.c(), input.h(), input.w());
    for b in 0..input.n() {
        for c in 0..input.c() {
            for h in 0..input.h() {
                for w in 0..input.w() {
                    let mut sum_sq = 0.0f32;
                    for dc in -half..=half {
                        let cc = c as isize + dc;
                        if cc < 0 || cc as usize >= input.c() {
                            continue;
                        }
                        let v = input.get(b, cc as usize, h, w).to_f32();
                        sum_sq += v * v;
                    }
                    let denom = (params.k + params.alpha / params.local_size as f32 * sum_sq)
                        .powf(params.beta);
                    let a = input.get(b, c, h, w).to_f32();
                    out.set(b, c, h, w, T::from_f32(a / denom));
                }
            }
        }
    }
    Ok(out)
}

/// Fully connected layer: flattens the input (per batch element) and
/// multiplies by `weights` (`out_features × in_features`) plus `bias`.
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when `in_features != c·h·w` or the
/// bias length differs from `out_features`.
pub fn fully_connected<T: Scalar>(
    input: &Tensor<T>,
    weights: &[T],
    bias: &[T],
    out_features: usize,
) -> Result<Tensor<T>, ConvError> {
    let in_features = input.c() * input.h() * input.w();
    if weights.len() != out_features * in_features {
        return Err(ConvError::ShapeMismatch {
            expected: format!(
                "{} weights ({out_features}x{in_features})",
                out_features * in_features
            ),
            found: format!("{}", weights.len()),
        });
    }
    if bias.len() != out_features {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{out_features} bias values"),
            found: format!("{}", bias.len()),
        });
    }
    let mut out = Tensor::zeros(input.n(), out_features, 1, 1);
    for b in 0..input.n() {
        let base = b * in_features;
        let flat = input.as_slice();
        for o in 0..out_features {
            let mut acc = bias[o];
            for i in 0..in_features {
                acc = acc + weights[o * in_features + i] * flat[base + i];
            }
            out.set(b, o, 0, 0, acc);
        }
    }
    Ok(out)
}

/// Numerically stable softmax over the channel dimension (computed in
/// `f32`; `h` and `w` must be 1, i.e. the output of a fully connected
/// layer).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] for spatially extended input.
pub fn softmax<T: Scalar>(input: &Tensor<T>) -> Result<Tensor<T>, ConvError> {
    if input.h() != 1 || input.w() != 1 {
        return Err(ConvError::ShapeMismatch {
            expected: "1x1 spatial extent".into(),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    let mut out = Tensor::zeros(input.n(), input.c(), 1, 1);
    for b in 0..input.n() {
        let vals: Vec<f32> = (0..input.c())
            .map(|c| input.get(b, c, 0, 0).to_f32())
            .collect();
        let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = vals.iter().map(|v| (v - max).exp()).collect();
        let total: f32 = exps.iter().sum();
        for (c, e) in exps.iter().enumerate() {
            out.set(b, c, 0, 0, T::from_f32(e / total));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fix16;
    use crate::tensor::random_tensor;

    #[test]
    fn max_pool_2x2() {
        let geom = ConvGeometry::new(4, 4, 2, 2, 0).unwrap();
        let x = Tensor::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f32);
        let y = pool(&x, geom, PoolKind::Max).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let geom = ConvGeometry::new(2, 2, 2, 2, 0).unwrap();
        let x = Tensor::from_vec(1, 1, 2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        let y = pool(&x, geom, PoolKind::Average).unwrap();
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn max_pool_handles_negative_values() {
        let geom = ConvGeometry::new(2, 2, 2, 2, 0).unwrap();
        let x = Tensor::from_vec(1, 1, 2, 2, vec![-5.0f32, -2.0, -9.0, -3.0]).unwrap();
        let y = pool(&x, geom, PoolKind::Max).unwrap();
        assert_eq!(y.as_slice(), &[-2.0]);
    }

    #[test]
    fn pool_padding_is_excluded_not_zero() {
        // With pad 1 and all-negative input, a zero-padding max pool would
        // wrongly return 0.
        let geom = ConvGeometry::new(2, 2, 3, 2, 1).unwrap();
        let x = Tensor::filled(1, 1, 2, 2, -1.0f32);
        let y = pool(&x, geom, PoolKind::Max).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == -1.0));
        // Average over a padded corner window counts only in-bounds cells.
        let ya = pool(&x, geom, PoolKind::Average).unwrap();
        assert!(ya.as_slice().iter().all(|&v| (v + 1.0).abs() < 1e-6));
    }

    #[test]
    fn overlapping_pool_alexnet_style() {
        // AlexNet uses 3x3 pooling with stride 2.
        let geom = ConvGeometry::new(5, 5, 3, 2, 0).unwrap();
        let x = Tensor::from_fn(1, 1, 5, 5, |_, _, h, w| (h * 5 + w) as f32);
        let y = pool(&x, geom, PoolKind::Max).unwrap();
        assert_eq!(y.shape(), (1, 1, 2, 2));
        assert_eq!(y.get(0, 0, 1, 1), 24.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(1, 1, 1, 4, vec![-1.0f32, 0.0, 0.5, -0.1]).unwrap();
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn relu_works_on_fix16() {
        let x: Tensor<Fix16> = Tensor::from_vec(
            1,
            1,
            1,
            2,
            vec![Fix16::from_f32(-2.0), Fix16::from_f32(3.0)],
        )
        .unwrap();
        let y = relu(&x);
        assert_eq!(y.get(0, 0, 0, 0), Fix16::ZERO);
        assert_eq!(y.get(0, 0, 0, 1), Fix16::from_f32(3.0));
    }

    #[test]
    fn lrn_preserves_shape_and_shrinks_magnitudes() {
        let x = random_tensor(1, 8, 3, 3, 42);
        let y = lrn(&x, LrnParams::default()).unwrap();
        assert_eq!(y.shape(), x.shape());
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!(b.abs() <= a.abs() + 1e-6, "lrn must not amplify");
            assert_eq!(a.signum(), if *b == 0.0 { a.signum() } else { b.signum() });
        }
    }

    #[test]
    fn lrn_denominator_formula() {
        // Single channel, local_size 1: b = a / (k + α·a²)^β.
        let x = Tensor::filled(1, 1, 1, 1, 2.0f32);
        let p = LrnParams {
            local_size: 1,
            alpha: 0.5,
            beta: 1.0,
            k: 1.0,
        };
        let y = lrn(&x, p).unwrap();
        assert!((y.get(0, 0, 0, 0) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn lrn_rejects_even_window() {
        let x = random_tensor(1, 4, 2, 2, 1);
        let p = LrnParams {
            local_size: 4,
            ..LrnParams::default()
        };
        assert!(lrn(&x, p).is_err());
    }

    #[test]
    fn fully_connected_known_values() {
        let x = Tensor::from_vec(1, 1, 1, 3, vec![1.0f32, 2.0, 3.0]).unwrap();
        let w = vec![1.0f32, 0.0, -1.0, 0.5, 0.5, 0.5];
        let b = vec![10.0f32, 0.0];
        let y = fully_connected(&x, &w, &b, 2).unwrap();
        assert_eq!(y.get(0, 0, 0, 0), 8.0); // 1 - 3 + 10
        assert_eq!(y.get(0, 1, 0, 0), 3.0); // (1+2+3)/2
    }

    #[test]
    fn fully_connected_validates_shapes() {
        let x = Tensor::from_vec(1, 1, 1, 3, vec![1.0f32, 2.0, 3.0]).unwrap();
        assert!(fully_connected(&x, &[0.0; 5], &[0.0; 2], 2).is_err());
        assert!(fully_connected(&x, &[0.0; 6], &[0.0; 3], 2).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let x = Tensor::from_vec(1, 3, 1, 1, vec![1.0f32, 3.0, 2.0]).unwrap();
        let y = softmax(&x).unwrap();
        let s: f32 = y.as_slice().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(y.get(0, 1, 0, 0) > y.get(0, 2, 0, 0));
        assert!(y.get(0, 2, 0, 0) > y.get(0, 0, 0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(1, 2, 1, 1, vec![1000.0f32, 1000.0]).unwrap();
        let y = softmax(&x).unwrap();
        assert!((y.get(0, 0, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rejects_spatial_input() {
        let x: Tensor<f32> = Tensor::zeros(1, 2, 2, 2);
        assert!(softmax(&x).is_err());
    }
}
