//! Tiled 2-D Winograd convolution `F(m×m, r×r)` over feature-map tensors.
//!
//! Each input feature map is divided into `(m+r−1)×(m+r−1)` tiles with an
//! `r−1` overlap; `F(m×m, r×r)` is evaluated per tile per channel and the
//! per-channel results accumulate into an `m×m` output tile (§2.1 of the
//! paper). Stride must be 1 — the framework's optimizer falls back to the
//! conventional algorithm otherwise, exactly as the paper does.

use crate::cook_toom::{f43, WinogradTransform};
use crate::gemm::{BOperand, ConvPhase, ConvStats, GemmBlocking, GemmScratch, PackedA};
use crate::matrix::Mat;
use crate::microkernel::KernelChoice;
use crate::sparse::{sparse_gemm, SparseFilters, SparseKernelChoice};
use crate::tensor::Tensor;
use crate::{ConvError, ConvGeometry};
use std::time::Instant;
use winofuse_runtime::PoolProfiler;

/// Transformed filter bank: `U[n][c] = G·g·Gᵀ` for every (output channel,
/// input channel) pair, precomputed once per layer.
///
/// In hardware this happens offline (the bitstream ships transformed
/// weights); exposing it separately lets benches measure the online and
/// offline costs independently.
#[derive(Debug, Clone)]
pub struct TransformedFilters {
    alpha: usize,
    out_c: usize,
    in_c: usize,
    /// `out_c · in_c` matrices of shape `α × α`, row-major by (n, c).
    banks: Vec<Mat<f32>>,
}

impl TransformedFilters {
    /// Transforms a kernel tensor (`N×C×r×r`) with the given transform.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::ShapeMismatch`] when the kernel spatial size is
    /// not `r × r`.
    pub fn new(kernels: &Tensor<f32>, transform: &WinogradTransform) -> Result<Self, ConvError> {
        let r = transform.r();
        if kernels.h() != r || kernels.w() != r {
            return Err(ConvError::ShapeMismatch {
                expected: format!("{r}x{r} kernels for F({},{})", transform.m(), r),
                found: format!("{}x{}", kernels.h(), kernels.w()),
            });
        }
        let g = transform.g_f32();
        let g_t = g.transpose();
        let alpha = transform.alpha();
        // Scratch for the G·g and g itself is hoisted out of the channel
        // loop: the only per-(n, c) allocation is the stored bank.
        let mut gk = Mat::<f32>::zeros(r, r);
        let mut g_gk = Mat::<f32>::zeros(alpha, r);
        let mut banks = Vec::with_capacity(kernels.n() * kernels.c());
        for n in 0..kernels.n() {
            for c in 0..kernels.c() {
                for u in 0..r {
                    for v in 0..r {
                        gk.set(u, v, kernels.get(n, c, u, v));
                    }
                }
                g.mul_into(&gk, &mut g_gk);
                let mut bank = Mat::<f32>::zeros(alpha, alpha);
                g_gk.mul_into(&g_t, &mut bank);
                banks.push(bank);
            }
        }
        Ok(TransformedFilters {
            alpha: transform.alpha(),
            out_c: kernels.n(),
            in_c: kernels.c(),
            banks,
        })
    }

    /// The transformed `α×α` bank for output channel `n`, input channel `c`.
    ///
    /// # Panics
    ///
    /// Panics when channel indices are out of range.
    pub fn bank(&self, n: usize, c: usize) -> &Mat<f32> {
        assert!(n < self.out_c && c < self.in_c);
        &self.banks[n * self.in_c + c]
    }

    /// Tile side `α` of the transformed banks.
    pub fn alpha(&self) -> usize {
        self.alpha
    }
}

/// Winograd convolution with an explicit transform (any generated
/// `F(m, r)`).
///
/// # Errors
///
/// * [`ConvError::StrideUnsupported`] when `geom.stride() != 1`,
/// * [`ConvError::ShapeMismatch`] when shapes disagree with `geom` or the
///   kernel size differs from the transform's `r`.
pub fn conv2d_with(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    transform: &WinogradTransform,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }

    let filters = TransformedFilters::new(kernels, transform)?;
    conv2d_pretransformed(input, &filters, geom, transform)
}

/// Winograd convolution reusing an already-transformed filter bank.
///
/// # Errors
///
/// Same conditions as [`conv2d_with`]; additionally the filter bank must
/// have been built with the same transform (checked via `α`).
pub fn conv2d_pretransformed(
    input: &Tensor<f32>,
    filters: &TransformedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if filters.alpha() != transform.alpha() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("filter bank with alpha {}", transform.alpha()),
            found: format!("alpha {}", filters.alpha()),
        });
    }
    if filters.in_c != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} input channels", filters.in_c),
            found: format!("{}", input.c()),
        });
    }

    let m = transform.m();
    let alpha = transform.alpha();
    let b_t = transform.b_t_f32();
    let b = b_t.transpose();
    let a_t = transform.a_t_f32();
    let a = a_t.transpose();

    let (batch, in_c, _, _) = input.shape();
    let out_c = filters.out_c;
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let pad = geom.pad() as isize;

    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    // Scratch: transformed input tiles for all channels at one position.
    let mut v_tiles: Vec<Mat<f32>> = vec![Mat::zeros(alpha, alpha); in_c];

    for bn in 0..batch {
        for th in 0..tiles_h {
            for tw in 0..tiles_w {
                let h0 = (th * m) as isize - pad;
                let w0 = (tw * m) as isize - pad;
                // Input transforms V = Bᵀ·d·B for every channel.
                for (c, v_tile) in v_tiles.iter_mut().enumerate() {
                    let d = Mat::from_fn(alpha, alpha, |u, v| {
                        input.get_padded(bn, c, h0 + u as isize, w0 + v as isize)
                    });
                    *v_tile = b_t.mul(&d).mul(&b);
                }
                for n in 0..out_c {
                    // M = Σ_c U[n][c] ⊙ V[c]
                    let mut acc = Mat::<f32>::zeros(alpha, alpha);
                    for (c, v_tile) in v_tiles.iter().enumerate() {
                        let prod = filters.bank(n, c).hadamard(v_tile);
                        acc = Mat::from_fn(alpha, alpha, |u, v| acc.get(u, v) + prod.get(u, v));
                    }
                    // Y = Aᵀ·M·A, scattered with edge clipping.
                    let y = a_t.mul(&acc).mul(&a);
                    for u in 0..m {
                        for v in 0..m {
                            let oh_i = th * m + u;
                            let ow_i = tw * m + v;
                            if oh_i < oh && ow_i < ow {
                                out.set(bn, n, oh_i, ow_i, y.get(u, v));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Winograd convolution with the paper's uniform tile choice
/// `F(4×4, 3×3)` (§2.1: "we use a uniform size F(4×4, 3×3)").
///
/// # Errors
///
/// Same conditions as [`conv2d_with`]; the kernel must be 3×3 and stride 1.
///
/// # Examples
///
/// ```
/// use winofuse_conv::{direct, winograd, tensor::random_tensor, ConvGeometry};
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let geom = ConvGeometry::new(12, 12, 3, 1, 1)?;
/// let x = random_tensor(1, 4, 12, 12, 1);
/// let w = random_tensor(8, 4, 3, 3, 2);
/// let reference = direct::conv2d(&x, &w, geom)?;
/// let fast = winograd::conv2d_f43(&x, &w, geom)?;
/// assert!(reference.approx_eq(&fast, 1e-3));
/// # Ok(())
/// # }
/// ```
pub fn conv2d_f43(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_with(input, kernels, geom, &f43())
}

/// Input tiles scattered per job in the barrier (transform-point) path
/// (sizes the phase-1 write regions; results never depend on it).
const TILE_CHUNK: usize = 32;
/// Output channels per gather job in the barrier path.
const GATHER_K_BLOCK: usize = 16;
/// Tiles owned by one worker job under the tile-block schedule: each job
/// runs fused scatter → α² GEMMs → gather over this many contiguous tiles
/// with thread-local buffers. Sized so the per-job `V`/`M` blocks stay
/// cache-resident while GEMM `n` fills whole `NR` panels. Results never
/// depend on it.
pub const WINO_TILE_BLOCK: usize = 32;
/// Minimum job count for `Auto` to pick the tile-block schedule — below
/// this the layer has too few tiles to parallelize at tile grain (deep,
/// spatially small layers like VGG conv5), and the transform-point
/// schedule's 36-way GEMM parallelism wins.
const TILE_BLOCK_MIN_JOBS: usize = 4;

/// How the batched Winograd layer is partitioned into parallel jobs.
///
/// Every schedule produces **bit-identical outputs** — each output element
/// accumulates its `in_c` products in the same ascending order under the
/// same `KC` blocking — so the choice is purely a performance decision and
/// `Auto` may pick per layer shape without affecting results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WinoSchedule {
    /// Pick per shape: tile-block when the layer has enough tiles to feed
    /// [`TILE_BLOCK_MIN_JOBS`] jobs, transform-point otherwise.
    #[default]
    Auto,
    /// One pool invocation; each job owns a contiguous block of
    /// [`WINO_TILE_BLOCK`] tiles and runs fused
    /// scatter → α²-batched packed GEMM → gather over its block with
    /// thread-local panels. No barriers between phases.
    TileBlock,
    /// Three barrier phases (scatter / GEMM / gather) with one GEMM job
    /// per transform point — the right grain when tiles are scarce but
    /// channels are deep.
    TransformPoint,
}

/// Knobs for [`conv2d_batched_ext`]: schedule selection and an explicit
/// microkernel pin (both default to auto-selection).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedOptions {
    /// Parallel partitioning; `Auto` resolves per layer shape.
    pub schedule: WinoSchedule,
    /// `None` dispatches to [`KernelChoice::auto`]; tests pin kernels
    /// explicitly to hold the oracle contract down.
    pub kernel: Option<KernelChoice>,
}

/// Filter bank laid out for batched Winograd-as-GEMM: one
/// `out_c × in_c` row-major GEMM operand per transform-domain point
/// `(u, v)`, so the α² element-wise products over all tiles collapse into
/// α² matrix multiplies (Lavin's formulation; the same structure WinoCNN
/// maps onto a systolic array).
#[derive(Debug, Clone)]
pub struct BatchedFilters {
    m: usize,
    r: usize,
    alpha: usize,
    out_c: usize,
    in_c: usize,
    /// `planes[u·α + v][k·in_c + c] = (G·g_{k,c}·Gᵀ)[u][v]`.
    planes: Vec<Vec<f32>>,
    /// Each plane pre-packed into GEMM `A` panels under the default
    /// blocking — built once here (plan-lowering time), so no strip or
    /// transform-point job ever re-packs filter coefficients.
    packed: Vec<PackedA>,
}

impl BatchedFilters {
    /// Transforms and repacks a kernel tensor (`N×C×r×r`), including the
    /// one-time GEMM panel pack of every transform-point plane.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransformedFilters::new`].
    pub fn new(kernels: &Tensor<f32>, transform: &WinogradTransform) -> Result<Self, ConvError> {
        let banks = TransformedFilters::new(kernels, transform)?;
        let (out_c, in_c) = (kernels.n(), kernels.c());
        let alpha = transform.alpha();
        let aa = alpha * alpha;
        let mut planes = vec![vec![0.0f32; out_c * in_c]; aa];
        for k in 0..out_c {
            for c in 0..in_c {
                let bank = banks.bank(k, c).as_slice();
                for (uv, plane) in planes.iter_mut().enumerate() {
                    plane[k * in_c + c] = bank[uv];
                }
            }
        }
        let blocking = GemmBlocking::default();
        let packed = planes
            .iter()
            .map(|p| PackedA::pack(p, out_c, in_c, blocking))
            .collect();
        Ok(BatchedFilters {
            m: transform.m(),
            r: transform.r(),
            alpha,
            out_c,
            in_c,
            planes,
            packed,
        })
    }

    /// The pre-packed GEMM `A` operand for transform point `uv`.
    pub fn packed_plane(&self, uv: usize) -> &PackedA {
        &self.packed[uv]
    }

    /// Output channels.
    pub fn out_c(&self) -> usize {
        self.out_c
    }

    /// Input channels.
    pub fn in_c(&self) -> usize {
        self.in_c
    }

    /// Tile side `α` of the transform the bank was built with.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Total transformed coefficients held by the bank (`α²·N·C`) — the
    /// element count an accelerator streaming this bank would transfer.
    pub fn coefficients(&self) -> usize {
        self.planes.len() * self.out_c * self.in_c
    }
}

/// `out[n×p] = a[n×k] · b[k×p]` on flat row-major buffers — the
/// transform-sized (≤ α×α) matmul used inside scatter/gather workers, free
/// of per-call allocation.
fn matmul_flat(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, p: usize) {
    for i in 0..n {
        for j in 0..p {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * p + j];
            }
            out[i * p + j] = acc;
        }
    }
}

/// Batched Winograd convolution: scatter (input transforms), α² GEMMs
/// against the pre-packed filter planes, gather (output transforms with
/// edge clipping). Work is partitioned per [`WinoSchedule::Auto`];
/// `threads == 0` means auto-detect, `1` runs inline.
///
/// Results are bit-identical for any thread count **and any schedule**:
/// jobs partition the tile/channel space in fixed-size blocks whose
/// contents and accumulation order never depend on the worker count, and
/// every schedule accumulates each output element's `in_c` products in
/// the same ascending order under the same `KC` blocking.
///
/// # Errors
///
/// Same conditions as [`conv2d_pretransformed`]; the filter bank must have
/// been built with the same transform.
pub fn conv2d_batched(
    input: &Tensor<f32>,
    filters: &BatchedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_batched_ext(
        input,
        filters,
        geom,
        transform,
        threads,
        stats,
        &PoolProfiler::disabled(),
        BatchedOptions::default(),
    )
}

/// [`conv2d_batched`] with worker-lane tracing: jobs are emitted as
/// Chrome-trace slices on per-worker lanes via `prof` (scoped to
/// `wino.scatter` / `wino.gemm` / `wino.gather` under the transform-point
/// schedule, `wino.tileblock` under the fused tile-block schedule), and
/// when `stats` is supplied, per-phase times and the GEMM
/// pack-vs-microkernel split are recorded alongside the exact flop/byte
/// accounting.
///
/// # Errors
///
/// Same conditions as [`conv2d_batched`].
pub fn conv2d_batched_traced(
    input: &Tensor<f32>,
    filters: &BatchedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_batched_ext(
        input,
        filters,
        geom,
        transform,
        threads,
        stats,
        prof,
        BatchedOptions::default(),
    )
}

/// The filter bank a batched run draws its per-transform-point GEMM `A`
/// operand from: the dense pre-packed planes, or the pruned CSR planes of
/// a sparse-Winograd layer. Both produce one GEMM-shaped product per
/// transform point over the same scatter/gather pipeline, so the two
/// paths share every schedule.
#[derive(Clone, Copy)]
enum BankRef<'a> {
    Dense(&'a BatchedFilters),
    Sparse(&'a SparseFilters),
}

impl BankRef<'_> {
    /// Runs the transform point `uv`'s GEMM `C[out_c × n] = A_uv · B`
    /// into `c`, dense or sparse. Accumulation association is identical
    /// across the two arms (same `KC` blocking), so a density-1000
    /// sparse bank is bit-identical to its dense counterpart.
    fn gemm_plane(
        &self,
        scratch: &mut GemmScratch,
        uv: usize,
        n: usize,
        b: BOperand<'_>,
        c: &mut [f32],
        timed: bool,
        stats: Option<&ConvStats>,
    ) {
        match self {
            BankRef::Dense(f) => {
                let outcome =
                    crate::gemm::gemm_f32_prepacked(scratch, f.packed_plane(uv), n, b, c, timed);
                if let Some(s) = stats {
                    s.add_gemm(1, outcome.bytes_packed);
                    s.add_gemm_split(outcome.pack_ns, outcome.kernel_ns);
                }
            }
            BankRef::Sparse(f) => {
                sparse_gemm(
                    SparseKernelChoice::Scalar,
                    f.plane(uv),
                    f.in_c(),
                    n,
                    b,
                    c,
                    GemmBlocking::default(),
                );
                if let Some(s) = stats {
                    // No panel packing on the CSR path.
                    s.add_gemm(1, 0);
                }
            }
        }
    }
}

/// Shape-derived state shared by both schedules, resolved once after
/// validation.
struct WinoCtx<'a> {
    input: &'a Tensor<f32>,
    bank: BankRef<'a>,
    threads: usize,
    kernel: KernelChoice,
    timed: bool,
    m: usize,
    alpha: usize,
    aa: usize,
    b_t: Vec<f32>,
    b: Vec<f32>,
    a_t: Vec<f32>,
    a: Vec<f32>,
    batch: usize,
    in_c: usize,
    out_c: usize,
    oh: usize,
    ow: usize,
    pad: isize,
    tiles_w: usize,
    tiles_per_img: usize,
    p_total: usize,
}

/// Schedule-invariant phase accounting: flops and bytes depend only on
/// the layer shape, never on how the work was partitioned, so profiles
/// taken under different schedules (or thread counts) reconcile exactly.
fn add_phase_totals(cx: &WinoCtx<'_>, s: &ConvStats) {
    let (m, alpha, aa) = (cx.m, cx.alpha, cx.aa);
    s.add_tiles(cx.p_total as u64);
    // Scatter, per (tile, channel): two α×α·α×α products (Bᵀ·d, then ·B);
    // input tile elements read + transformed elements written.
    let scatter_flops = (cx.p_total * cx.in_c) as u64 * 4 * (alpha * alpha * alpha) as u64;
    let scatter_bytes = 8 * (cx.p_total * aa * cx.in_c) as u64;
    s.add_phase(ConvPhase::Scatter, scatter_flops, scatter_bytes);
    // GEMM: 2·N·C·P multiply-adds per transform point (dense), or
    // 2·nnz·P for the pruned CSR planes; each operand read once and the
    // transform-domain product written once.
    let a_elems = match cx.bank {
        BankRef::Dense(_) => (aa * cx.out_c * cx.in_c) as u64,
        BankRef::Sparse(f) => f.nnz_total(),
    };
    let gemm_flops = 2 * a_elems * cx.p_total as u64;
    let gemm_bytes =
        4 * (a_elems + (aa * (cx.in_c * cx.p_total + cx.out_c * cx.p_total)) as u64);
    s.add_phase(ConvPhase::Gemm, gemm_flops, gemm_bytes);
    // Gather, per (output channel, tile): Aᵀ·M (m×α·α×α) then ·A (m×α·α×m);
    // transform-domain elements read + output elements written.
    let per_tile = (2 * m * alpha * alpha + 2 * m * m * alpha) as u64;
    let gather_flops = (cx.out_c * cx.p_total) as u64 * per_tile;
    let gather_bytes =
        4 * (aa * cx.out_c * cx.p_total + cx.batch * cx.out_c * cx.oh * cx.ow) as u64;
    s.add_phase(ConvPhase::Gather, gather_flops, gather_bytes);
}

/// [`conv2d_batched`] with explicit [`BatchedOptions`] — the full entry
/// point: schedule pinning for the determinism tests, kernel pinning for
/// the microkernel oracle matrix, tracing for the profiler.
///
/// # Errors
///
/// Same conditions as [`conv2d_batched`].
#[allow(clippy::too_many_arguments)] // the batched entry plus observability
pub fn conv2d_batched_ext(
    input: &Tensor<f32>,
    filters: &BatchedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
    opts: BatchedOptions,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if filters.m != transform.m() || filters.r != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("filter bank for F({},{})", transform.m(), transform.r()),
            found: format!("bank for F({},{})", filters.m, filters.r),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if filters.in_c != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} input channels", filters.in_c),
            found: format!("{}", input.c()),
        });
    }

    run_batched(
        BankRef::Dense(filters),
        filters.out_c,
        input,
        geom,
        transform,
        threads,
        stats,
        prof,
        opts,
    )
}

/// [`conv2d_batched_ext`] for a *sparse* (transform-domain pruned) filter
/// bank: identical scatter and gather, with each transform point's GEMM
/// running the CSR-panel kernel over the pruned plane. At density 1000
/// the output is bit-identical to [`conv2d_batched_ext`] on the dense
/// bank of the same kernels; at lower densities it approximates the
/// dense convolution with the pruning error of the retained
/// coefficients.
///
/// # Errors
///
/// Same conditions as [`conv2d_batched`].
#[allow(clippy::too_many_arguments)] // mirrors the dense batched entry
pub fn conv2d_batched_sparse_ext(
    input: &Tensor<f32>,
    filters: &SparseFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
    opts: BatchedOptions,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if filters.m() != transform.m() || filters.r() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("filter bank for F({},{})", transform.m(), transform.r()),
            found: format!("bank for F({},{})", filters.m(), filters.r()),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if filters.in_c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} input channels", filters.in_c()),
            found: format!("{}", input.c()),
        });
    }
    run_batched(
        BankRef::Sparse(filters),
        filters.out_c(),
        input,
        geom,
        transform,
        threads,
        stats,
        prof,
        opts,
    )
}

/// [`conv2d_batched_sparse_ext`] with default options and no tracing.
///
/// # Errors
///
/// Same conditions as [`conv2d_batched_sparse_ext`].
pub fn conv2d_batched_sparse(
    input: &Tensor<f32>,
    filters: &SparseFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_batched_sparse_ext(
        input,
        filters,
        geom,
        transform,
        threads,
        stats,
        &PoolProfiler::disabled(),
        BatchedOptions::default(),
    )
}

/// Shared post-validation core of the dense and sparse batched paths:
/// resolves the schedule on shape alone and dispatches.
#[allow(clippy::too_many_arguments)]
fn run_batched(
    bank: BankRef<'_>,
    out_c: usize,
    input: &Tensor<f32>,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
    opts: BatchedOptions,
) -> Result<Tensor<f32>, ConvError> {
    let m = transform.m();
    let alpha = transform.alpha();
    let (batch, in_c, _, _) = input.shape();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);
    let tiles_per_img = tiles_h * tiles_w;
    let cx = WinoCtx {
        input,
        bank,
        threads: winofuse_runtime::resolve_threads(threads),
        kernel: opts.kernel.unwrap_or_else(KernelChoice::auto),
        timed: stats.is_some(),
        m,
        alpha,
        aa: alpha * alpha,
        b_t: transform.b_t_f32().as_slice().to_vec(),
        b: transform.b_t_f32().transpose().as_slice().to_vec(),
        a_t: transform.a_t_f32().as_slice().to_vec(),
        a: transform.a_t_f32().transpose().as_slice().to_vec(),
        batch,
        in_c,
        out_c,
        oh,
        ow,
        pad: geom.pad() as isize,
        tiles_w,
        tiles_per_img,
        p_total: batch * tiles_per_img,
    };

    // Resolve `Auto` on shape alone (never on thread count — the schedule
    // must be deterministic for a given layer so profiles reproduce).
    let schedule = match opts.schedule {
        WinoSchedule::Auto => {
            if batch * tiles_per_img.div_ceil(WINO_TILE_BLOCK) >= TILE_BLOCK_MIN_JOBS {
                WinoSchedule::TileBlock
            } else {
                WinoSchedule::TransformPoint
            }
        }
        pinned => pinned,
    };
    let out = match schedule {
        WinoSchedule::TileBlock => run_tile_block(&cx, stats, prof)?,
        _ => run_transform_point(&cx, stats, prof)?,
    };
    if let Some(s) = stats {
        add_phase_totals(&cx, s);
    }
    Ok(out)
}

/// The barrier schedule: three pool invocations (scatter / GEMM / gather)
/// with one GEMM job per transform point. GEMMs run against the bank's
/// pre-packed `A` panels, so no job re-packs filter coefficients.
fn run_transform_point(
    cx: &WinoCtx<'_>,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
) -> Result<Tensor<f32>, ConvError> {
    let (m, alpha, aa) = (cx.m, cx.alpha, cx.aa);
    let (batch, in_c, out_c) = (cx.batch, cx.in_c, cx.out_c);
    let (oh, ow, pad) = (cx.oh, cx.ow, cx.pad);
    let (tiles_w, tiles_per_img, p_total) = (cx.tiles_w, cx.tiles_per_img, cx.p_total);
    let (input, threads) = (cx.input, cx.threads);

    // Phase 1 — scatter: V[p][u·α+v][c] = (Bᵀ·d·B)[u][v] for tile p,
    // channel c. The [p][uv][c] layout makes each tile chunk a contiguous
    // write region.
    let mut v_buf = vec![0.0f32; p_total * aa * in_c];
    {
        let t_phase = stats.map(|_| Instant::now());
        let slices = winofuse_runtime::split_chunks(&mut v_buf, TILE_CHUNK * aa * in_c);
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &prof.scoped("wino.scatter"),
            || (vec![0.0f32; aa], vec![0.0f32; aa], vec![0.0f32; aa]),
            |(d, t1, t2), job, slice| {
                let p0 = job * TILE_CHUNK;
                for (local, chunk) in slice.chunks_exact_mut(aa * in_c).enumerate() {
                    let p = p0 + local;
                    let bn = p / tiles_per_img;
                    let t = p % tiles_per_img;
                    let h0 = ((t / tiles_w) * m) as isize - pad;
                    let w0 = ((t % tiles_w) * m) as isize - pad;
                    for c in 0..in_c {
                        for u in 0..alpha {
                            for v in 0..alpha {
                                d[u * alpha + v] =
                                    input.get_padded(bn, c, h0 + u as isize, w0 + v as isize);
                            }
                        }
                        matmul_flat(&cx.b_t, d, t1, alpha, alpha, alpha);
                        matmul_flat(t1, &cx.b, t2, alpha, alpha, alpha);
                        for uv in 0..aa {
                            chunk[uv * in_c + c] = t2[uv];
                        }
                    }
                }
            },
        )?;
        if let (Some(s), Some(t0)) = (stats, t_phase) {
            s.add_phase_ns(ConvPhase::Scatter, t0.elapsed().as_nanos() as u64);
        }
    }

    // Phase 2 — α² GEMMs: M[uv][k][p] = Σ_c U_uv[k][c] · V_uv[c][p].
    // One job per transform point over the full output-channel range, so
    // each job runs exactly one prepacked GEMM; the [uv][k][p] layout
    // makes each job's rows a contiguous write region.
    let mut m_buf = vec![0.0f32; aa * out_c * p_total];
    {
        let slices = winofuse_runtime::split_chunks(&mut m_buf, out_c * p_total);
        let v_ref = &v_buf;
        let t_phase = stats.map(|_| Instant::now());
        let kernel = cx.kernel;
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &prof.scoped("wino.gemm"),
            move || GemmScratch::with_kernel(kernel),
            |scratch, uv, slice| {
                // B operand: V_uv is [in_c × p_total] with element (c, p)
                // at V[p·α²·in_c + uv·in_c + c].
                let b_op = BOperand::strided(&v_ref[uv * in_c..], 1, aa * in_c);
                cx.bank
                    .gemm_plane(scratch, uv, p_total, b_op, slice, cx.timed, stats);
            },
        )?;
        if let (Some(s), Some(t0)) = (stats, t_phase) {
            s.add_phase_ns(ConvPhase::Gemm, t0.elapsed().as_nanos() as u64);
        }
    }
    drop(v_buf);

    // Phase 3 — gather: Y = Aᵀ·M_tile·A per (output channel, tile), with
    // edge clipping. Jobs are (batch, output-channel block) pairs writing
    // contiguous channel planes of the NCHW output.
    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    {
        let k_blocks: Vec<(usize, usize)> = (0..out_c)
            .step_by(GATHER_K_BLOCK)
            .map(|k0| (k0, GATHER_K_BLOCK.min(out_c - k0)))
            .collect();
        let lengths: Vec<usize> = (0..batch)
            .flat_map(|_| k_blocks.iter().map(|&(_, kb)| kb * oh * ow))
            .collect();
        let slices = winofuse_runtime::split_lengths(out.as_mut_slice(), &lengths);
        let m_ref = &m_buf;
        let t_phase = stats.map(|_| Instant::now());
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &prof.scoped("wino.gather"),
            || {
                (
                    vec![0.0f32; aa],
                    vec![0.0f32; m * alpha],
                    vec![0.0f32; m * m],
                )
            },
            |(m_tile, t1, y), job, slice| {
                let bn = job / k_blocks.len();
                let (k0, kb) = k_blocks[job % k_blocks.len()];
                for k in k0..k0 + kb {
                    let plane = &mut slice[(k - k0) * oh * ow..(k - k0 + 1) * oh * ow];
                    for t in 0..tiles_per_img {
                        let p = bn * tiles_per_img + t;
                        for (uv, slot) in m_tile.iter_mut().enumerate() {
                            *slot = m_ref[(uv * out_c + k) * p_total + p];
                        }
                        matmul_flat(&cx.a_t, m_tile, t1, m, alpha, alpha);
                        matmul_flat(t1, &cx.a, y, m, alpha, m);
                        let (th, tw) = (t / tiles_w, t % tiles_w);
                        for u in 0..m {
                            let oi = th * m + u;
                            if oi >= oh {
                                break;
                            }
                            for v in 0..m {
                                let oj = tw * m + v;
                                if oj >= ow {
                                    break;
                                }
                                plane[oi * ow + oj] = y[u * m + v];
                            }
                        }
                    }
                }
            },
        )?;
        if let (Some(s), Some(t0)) = (stats, t_phase) {
            s.add_phase_ns(ConvPhase::Gather, t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(out)
}

/// Thread-local working set for one tile-block worker: GEMM scratch plus
/// every transform buffer, sized once for the largest block so the fused
/// scatter → GEMM → gather loop never allocates.
struct TileBlockScratch {
    gemm: GemmScratch,
    d: Vec<f32>,
    t1: Vec<f32>,
    t2: Vec<f32>,
    /// Transformed tiles, `[uv][c][t]` with stride = this block's tile
    /// count — the GEMM `B` operand is a contiguous row-major slice per uv.
    v: Vec<f32>,
    /// GEMM results, `[uv][k][t]` with the same stride.
    mbuf: Vec<f32>,
    m_tile: Vec<f32>,
    g1: Vec<f32>,
    y: Vec<f32>,
}

/// The fused schedule: one pool invocation; each job owns a contiguous
/// block of [`WINO_TILE_BLOCK`] tiles within one image and runs
/// scatter → α² prepacked GEMMs → gather over its block with thread-local
/// buffers. No barriers, no shared `V`/`M` round-trips through memory.
///
/// Output ownership: a block's tiles are contiguous in `p`, so within any
/// output row the block owns exactly one contiguous column span —
/// [`winofuse_runtime::split_spans`] hands each job its disjoint set of
/// row fragments, ordered (channel-major, row-minor) in NCHW memory order.
fn run_tile_block(
    cx: &WinoCtx<'_>,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
) -> Result<Tensor<f32>, ConvError> {
    let (m, alpha, aa) = (cx.m, cx.alpha, cx.aa);
    let (batch, in_c, out_c) = (cx.batch, cx.in_c, cx.out_c);
    let (oh, ow, pad) = (cx.oh, cx.ow, cx.pad);
    let (tiles_w, tiles_per_img) = (cx.tiles_w, cx.tiles_per_img);
    let (input, threads, timed) = (cx.input, cx.threads, cx.timed);
    let tb = WINO_TILE_BLOCK;
    let blocks_per_img = tiles_per_img.div_ceil(tb);
    let n_jobs = batch * blocks_per_img;

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    // Carve the NCHW output into per-job fragment sets in memory order.
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(batch * out_c * oh * blocks_per_img);
    for bn in 0..batch {
        for _k in 0..out_c {
            for r in 0..oh {
                let p_row0 = (r / m) * tiles_w;
                let blk_first = p_row0 / tb;
                let blk_last = (p_row0 + tiles_w - 1) / tb;
                for blk in blk_first..=blk_last {
                    let tw_lo = (blk * tb).max(p_row0) - p_row0;
                    let tw_hi = ((blk + 1) * tb).min(p_row0 + tiles_w) - p_row0;
                    let cols = (tw_hi * m).min(ow) - tw_lo * m;
                    spans.push((bn * blocks_per_img + blk, cols));
                }
            }
        }
    }
    let groups = winofuse_runtime::split_spans(out.as_mut_slice(), &spans, n_jobs);

    let kernel = cx.kernel;
    winofuse_runtime::run_grouped_jobs_isolated(
        threads,
        groups,
        &prof.scoped("wino.tileblock"),
        move || TileBlockScratch {
            gemm: GemmScratch::with_kernel(kernel),
            d: vec![0.0; aa],
            t1: vec![0.0; aa],
            t2: vec![0.0; aa],
            v: vec![0.0; aa * in_c * tb],
            mbuf: vec![0.0; aa * out_c * tb],
            m_tile: vec![0.0; aa],
            g1: vec![0.0; m * alpha],
            y: vec![0.0; m * m],
        },
        |st, job, frags| {
            let TileBlockScratch {
                gemm,
                d,
                t1,
                t2,
                v,
                mbuf,
                m_tile,
                g1,
                y,
            } = st;
            let bn = job / blocks_per_img;
            let blk = job % blocks_per_img;
            let p_lo = blk * tb;
            let p_hi = (p_lo + tb).min(tiles_per_img);
            let nt = p_hi - p_lo;
            let v = &mut v[..aa * in_c * nt];
            let mbuf = &mut mbuf[..aa * out_c * nt];
            let t_job = stats.map(|_| Instant::now());

            // Scatter this block's tiles into the thread-local V.
            for t_local in 0..nt {
                let p = p_lo + t_local;
                let h0 = ((p / tiles_w) * m) as isize - pad;
                let w0 = ((p % tiles_w) * m) as isize - pad;
                for c in 0..in_c {
                    for u in 0..alpha {
                        for vv in 0..alpha {
                            d[u * alpha + vv] =
                                input.get_padded(bn, c, h0 + u as isize, w0 + vv as isize);
                        }
                    }
                    matmul_flat(&cx.b_t, d, t1, alpha, alpha, alpha);
                    matmul_flat(t1, &cx.b, t2, alpha, alpha, alpha);
                    for uv in 0..aa {
                        v[(uv * in_c + c) * nt + t_local] = t2[uv];
                    }
                }
            }
            let t_scattered = stats.map(|_| Instant::now());

            // α² prepacked (or CSR) GEMMs over this block's tiles only.
            for uv in 0..aa {
                let b_op = BOperand::row_major(&v[uv * in_c * nt..(uv + 1) * in_c * nt], nt);
                cx.bank.gemm_plane(
                    gemm,
                    uv,
                    nt,
                    b_op,
                    &mut mbuf[uv * out_c * nt..(uv + 1) * out_c * nt],
                    timed,
                    stats,
                );
            }
            let t_gemmed = stats.map(|_| Instant::now());

            // Gather with edge clipping into this job's output fragments,
            // which arrive (k-major, row-minor): frags[k·rows + local_row].
            let th_first = p_lo / tiles_w;
            let th_last = (p_hi - 1) / tiles_w;
            let rows_covered: usize = (th_first..=th_last).map(|th| m.min(oh - th * m)).sum();
            for k in 0..out_c {
                let mut row_base = 0usize;
                for th in th_first..=th_last {
                    let rows_here = m.min(oh - th * m);
                    let p_row0 = th * tiles_w;
                    let tw_lo = p_lo.max(p_row0) - p_row0;
                    let tw_hi = p_hi.min(p_row0 + tiles_w) - p_row0;
                    for tw in tw_lo..tw_hi {
                        let t_local = p_row0 + tw - p_lo;
                        for (uv, slot) in m_tile.iter_mut().enumerate() {
                            *slot = mbuf[(uv * out_c + k) * nt + t_local];
                        }
                        matmul_flat(&cx.a_t, m_tile, g1, m, alpha, alpha);
                        matmul_flat(g1, &cx.a, y, m, alpha, m);
                        let cols = m.min(ow - tw * m);
                        let col0 = (tw - tw_lo) * m;
                        for u in 0..rows_here {
                            frags[k * rows_covered + row_base + u][col0..col0 + cols]
                                .copy_from_slice(&y[u * m..u * m + cols]);
                        }
                    }
                    row_base += rows_here;
                }
            }
            if let (Some(s), Some(t0), Some(ts), Some(tg)) = (stats, t_job, t_scattered, t_gemmed) {
                s.add_phase_ns(ConvPhase::Scatter, (ts - t0).as_nanos() as u64);
                s.add_phase_ns(ConvPhase::Gemm, (tg - ts).as_nanos() as u64);
                s.add_phase_ns(ConvPhase::Gather, tg.elapsed().as_nanos() as u64);
            }
        },
    )?;
    Ok(out)
}

/// Batched `F(4×4, 3×3)` Winograd convolution (transforms the filters on
/// the fly; reuse a [`BatchedFilters`] via [`conv2d_batched`] when running
/// the same layer repeatedly).
///
/// # Errors
///
/// Same conditions as [`conv2d_f43`].
pub fn conv2d_f43_fast(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    threads: usize,
) -> Result<Tensor<f32>, ConvError> {
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }
    let transform = f43();
    let filters = BatchedFilters::new(kernels, &transform)?;
    conv2d_batched(input, &filters, geom, &transform, threads, None)
}

/// Winograd convolution on the 16-bit fixed-point datapath, modeling the
/// hardware's quantization points: transformed filters are stored in
/// Q8.8, the input transform's output is requantized to Q8.8 before the
/// element-wise multipliers, products accumulate in a wide register per
/// tile, and the output transform requantizes once at the end.
///
/// The transform domain is where Winograd loses precision: `Bᵀ·d·B`
/// amplifies the input's dynamic range by the transform constants, which
/// grow with the tile size `m` — the numeric argument for the paper's
/// moderate `F(4×4, 3×3)` choice (see the precision ablation bench).
///
/// # Errors
///
/// Same conditions as [`conv2d_with`].
pub fn conv2d_fix16_with(
    input: &Tensor<crate::fixed::Fix16>,
    kernels: &Tensor<crate::fixed::Fix16>,
    geom: ConvGeometry,
    transform: &WinogradTransform,
) -> Result<Tensor<crate::fixed::Fix16>, ConvError> {
    use crate::fixed::Fix16;

    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }

    // Rebalance the constant magnitudes between the input and filter
    // transforms (free power-of-two shifts in hardware) so neither side
    // underflows Q8.8.
    let transform = transform.rebalanced();
    let m = transform.m();
    let alpha = transform.alpha();
    let b_t = transform.b_t_f32();
    let b = b_t.transpose();
    let a_t = transform.a_t_f32();
    let a = a_t.transpose();
    let g = transform.g_f32();
    let g_t = g.transpose();

    // Offline: transformed filters quantized to Q8.8 (what the BRAM
    // holds).
    let mut banks: Vec<Mat<f32>> = Vec::with_capacity(kernels.n() * kernels.c());
    for n in 0..kernels.n() {
        for c in 0..kernels.c() {
            let gk = Mat::from_fn(transform.r(), transform.r(), |u, v| {
                kernels.get(n, c, u, v).to_f32()
            });
            let u = g.mul(&gk).mul(&g_t);
            banks.push(u.map(|v| Fix16::from_f32(v).to_f32()));
        }
    }

    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let pad = geom.pad() as isize;
    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    let mut v_tiles: Vec<Mat<f32>> = vec![Mat::zeros(alpha, alpha); in_c];

    for bn in 0..batch {
        for th in 0..tiles_h {
            for tw in 0..tiles_w {
                let h0 = (th * m) as isize - pad;
                let w0 = (tw * m) as isize - pad;
                for (c, v_tile) in v_tiles.iter_mut().enumerate() {
                    let d = Mat::from_fn(alpha, alpha, |u, v| {
                        input
                            .get_padded(bn, c, h0 + u as isize, w0 + v as isize)
                            .to_f32()
                    });
                    // Input transform then requantize to the multiplier
                    // width (the precision-critical step).
                    *v_tile = b_t.mul(&d).mul(&b).map(|v| Fix16::from_f32(v).to_f32());
                }
                for n in 0..out_c {
                    // Wide accumulation across channels (DSP cascade).
                    let mut acc = Mat::<f32>::zeros(alpha, alpha);
                    for (c, v_tile) in v_tiles.iter().enumerate() {
                        let prod = banks[n * in_c + c].hadamard(v_tile);
                        acc = Mat::from_fn(alpha, alpha, |u, v| acc.get(u, v) + prod.get(u, v));
                    }
                    let y = a_t.mul(&acc).mul(&a);
                    for u in 0..m {
                        for v in 0..m {
                            let (oi, oj) = (th * m + u, tw * m + v);
                            if oi < oh && oj < ow {
                                out.set(bn, n, oi, oj, Fix16::from_f32(y.get(u, v)));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cook_toom::f23;
    use crate::direct;
    use crate::tensor::random_tensor;

    fn assert_matches_direct(transform: &WinogradTransform, h: usize, w: usize, pad: usize) {
        let r = transform.r();
        let geom = ConvGeometry::rect(h, w, r, 1, pad).unwrap();
        let x = random_tensor(1, 3, h, w, (h * 31 + w) as u64);
        let k = random_tensor(2, 3, r, r, (h + w) as u64);
        let a = direct::conv2d(&x, &k, geom).unwrap();
        let b = conv2d_with(&x, &k, geom, transform).unwrap();
        assert!(
            a.approx_eq(&b, 1e-3),
            "F({},{}) {}x{} pad {}: max diff {}",
            transform.m(),
            r,
            h,
            w,
            pad,
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn f43_matches_direct_exact_tiles() {
        // 8x8 output = exactly 2x2 tiles of 4x4.
        assert_matches_direct(&f43(), 10, 10, 0);
    }

    #[test]
    fn f43_matches_direct_with_padding() {
        assert_matches_direct(&f43(), 12, 12, 1);
    }

    #[test]
    fn f43_matches_direct_partial_tiles() {
        // 7x9 output: ragged tile grid in both dimensions.
        assert_matches_direct(&f43(), 9, 11, 0);
    }

    #[test]
    fn f23_matches_direct() {
        assert_matches_direct(&f23(), 8, 8, 1);
    }

    #[test]
    fn f63_matches_direct() {
        let t = WinogradTransform::generate(6, 3).unwrap();
        assert_matches_direct(&t, 13, 13, 1);
    }

    #[test]
    fn f45_matches_direct() {
        // 5x5 kernels (AlexNet conv2) via F(4,5).
        let t = WinogradTransform::generate(4, 5).unwrap();
        assert_matches_direct(&t, 12, 12, 2);
    }

    #[test]
    fn rejects_stride_two() {
        let geom = ConvGeometry::new(8, 8, 3, 2, 0).unwrap();
        let x = random_tensor(1, 1, 8, 8, 1);
        let k = random_tensor(1, 1, 3, 3, 2);
        assert_eq!(
            conv2d_f43(&x, &k, geom),
            Err(ConvError::StrideUnsupported { stride: 2 })
        );
    }

    #[test]
    fn rejects_kernel_transform_mismatch() {
        let geom = ConvGeometry::new(8, 8, 5, 1, 2).unwrap();
        let x = random_tensor(1, 1, 8, 8, 1);
        let k = random_tensor(1, 1, 5, 5, 2);
        assert!(conv2d_f43(&x, &k, geom).is_err());
    }

    #[test]
    fn pretransformed_filters_reusable() {
        let t = f43();
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let k = random_tensor(2, 2, 3, 3, 5);
        let filters = TransformedFilters::new(&k, &t).unwrap();
        for seed in 0..3 {
            let x = random_tensor(1, 2, 8, 8, seed + 100);
            let a = conv2d_pretransformed(&x, &filters, geom, &t).unwrap();
            let b = direct::conv2d(&x, &k, geom).unwrap();
            assert!(a.approx_eq(&b, 1e-3));
        }
    }

    #[test]
    fn fixed_point_winograd_tracks_direct_fixed() {
        use crate::direct;
        use crate::fixed::Fix16;
        let geom = ConvGeometry::new(12, 12, 3, 1, 1).unwrap();
        let xf = random_tensor(1, 3, 12, 12, 21);
        let kf = random_tensor(2, 3, 3, 3, 22);
        let xq: crate::tensor::Tensor<Fix16> = xf.cast();
        let kq: crate::tensor::Tensor<Fix16> = kf.cast();
        let gold = direct::conv2d_fix16(&xq, &kq, geom).unwrap();
        let wino = conv2d_fix16_with(&xq, &kq, geom, &f43()).unwrap();
        let gf: crate::tensor::Tensor<f32> = gold.cast();
        let wf: crate::tensor::Tensor<f32> = wino.cast();
        // Transform-domain quantization adds error beyond direct fixed
        // point: the output transform Aᵀ·M·A (entries up to ±8 for
        // F(4,3)) amplifies the Q8.8 rounding of V and U by roughly
        // (Σ|Aᵀ|)² ≈ 200×, giving a few tenths on [-1,1) data — the known
        // cost of running Winograd at the paper's activation precision
        // (real designs widen the transform-domain format or block-scale).
        let diff = gf.max_abs_diff(&wf).unwrap();
        assert!(diff < 0.6, "fixed winograd error {diff}");
        // The rebalanced transforms keep it far from the unusable ~7.6
        // that naive (un-rebalanced) Cook-Toom scaling produces.
        assert!(diff > 0.0);
    }

    #[test]
    fn fixed_point_error_grows_with_tile_size() {
        use crate::direct;
        use crate::fixed::Fix16;
        let geom = ConvGeometry::new(24, 24, 3, 1, 1).unwrap();
        let xf = random_tensor(1, 4, 24, 24, 31);
        let kf = random_tensor(4, 4, 3, 3, 32);
        let xq: crate::tensor::Tensor<Fix16> = xf.cast();
        let kq: crate::tensor::Tensor<Fix16> = kf.cast();
        let gold: crate::tensor::Tensor<f32> = direct::conv2d_fix16(&xq, &kq, geom).unwrap().cast();
        let err_of = |m: usize| -> f32 {
            let t = WinogradTransform::generate(m, 3).unwrap();
            let y: crate::tensor::Tensor<f32> =
                conv2d_fix16_with(&xq, &kq, geom, &t).unwrap().cast();
            gold.max_abs_diff(&y).unwrap()
        };
        let (e2, e6) = (err_of(2), err_of(6));
        assert!(
            e6 > e2,
            "bigger tiles amplify transform-domain error: F(2,3)={e2}, F(6,3)={e6}"
        );
    }

    #[test]
    fn filter_bank_shape_checked() {
        let t = f43();
        let k = random_tensor(1, 1, 5, 5, 1);
        assert!(TransformedFilters::new(&k, &t).is_err());
    }

    #[test]
    fn batched_matches_naive_winograd() {
        // Ragged tile grid, padding, channel counts that straddle the GEMM
        // register tile.
        for &(h, w, pad, in_c, out_c) in &[
            (9usize, 11usize, 0usize, 3usize, 2usize),
            (12, 12, 1, 5, 7),
            (6, 6, 2, 1, 1),
            (13, 7, 1, 4, 9),
        ] {
            let geom = ConvGeometry::rect(h, w, 3, 1, pad).unwrap();
            let x = random_tensor(2, in_c, h, w, (h * 131 + w) as u64);
            let k = random_tensor(out_c, in_c, 3, 3, (h + w + pad) as u64);
            let naive = conv2d_f43(&x, &k, geom).unwrap();
            let fast = conv2d_f43_fast(&x, &k, geom, 1).unwrap();
            let diff = naive.max_abs_diff(&fast).unwrap();
            assert!(
                diff < 1e-4,
                "{h}x{w} pad {pad} {in_c}->{out_c}: diff {diff}"
            );
        }
    }

    #[test]
    fn batched_is_thread_count_invariant() {
        let geom = ConvGeometry::rect(17, 13, 3, 1, 1).unwrap();
        let x = random_tensor(1, 6, 17, 13, 91);
        let k = random_tensor(10, 6, 3, 3, 92);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let base = conv2d_batched(&x, &filters, geom, &t, 1, None).unwrap();
        for threads in [2usize, 4, 8] {
            let y = conv2d_batched(&x, &filters, geom, &t, threads, None).unwrap();
            assert_eq!(y, base, "{threads}-thread batched winograd differs");
        }
    }

    #[test]
    fn batched_counts_tiles_and_gemms() {
        let geom = ConvGeometry::rect(12, 12, 3, 1, 1).unwrap();
        let x = random_tensor(1, 2, 12, 12, 5);
        let k = random_tensor(3, 2, 3, 3, 6);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let stats = ConvStats::new();
        conv2d_batched(&x, &filters, geom, &t, 1, Some(&stats)).unwrap();
        let (gemm_calls, tiles, bytes) = stats.snapshot();
        // 12x12 output over 4x4 tiles = 3x3 tiles; 36 transform points with
        // out_c=3 fit one GEMM job each.
        assert_eq!(tiles, 9);
        assert_eq!(gemm_calls, 36);
        assert!(bytes > 0);
    }

    #[test]
    fn tile_block_matches_transform_point_bitwise() {
        // Big enough for several tile blocks per image, ragged in both
        // dimensions so blocks straddle partial tiles and row boundaries.
        let geom = ConvGeometry::rect(37, 29, 3, 1, 1).unwrap();
        let x = random_tensor(2, 5, 37, 29, 71);
        let k = random_tensor(9, 5, 3, 3, 72);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let tp = BatchedOptions {
            schedule: WinoSchedule::TransformPoint,
            kernel: None,
        };
        let tb = BatchedOptions {
            schedule: WinoSchedule::TileBlock,
            kernel: None,
        };
        let prof = PoolProfiler::disabled();
        let base = conv2d_batched_ext(&x, &filters, geom, &t, 1, None, &prof, tp).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let y = conv2d_batched_ext(&x, &filters, geom, &t, threads, None, &prof, tb).unwrap();
            assert_eq!(y, base, "tile-block @ {threads} threads differs");
        }
    }

    #[test]
    fn tile_block_handles_tiny_blocks() {
        // Fewer tiles than one block: a single job owning a partial block.
        let geom = ConvGeometry::rect(6, 6, 3, 1, 1).unwrap();
        let x = random_tensor(1, 2, 6, 6, 81);
        let k = random_tensor(3, 2, 3, 3, 82);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let tb = BatchedOptions {
            schedule: WinoSchedule::TileBlock,
            kernel: None,
        };
        let prof = PoolProfiler::disabled();
        let y = conv2d_batched_ext(&x, &filters, geom, &t, 2, None, &prof, tb).unwrap();
        let reference = direct::conv2d(&x, &k, geom).unwrap();
        assert!(reference.approx_eq(&y, 1e-3));
    }

    #[test]
    fn auto_picks_tile_block_when_tiles_abound() {
        // 24x24 → 6x6 tiles/image; two images → four 32-tile-capped blocks,
        // each running α² = 36 GEMMs.
        let geom = ConvGeometry::rect(24, 24, 3, 1, 1).unwrap();
        let x = random_tensor(2, 3, 24, 24, 7);
        let k = random_tensor(4, 3, 3, 3, 8);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let stats = ConvStats::new();
        conv2d_batched(&x, &filters, geom, &t, 1, Some(&stats)).unwrap();
        let (gemm_calls, tiles, _) = stats.snapshot();
        assert_eq!(tiles, 72);
        assert_eq!(gemm_calls, 144);
    }

    #[test]
    fn phase_accounting_is_schedule_invariant() {
        let geom = ConvGeometry::rect(24, 20, 3, 1, 1).unwrap();
        let x = random_tensor(1, 4, 24, 20, 17);
        let k = random_tensor(6, 4, 3, 3, 18);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let prof = PoolProfiler::disabled();
        let snap = |schedule: WinoSchedule| {
            let stats = ConvStats::new();
            let opts = BatchedOptions {
                schedule,
                kernel: None,
            };
            conv2d_batched_ext(&x, &filters, geom, &t, 2, Some(&stats), &prof, opts).unwrap();
            stats.profile()
        };
        let a = snap(WinoSchedule::TransformPoint);
        let b = snap(WinoSchedule::TileBlock);
        assert_eq!(a.flops_scatter, b.flops_scatter);
        assert_eq!(a.flops_gemm, b.flops_gemm);
        assert_eq!(a.flops_gather, b.flops_gather);
        assert_eq!(a.bytes_scatter, b.bytes_scatter);
        assert_eq!(a.bytes_gemm, b.bytes_gemm);
        assert_eq!(a.bytes_gather, b.bytes_gather);
        assert_eq!(a.tiles, b.tiles);
    }

    #[test]
    fn batched_rejects_mismatched_transform() {
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let x = random_tensor(1, 2, 8, 8, 1);
        let k = random_tensor(2, 2, 3, 3, 2);
        let filters = BatchedFilters::new(&k, &f43()).unwrap();
        assert!(conv2d_batched(&x, &filters, geom, &f23(), 1, None).is_err());
        let strided = ConvGeometry::new(8, 8, 3, 2, 0).unwrap();
        assert_eq!(
            conv2d_batched(&x, &filters, strided, &f43(), 1, None),
            Err(ConvError::StrideUnsupported { stride: 2 })
        );
    }

    #[test]
    fn batched_works_for_other_tile_sizes() {
        // The batching is generic over the transform, not F(4,3)-specific.
        let t = f23();
        let geom = ConvGeometry::rect(9, 9, 3, 1, 1).unwrap();
        let x = random_tensor(1, 3, 9, 9, 41);
        let k = random_tensor(4, 3, 3, 3, 42);
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let fast = conv2d_batched(&x, &filters, geom, &t, 2, None).unwrap();
        let reference = direct::conv2d(&x, &k, geom).unwrap();
        assert!(reference.approx_eq(&fast, 1e-3));
    }
}
