//! Tiled 2-D Winograd convolution `F(m×m, r×r)` over feature-map tensors.
//!
//! Each input feature map is divided into `(m+r−1)×(m+r−1)` tiles with an
//! `r−1` overlap; `F(m×m, r×r)` is evaluated per tile per channel and the
//! per-channel results accumulate into an `m×m` output tile (§2.1 of the
//! paper). Stride must be 1 — the framework's optimizer falls back to the
//! conventional algorithm otherwise, exactly as the paper does.

use crate::cook_toom::{f43, WinogradTransform};
use crate::gemm::{BOperand, ConvPhase, ConvStats, GemmBlocking, GemmScratch};
use crate::matrix::Mat;
use crate::tensor::Tensor;
use crate::{ConvError, ConvGeometry};
use std::time::Instant;
use winofuse_runtime::PoolProfiler;

/// Transformed filter bank: `U[n][c] = G·g·Gᵀ` for every (output channel,
/// input channel) pair, precomputed once per layer.
///
/// In hardware this happens offline (the bitstream ships transformed
/// weights); exposing it separately lets benches measure the online and
/// offline costs independently.
#[derive(Debug, Clone)]
pub struct TransformedFilters {
    alpha: usize,
    out_c: usize,
    in_c: usize,
    /// `out_c · in_c` matrices of shape `α × α`, row-major by (n, c).
    banks: Vec<Mat<f32>>,
}

impl TransformedFilters {
    /// Transforms a kernel tensor (`N×C×r×r`) with the given transform.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::ShapeMismatch`] when the kernel spatial size is
    /// not `r × r`.
    pub fn new(kernels: &Tensor<f32>, transform: &WinogradTransform) -> Result<Self, ConvError> {
        let r = transform.r();
        if kernels.h() != r || kernels.w() != r {
            return Err(ConvError::ShapeMismatch {
                expected: format!("{r}x{r} kernels for F({},{})", transform.m(), r),
                found: format!("{}x{}", kernels.h(), kernels.w()),
            });
        }
        let g = transform.g_f32();
        let g_t = g.transpose();
        let alpha = transform.alpha();
        // Scratch for the G·g and g itself is hoisted out of the channel
        // loop: the only per-(n, c) allocation is the stored bank.
        let mut gk = Mat::<f32>::zeros(r, r);
        let mut g_gk = Mat::<f32>::zeros(alpha, r);
        let mut banks = Vec::with_capacity(kernels.n() * kernels.c());
        for n in 0..kernels.n() {
            for c in 0..kernels.c() {
                for u in 0..r {
                    for v in 0..r {
                        gk.set(u, v, kernels.get(n, c, u, v));
                    }
                }
                g.mul_into(&gk, &mut g_gk);
                let mut bank = Mat::<f32>::zeros(alpha, alpha);
                g_gk.mul_into(&g_t, &mut bank);
                banks.push(bank);
            }
        }
        Ok(TransformedFilters {
            alpha: transform.alpha(),
            out_c: kernels.n(),
            in_c: kernels.c(),
            banks,
        })
    }

    /// The transformed `α×α` bank for output channel `n`, input channel `c`.
    ///
    /// # Panics
    ///
    /// Panics when channel indices are out of range.
    pub fn bank(&self, n: usize, c: usize) -> &Mat<f32> {
        assert!(n < self.out_c && c < self.in_c);
        &self.banks[n * self.in_c + c]
    }

    /// Tile side `α` of the transformed banks.
    pub fn alpha(&self) -> usize {
        self.alpha
    }
}

/// Winograd convolution with an explicit transform (any generated
/// `F(m, r)`).
///
/// # Errors
///
/// * [`ConvError::StrideUnsupported`] when `geom.stride() != 1`,
/// * [`ConvError::ShapeMismatch`] when shapes disagree with `geom` or the
///   kernel size differs from the transform's `r`.
pub fn conv2d_with(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    transform: &WinogradTransform,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }

    let filters = TransformedFilters::new(kernels, transform)?;
    conv2d_pretransformed(input, &filters, geom, transform)
}

/// Winograd convolution reusing an already-transformed filter bank.
///
/// # Errors
///
/// Same conditions as [`conv2d_with`]; additionally the filter bank must
/// have been built with the same transform (checked via `α`).
pub fn conv2d_pretransformed(
    input: &Tensor<f32>,
    filters: &TransformedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if filters.alpha() != transform.alpha() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("filter bank with alpha {}", transform.alpha()),
            found: format!("alpha {}", filters.alpha()),
        });
    }
    if filters.in_c != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} input channels", filters.in_c),
            found: format!("{}", input.c()),
        });
    }

    let m = transform.m();
    let alpha = transform.alpha();
    let b_t = transform.b_t_f32();
    let b = b_t.transpose();
    let a_t = transform.a_t_f32();
    let a = a_t.transpose();

    let (batch, in_c, _, _) = input.shape();
    let out_c = filters.out_c;
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let pad = geom.pad() as isize;

    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    // Scratch: transformed input tiles for all channels at one position.
    let mut v_tiles: Vec<Mat<f32>> = vec![Mat::zeros(alpha, alpha); in_c];

    for bn in 0..batch {
        for th in 0..tiles_h {
            for tw in 0..tiles_w {
                let h0 = (th * m) as isize - pad;
                let w0 = (tw * m) as isize - pad;
                // Input transforms V = Bᵀ·d·B for every channel.
                for (c, v_tile) in v_tiles.iter_mut().enumerate() {
                    let d = Mat::from_fn(alpha, alpha, |u, v| {
                        input.get_padded(bn, c, h0 + u as isize, w0 + v as isize)
                    });
                    *v_tile = b_t.mul(&d).mul(&b);
                }
                for n in 0..out_c {
                    // M = Σ_c U[n][c] ⊙ V[c]
                    let mut acc = Mat::<f32>::zeros(alpha, alpha);
                    for (c, v_tile) in v_tiles.iter().enumerate() {
                        let prod = filters.bank(n, c).hadamard(v_tile);
                        acc = Mat::from_fn(alpha, alpha, |u, v| acc.get(u, v) + prod.get(u, v));
                    }
                    // Y = Aᵀ·M·A, scattered with edge clipping.
                    let y = a_t.mul(&acc).mul(&a);
                    for u in 0..m {
                        for v in 0..m {
                            let oh_i = th * m + u;
                            let ow_i = tw * m + v;
                            if oh_i < oh && ow_i < ow {
                                out.set(bn, n, oh_i, ow_i, y.get(u, v));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Winograd convolution with the paper's uniform tile choice
/// `F(4×4, 3×3)` (§2.1: "we use a uniform size F(4×4, 3×3)").
///
/// # Errors
///
/// Same conditions as [`conv2d_with`]; the kernel must be 3×3 and stride 1.
///
/// # Examples
///
/// ```
/// use winofuse_conv::{direct, winograd, tensor::random_tensor, ConvGeometry};
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let geom = ConvGeometry::new(12, 12, 3, 1, 1)?;
/// let x = random_tensor(1, 4, 12, 12, 1);
/// let w = random_tensor(8, 4, 3, 3, 2);
/// let reference = direct::conv2d(&x, &w, geom)?;
/// let fast = winograd::conv2d_f43(&x, &w, geom)?;
/// assert!(reference.approx_eq(&fast, 1e-3));
/// # Ok(())
/// # }
/// ```
pub fn conv2d_f43(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_with(input, kernels, geom, &f43())
}

/// Input tiles scattered per job in the batched path (sizes the phase-1
/// write regions; results never depend on it).
const TILE_CHUNK: usize = 32;
/// Output-channel rows per GEMM job in the batched path.
const GEMM_K_BLOCK: usize = 32;
/// Output channels per gather job in the batched path.
const GATHER_K_BLOCK: usize = 16;

/// Filter bank laid out for batched Winograd-as-GEMM: one
/// `out_c × in_c` row-major GEMM operand per transform-domain point
/// `(u, v)`, so the α² element-wise products over all tiles collapse into
/// α² matrix multiplies (Lavin's formulation; the same structure WinoCNN
/// maps onto a systolic array).
#[derive(Debug, Clone)]
pub struct BatchedFilters {
    m: usize,
    r: usize,
    alpha: usize,
    out_c: usize,
    in_c: usize,
    /// `planes[u·α + v][k·in_c + c] = (G·g_{k,c}·Gᵀ)[u][v]`.
    planes: Vec<Vec<f32>>,
}

impl BatchedFilters {
    /// Transforms and repacks a kernel tensor (`N×C×r×r`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransformedFilters::new`].
    pub fn new(kernels: &Tensor<f32>, transform: &WinogradTransform) -> Result<Self, ConvError> {
        let banks = TransformedFilters::new(kernels, transform)?;
        let (out_c, in_c) = (kernels.n(), kernels.c());
        let alpha = transform.alpha();
        let aa = alpha * alpha;
        let mut planes = vec![vec![0.0f32; out_c * in_c]; aa];
        for k in 0..out_c {
            for c in 0..in_c {
                let bank = banks.bank(k, c).as_slice();
                for (uv, plane) in planes.iter_mut().enumerate() {
                    plane[k * in_c + c] = bank[uv];
                }
            }
        }
        Ok(BatchedFilters {
            m: transform.m(),
            r: transform.r(),
            alpha,
            out_c,
            in_c,
            planes,
        })
    }

    /// Output channels.
    pub fn out_c(&self) -> usize {
        self.out_c
    }

    /// Input channels.
    pub fn in_c(&self) -> usize {
        self.in_c
    }

    /// Tile side `α` of the transform the bank was built with.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Total transformed coefficients held by the bank (`α²·N·C`) — the
    /// element count an accelerator streaming this bank would transfer.
    pub fn coefficients(&self) -> usize {
        self.planes.len() * self.out_c * self.in_c
    }
}

/// `out[n×p] = a[n×k] · b[k×p]` on flat row-major buffers — the
/// transform-sized (≤ α×α) matmul used inside scatter/gather workers, free
/// of per-call allocation.
fn matmul_flat(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, p: usize) {
    for i in 0..n {
        for j in 0..p {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * p + j];
            }
            out[i * p + j] = acc;
        }
    }
}

/// Batched Winograd convolution: scatter (input transforms into a
/// `[tiles × in_c]` matrix per transform point), α² GEMMs against the
/// repacked filter planes, gather (output transforms with edge clipping).
/// All three phases run on the shared worker pool; `threads == 0` means
/// auto-detect, `1` runs inline.
///
/// Results are bit-identical for any thread count: jobs partition the
/// tile/channel space in fixed-size blocks whose contents and accumulation
/// order never depend on the worker count.
///
/// # Errors
///
/// Same conditions as [`conv2d_pretransformed`]; the filter bank must have
/// been built with the same transform.
pub fn conv2d_batched(
    input: &Tensor<f32>,
    filters: &BatchedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_batched_traced(
        input,
        filters,
        geom,
        transform,
        threads,
        stats,
        &PoolProfiler::disabled(),
    )
}

/// [`conv2d_batched`] with worker-lane tracing: each phase's jobs are
/// emitted as Chrome-trace slices on per-worker lanes via `prof` (scoped
/// to `wino.scatter` / `wino.gemm` / `wino.gather`), and when `stats` is
/// supplied, per-phase wall times and the GEMM pack-vs-microkernel split
/// are recorded alongside the exact flop/byte accounting.
///
/// # Errors
///
/// Same conditions as [`conv2d_batched`].
#[allow(clippy::too_many_arguments)] // the batched entry plus observability
pub fn conv2d_batched_traced(
    input: &Tensor<f32>,
    filters: &BatchedFilters,
    geom: ConvGeometry,
    transform: &WinogradTransform,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
) -> Result<Tensor<f32>, ConvError> {
    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if filters.m != transform.m() || filters.r != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("filter bank for F({},{})", transform.m(), transform.r()),
            found: format!("bank for F({},{})", filters.m, filters.r),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if filters.in_c != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} input channels", filters.in_c),
            found: format!("{}", input.c()),
        });
    }

    let threads = winofuse_runtime::resolve_threads(threads);
    let m = transform.m();
    let alpha = transform.alpha();
    let aa = alpha * alpha;
    let b_t: Vec<f32> = transform.b_t_f32().as_slice().to_vec();
    let b: Vec<f32> = transform.b_t_f32().transpose().as_slice().to_vec();
    let a_t: Vec<f32> = transform.a_t_f32().as_slice().to_vec();
    let a: Vec<f32> = transform.a_t_f32().transpose().as_slice().to_vec();

    let (batch, in_c, _, _) = input.shape();
    let out_c = filters.out_c;
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let pad = geom.pad() as isize;
    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);
    let tiles_per_img = tiles_h * tiles_w;
    let p_total = batch * tiles_per_img;

    // Phase 1 — scatter: V[p][u·α+v][c] = (Bᵀ·d·B)[u][v] for tile p,
    // channel c. The [p][uv][c] layout makes each tile chunk a contiguous
    // write region.
    let mut v_buf = vec![0.0f32; p_total * aa * in_c];
    {
        let t_phase = stats.map(|_| Instant::now());
        let slices = winofuse_runtime::split_chunks(&mut v_buf, TILE_CHUNK * aa * in_c);
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &prof.scoped("wino.scatter"),
            || (vec![0.0f32; aa], vec![0.0f32; aa], vec![0.0f32; aa]),
            |(d, t1, t2), job, slice| {
                let p0 = job * TILE_CHUNK;
                for (local, chunk) in slice.chunks_exact_mut(aa * in_c).enumerate() {
                    let p = p0 + local;
                    let bn = p / tiles_per_img;
                    let t = p % tiles_per_img;
                    let h0 = ((t / tiles_w) * m) as isize - pad;
                    let w0 = ((t % tiles_w) * m) as isize - pad;
                    for c in 0..in_c {
                        for u in 0..alpha {
                            for v in 0..alpha {
                                d[u * alpha + v] =
                                    input.get_padded(bn, c, h0 + u as isize, w0 + v as isize);
                            }
                        }
                        matmul_flat(&b_t, d, t1, alpha, alpha, alpha);
                        matmul_flat(t1, &b, t2, alpha, alpha, alpha);
                        for uv in 0..aa {
                            chunk[uv * in_c + c] = t2[uv];
                        }
                    }
                }
            },
        )?;
        if let Some(s) = stats {
            s.add_tiles(p_total as u64);
            // Per (tile, channel): two α×α·α×α products (Bᵀ·d, then ·B).
            let flops = (p_total * in_c) as u64 * 4 * (alpha * alpha * alpha) as u64;
            // Input tile elements read + transformed elements written.
            let bytes = 8 * (p_total * aa * in_c) as u64;
            s.add_phase(ConvPhase::Scatter, flops, bytes);
            s.add_phase_ns(
                ConvPhase::Scatter,
                t_phase.expect("timed with stats").elapsed().as_nanos() as u64,
            );
        }
    }

    // Phase 2 — α² GEMMs: M[uv][k][p] = Σ_c U_uv[k][c] · V_uv[c][p].
    // Jobs are (uv, output-channel block) pairs; the [uv][k][p] layout
    // makes each job's rows a contiguous write region.
    let mut m_buf = vec![0.0f32; aa * out_c * p_total];
    {
        let k_blocks: Vec<(usize, usize)> = (0..out_c)
            .step_by(GEMM_K_BLOCK)
            .map(|k0| (k0, GEMM_K_BLOCK.min(out_c - k0)))
            .collect();
        let lengths: Vec<usize> = (0..aa)
            .flat_map(|_| k_blocks.iter().map(|&(_, kb)| kb * p_total))
            .collect();
        let slices = winofuse_runtime::split_lengths(&mut m_buf, &lengths);
        let v_ref = &v_buf;
        let blocking = GemmBlocking::default();
        let t_phase = stats.map(|_| Instant::now());
        let timed = stats.is_some();
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &prof.scoped("wino.gemm"),
            GemmScratch::new,
            |scratch, job, slice| {
                let uv = job / k_blocks.len();
                let (k0, kb) = k_blocks[job % k_blocks.len()];
                // B operand: V_uv is [in_c × p_total] with element (c, p)
                // at V[p·α²·in_c + uv·in_c + c].
                let b_op = BOperand::strided(&v_ref[uv * in_c..], 1, aa * in_c);
                let outcome = crate::gemm::gemm_f32_profiled(
                    scratch,
                    blocking,
                    kb,
                    in_c,
                    p_total,
                    &filters.planes[uv][k0 * in_c..(k0 + kb) * in_c],
                    b_op,
                    slice,
                    timed,
                );
                if let Some(s) = stats {
                    s.add_gemm(1, outcome.bytes_packed);
                    // Operands read + result rows written by this job.
                    let bytes = 4 * (kb * in_c + in_c * p_total + kb * p_total) as u64;
                    s.add_phase(ConvPhase::Gemm, outcome.flops, bytes);
                    s.add_gemm_split(outcome.pack_ns, outcome.kernel_ns);
                }
            },
        )?;
        if let (Some(s), Some(t0)) = (stats, t_phase) {
            s.add_phase_ns(ConvPhase::Gemm, t0.elapsed().as_nanos() as u64);
        }
    }
    drop(v_buf);

    // Phase 3 — gather: Y = Aᵀ·M_tile·A per (output channel, tile), with
    // edge clipping. Jobs are (batch, output-channel block) pairs writing
    // contiguous channel planes of the NCHW output.
    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    {
        let k_blocks: Vec<(usize, usize)> = (0..out_c)
            .step_by(GATHER_K_BLOCK)
            .map(|k0| (k0, GATHER_K_BLOCK.min(out_c - k0)))
            .collect();
        let lengths: Vec<usize> = (0..batch)
            .flat_map(|_| k_blocks.iter().map(|&(_, kb)| kb * oh * ow))
            .collect();
        let slices = winofuse_runtime::split_lengths(out.as_mut_slice(), &lengths);
        let m_ref = &m_buf;
        let t_phase = stats.map(|_| Instant::now());
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &prof.scoped("wino.gather"),
            || {
                (
                    vec![0.0f32; aa],
                    vec![0.0f32; m * alpha],
                    vec![0.0f32; m * m],
                )
            },
            |(m_tile, t1, y), job, slice| {
                let bn = job / k_blocks.len();
                let (k0, kb) = k_blocks[job % k_blocks.len()];
                for k in k0..k0 + kb {
                    let plane = &mut slice[(k - k0) * oh * ow..(k - k0 + 1) * oh * ow];
                    for t in 0..tiles_per_img {
                        let p = bn * tiles_per_img + t;
                        for (uv, slot) in m_tile.iter_mut().enumerate() {
                            *slot = m_ref[(uv * out_c + k) * p_total + p];
                        }
                        matmul_flat(&a_t, m_tile, t1, m, alpha, alpha);
                        matmul_flat(t1, &a, y, m, alpha, m);
                        let (th, tw) = (t / tiles_w, t % tiles_w);
                        for u in 0..m {
                            let oi = th * m + u;
                            if oi >= oh {
                                break;
                            }
                            for v in 0..m {
                                let oj = tw * m + v;
                                if oj >= ow {
                                    break;
                                }
                                plane[oi * ow + oj] = y[u * m + v];
                            }
                        }
                    }
                }
            },
        )?;
        if let Some(s) = stats {
            // Per (output channel, tile): Aᵀ·M (m×α · α×α) then ·A (m×α · α×m).
            let per_tile = (2 * m * alpha * alpha + 2 * m * m * alpha) as u64;
            let flops = (out_c * p_total) as u64 * per_tile;
            // Transform-domain elements read + output elements written.
            let bytes = 4 * (aa * out_c * p_total + batch * out_c * oh * ow) as u64;
            s.add_phase(ConvPhase::Gather, flops, bytes);
            s.add_phase_ns(
                ConvPhase::Gather,
                t_phase.expect("timed with stats").elapsed().as_nanos() as u64,
            );
        }
    }
    Ok(out)
}

/// Batched `F(4×4, 3×3)` Winograd convolution (transforms the filters on
/// the fly; reuse a [`BatchedFilters`] via [`conv2d_batched`] when running
/// the same layer repeatedly).
///
/// # Errors
///
/// Same conditions as [`conv2d_f43`].
pub fn conv2d_f43_fast(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    threads: usize,
) -> Result<Tensor<f32>, ConvError> {
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }
    let transform = f43();
    let filters = BatchedFilters::new(kernels, &transform)?;
    conv2d_batched(input, &filters, geom, &transform, threads, None)
}

/// Winograd convolution on the 16-bit fixed-point datapath, modeling the
/// hardware's quantization points: transformed filters are stored in
/// Q8.8, the input transform's output is requantized to Q8.8 before the
/// element-wise multipliers, products accumulate in a wide register per
/// tile, and the output transform requantizes once at the end.
///
/// The transform domain is where Winograd loses precision: `Bᵀ·d·B`
/// amplifies the input's dynamic range by the transform constants, which
/// grow with the tile size `m` — the numeric argument for the paper's
/// moderate `F(4×4, 3×3)` choice (see the precision ablation bench).
///
/// # Errors
///
/// Same conditions as [`conv2d_with`].
pub fn conv2d_fix16_with(
    input: &Tensor<crate::fixed::Fix16>,
    kernels: &Tensor<crate::fixed::Fix16>,
    geom: ConvGeometry,
    transform: &WinogradTransform,
) -> Result<Tensor<crate::fixed::Fix16>, ConvError> {
    use crate::fixed::Fix16;

    if geom.stride() != 1 {
        return Err(ConvError::StrideUnsupported {
            stride: geom.stride(),
        });
    }
    if geom.kernel() != transform.r() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel size {} for this transform", transform.r()),
            found: format!("{}", geom.kernel()),
        });
    }
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }

    // Rebalance the constant magnitudes between the input and filter
    // transforms (free power-of-two shifts in hardware) so neither side
    // underflows Q8.8.
    let transform = transform.rebalanced();
    let m = transform.m();
    let alpha = transform.alpha();
    let b_t = transform.b_t_f32();
    let b = b_t.transpose();
    let a_t = transform.a_t_f32();
    let a = a_t.transpose();
    let g = transform.g_f32();
    let g_t = g.transpose();

    // Offline: transformed filters quantized to Q8.8 (what the BRAM
    // holds).
    let mut banks: Vec<Mat<f32>> = Vec::with_capacity(kernels.n() * kernels.c());
    for n in 0..kernels.n() {
        for c in 0..kernels.c() {
            let gk = Mat::from_fn(transform.r(), transform.r(), |u, v| {
                kernels.get(n, c, u, v).to_f32()
            });
            let u = g.mul(&gk).mul(&g_t);
            banks.push(u.map(|v| Fix16::from_f32(v).to_f32()));
        }
    }

    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let pad = geom.pad() as isize;
    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    let mut v_tiles: Vec<Mat<f32>> = vec![Mat::zeros(alpha, alpha); in_c];

    for bn in 0..batch {
        for th in 0..tiles_h {
            for tw in 0..tiles_w {
                let h0 = (th * m) as isize - pad;
                let w0 = (tw * m) as isize - pad;
                for (c, v_tile) in v_tiles.iter_mut().enumerate() {
                    let d = Mat::from_fn(alpha, alpha, |u, v| {
                        input
                            .get_padded(bn, c, h0 + u as isize, w0 + v as isize)
                            .to_f32()
                    });
                    // Input transform then requantize to the multiplier
                    // width (the precision-critical step).
                    *v_tile = b_t.mul(&d).mul(&b).map(|v| Fix16::from_f32(v).to_f32());
                }
                for n in 0..out_c {
                    // Wide accumulation across channels (DSP cascade).
                    let mut acc = Mat::<f32>::zeros(alpha, alpha);
                    for (c, v_tile) in v_tiles.iter().enumerate() {
                        let prod = banks[n * in_c + c].hadamard(v_tile);
                        acc = Mat::from_fn(alpha, alpha, |u, v| acc.get(u, v) + prod.get(u, v));
                    }
                    let y = a_t.mul(&acc).mul(&a);
                    for u in 0..m {
                        for v in 0..m {
                            let (oi, oj) = (th * m + u, tw * m + v);
                            if oi < oh && oj < ow {
                                out.set(bn, n, oi, oj, Fix16::from_f32(y.get(u, v)));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cook_toom::f23;
    use crate::direct;
    use crate::tensor::random_tensor;

    fn assert_matches_direct(transform: &WinogradTransform, h: usize, w: usize, pad: usize) {
        let r = transform.r();
        let geom = ConvGeometry::rect(h, w, r, 1, pad).unwrap();
        let x = random_tensor(1, 3, h, w, (h * 31 + w) as u64);
        let k = random_tensor(2, 3, r, r, (h + w) as u64);
        let a = direct::conv2d(&x, &k, geom).unwrap();
        let b = conv2d_with(&x, &k, geom, transform).unwrap();
        assert!(
            a.approx_eq(&b, 1e-3),
            "F({},{}) {}x{} pad {}: max diff {}",
            transform.m(),
            r,
            h,
            w,
            pad,
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn f43_matches_direct_exact_tiles() {
        // 8x8 output = exactly 2x2 tiles of 4x4.
        assert_matches_direct(&f43(), 10, 10, 0);
    }

    #[test]
    fn f43_matches_direct_with_padding() {
        assert_matches_direct(&f43(), 12, 12, 1);
    }

    #[test]
    fn f43_matches_direct_partial_tiles() {
        // 7x9 output: ragged tile grid in both dimensions.
        assert_matches_direct(&f43(), 9, 11, 0);
    }

    #[test]
    fn f23_matches_direct() {
        assert_matches_direct(&f23(), 8, 8, 1);
    }

    #[test]
    fn f63_matches_direct() {
        let t = WinogradTransform::generate(6, 3).unwrap();
        assert_matches_direct(&t, 13, 13, 1);
    }

    #[test]
    fn f45_matches_direct() {
        // 5x5 kernels (AlexNet conv2) via F(4,5).
        let t = WinogradTransform::generate(4, 5).unwrap();
        assert_matches_direct(&t, 12, 12, 2);
    }

    #[test]
    fn rejects_stride_two() {
        let geom = ConvGeometry::new(8, 8, 3, 2, 0).unwrap();
        let x = random_tensor(1, 1, 8, 8, 1);
        let k = random_tensor(1, 1, 3, 3, 2);
        assert_eq!(
            conv2d_f43(&x, &k, geom),
            Err(ConvError::StrideUnsupported { stride: 2 })
        );
    }

    #[test]
    fn rejects_kernel_transform_mismatch() {
        let geom = ConvGeometry::new(8, 8, 5, 1, 2).unwrap();
        let x = random_tensor(1, 1, 8, 8, 1);
        let k = random_tensor(1, 1, 5, 5, 2);
        assert!(conv2d_f43(&x, &k, geom).is_err());
    }

    #[test]
    fn pretransformed_filters_reusable() {
        let t = f43();
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let k = random_tensor(2, 2, 3, 3, 5);
        let filters = TransformedFilters::new(&k, &t).unwrap();
        for seed in 0..3 {
            let x = random_tensor(1, 2, 8, 8, seed + 100);
            let a = conv2d_pretransformed(&x, &filters, geom, &t).unwrap();
            let b = direct::conv2d(&x, &k, geom).unwrap();
            assert!(a.approx_eq(&b, 1e-3));
        }
    }

    #[test]
    fn fixed_point_winograd_tracks_direct_fixed() {
        use crate::direct;
        use crate::fixed::Fix16;
        let geom = ConvGeometry::new(12, 12, 3, 1, 1).unwrap();
        let xf = random_tensor(1, 3, 12, 12, 21);
        let kf = random_tensor(2, 3, 3, 3, 22);
        let xq: crate::tensor::Tensor<Fix16> = xf.cast();
        let kq: crate::tensor::Tensor<Fix16> = kf.cast();
        let gold = direct::conv2d_fix16(&xq, &kq, geom).unwrap();
        let wino = conv2d_fix16_with(&xq, &kq, geom, &f43()).unwrap();
        let gf: crate::tensor::Tensor<f32> = gold.cast();
        let wf: crate::tensor::Tensor<f32> = wino.cast();
        // Transform-domain quantization adds error beyond direct fixed
        // point: the output transform Aᵀ·M·A (entries up to ±8 for
        // F(4,3)) amplifies the Q8.8 rounding of V and U by roughly
        // (Σ|Aᵀ|)² ≈ 200×, giving a few tenths on [-1,1) data — the known
        // cost of running Winograd at the paper's activation precision
        // (real designs widen the transform-domain format or block-scale).
        let diff = gf.max_abs_diff(&wf).unwrap();
        assert!(diff < 0.6, "fixed winograd error {diff}");
        // The rebalanced transforms keep it far from the unusable ~7.6
        // that naive (un-rebalanced) Cook-Toom scaling produces.
        assert!(diff > 0.0);
    }

    #[test]
    fn fixed_point_error_grows_with_tile_size() {
        use crate::direct;
        use crate::fixed::Fix16;
        let geom = ConvGeometry::new(24, 24, 3, 1, 1).unwrap();
        let xf = random_tensor(1, 4, 24, 24, 31);
        let kf = random_tensor(4, 4, 3, 3, 32);
        let xq: crate::tensor::Tensor<Fix16> = xf.cast();
        let kq: crate::tensor::Tensor<Fix16> = kf.cast();
        let gold: crate::tensor::Tensor<f32> = direct::conv2d_fix16(&xq, &kq, geom).unwrap().cast();
        let err_of = |m: usize| -> f32 {
            let t = WinogradTransform::generate(m, 3).unwrap();
            let y: crate::tensor::Tensor<f32> =
                conv2d_fix16_with(&xq, &kq, geom, &t).unwrap().cast();
            gold.max_abs_diff(&y).unwrap()
        };
        let (e2, e6) = (err_of(2), err_of(6));
        assert!(
            e6 > e2,
            "bigger tiles amplify transform-domain error: F(2,3)={e2}, F(6,3)={e6}"
        );
    }

    #[test]
    fn filter_bank_shape_checked() {
        let t = f43();
        let k = random_tensor(1, 1, 5, 5, 1);
        assert!(TransformedFilters::new(&k, &t).is_err());
    }

    #[test]
    fn batched_matches_naive_winograd() {
        // Ragged tile grid, padding, channel counts that straddle the GEMM
        // register tile.
        for &(h, w, pad, in_c, out_c) in &[
            (9usize, 11usize, 0usize, 3usize, 2usize),
            (12, 12, 1, 5, 7),
            (6, 6, 2, 1, 1),
            (13, 7, 1, 4, 9),
        ] {
            let geom = ConvGeometry::rect(h, w, 3, 1, pad).unwrap();
            let x = random_tensor(2, in_c, h, w, (h * 131 + w) as u64);
            let k = random_tensor(out_c, in_c, 3, 3, (h + w + pad) as u64);
            let naive = conv2d_f43(&x, &k, geom).unwrap();
            let fast = conv2d_f43_fast(&x, &k, geom, 1).unwrap();
            let diff = naive.max_abs_diff(&fast).unwrap();
            assert!(
                diff < 1e-4,
                "{h}x{w} pad {pad} {in_c}->{out_c}: diff {diff}"
            );
        }
    }

    #[test]
    fn batched_is_thread_count_invariant() {
        let geom = ConvGeometry::rect(17, 13, 3, 1, 1).unwrap();
        let x = random_tensor(1, 6, 17, 13, 91);
        let k = random_tensor(10, 6, 3, 3, 92);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let base = conv2d_batched(&x, &filters, geom, &t, 1, None).unwrap();
        for threads in [2usize, 4, 8] {
            let y = conv2d_batched(&x, &filters, geom, &t, threads, None).unwrap();
            assert_eq!(y, base, "{threads}-thread batched winograd differs");
        }
    }

    #[test]
    fn batched_counts_tiles_and_gemms() {
        let geom = ConvGeometry::rect(12, 12, 3, 1, 1).unwrap();
        let x = random_tensor(1, 2, 12, 12, 5);
        let k = random_tensor(3, 2, 3, 3, 6);
        let t = f43();
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let stats = ConvStats::new();
        conv2d_batched(&x, &filters, geom, &t, 1, Some(&stats)).unwrap();
        let (gemm_calls, tiles, bytes) = stats.snapshot();
        // 12x12 output over 4x4 tiles = 3x3 tiles; 36 transform points with
        // out_c=3 fit one GEMM job each.
        assert_eq!(tiles, 9);
        assert_eq!(gemm_calls, 36);
        assert!(bytes > 0);
    }

    #[test]
    fn batched_rejects_mismatched_transform() {
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let x = random_tensor(1, 2, 8, 8, 1);
        let k = random_tensor(2, 2, 3, 3, 2);
        let filters = BatchedFilters::new(&k, &f43()).unwrap();
        assert!(conv2d_batched(&x, &filters, geom, &f23(), 1, None).is_err());
        let strided = ConvGeometry::new(8, 8, 3, 2, 0).unwrap();
        assert_eq!(
            conv2d_batched(&x, &filters, strided, &f43(), 1, None),
            Err(ConvError::StrideUnsupported { stride: 2 })
        );
    }

    #[test]
    fn batched_works_for_other_tile_sizes() {
        // The batching is generic over the transform, not F(4,3)-specific.
        let t = f23();
        let geom = ConvGeometry::rect(9, 9, 3, 1, 1).unwrap();
        let x = random_tensor(1, 3, 9, 9, 41);
        let k = random_tensor(4, 3, 3, 3, 42);
        let filters = BatchedFilters::new(&k, &t).unwrap();
        let fast = conv2d_batched(&x, &filters, geom, &t, 2, None).unwrap();
        let reference = direct::conv2d(&x, &k, geom).unwrap();
        assert!(reference.approx_eq(&fast, 1e-3));
    }
}
