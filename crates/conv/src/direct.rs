//! The conventional (direct) convolution algorithm — Eq. (1) of the paper.
//!
//! ```text
//! Y[i,j,n] = Σ_m Σ_u Σ_v  D[i·S+u, j·S+v, m] · G[n,u,v,m]
//! ```
//!
//! This is the general algorithm the paper's framework falls back to for
//! layers where Winograd is inefficient (large kernels, stride > 1), and
//! the reference every other algorithm in this crate is validated against.

use crate::fixed::{Accumulator, Fix16};
use crate::tensor::{Scalar, Tensor};
use crate::{ConvError, ConvGeometry};

fn check_shapes<T: Scalar>(
    input: &Tensor<T>,
    kernels: &Tensor<T>,
    geom: ConvGeometry,
) -> Result<(), ConvError> {
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("input {}x{}", input.h(), input.w()),
        });
    }
    if kernels.h() != geom.kernel() || kernels.w() != geom.kernel() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel {}x{}", geom.kernel(), geom.kernel()),
            found: format!("kernel {}x{}", kernels.h(), kernels.w()),
        });
    }
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }
    Ok(())
}

/// Convolves `input` (`N×M×H×W`) with `kernels` (`Nout×M×K×K`) using the
/// conventional sliding-window algorithm with implicit zero padding.
///
/// Works for any [`Scalar`]; accumulation happens in the element type
/// itself (for the bit-faithful fixed-point datapath with a widened
/// accumulator use [`conv2d_fix16`]).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when tensor shapes disagree with
/// `geom`.
///
/// # Examples
///
/// ```
/// use winofuse_conv::{direct, tensor::Tensor, ConvGeometry};
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let geom = ConvGeometry::new(4, 4, 3, 1, 0)?;
/// let input = Tensor::filled(1, 1, 4, 4, 1.0f32);
/// let kernel = Tensor::filled(1, 1, 3, 3, 1.0f32);
/// let out = direct::conv2d(&input, &kernel, geom)?;
/// assert_eq!(out.get(0, 0, 0, 0), 9.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d<T: Scalar>(
    input: &Tensor<T>,
    kernels: &Tensor<T>,
    geom: ConvGeometry,
) -> Result<Tensor<T>, ConvError> {
    check_shapes(input, kernels, geom)?;
    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let (k, s, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    for b in 0..batch {
        for n in 0..out_c {
            for i in 0..oh {
                for j in 0..ow {
                    let mut acc = T::zero();
                    for m in 0..in_c {
                        for u in 0..k {
                            for v in 0..k {
                                let hh = (i * s + u) as isize - pad;
                                let ww = (j * s + v) as isize - pad;
                                let d = input.get_padded(b, m, hh, ww);
                                acc = acc + d * kernels.get(n, m, u, v);
                            }
                        }
                    }
                    out.set(b, n, i, j, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Fixed-point convolution with the hardware-faithful datapath: exact
/// 32-bit products accumulated in a wide register, rounded and saturated
/// once at writeback (see [`Accumulator`]).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when tensor shapes disagree with
/// `geom`.
pub fn conv2d_fix16(
    input: &Tensor<Fix16>,
    kernels: &Tensor<Fix16>,
    geom: ConvGeometry,
) -> Result<Tensor<Fix16>, ConvError> {
    check_shapes(input, kernels, geom)?;
    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let (k, s, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    for b in 0..batch {
        for n in 0..out_c {
            for i in 0..oh {
                for j in 0..ow {
                    let mut acc = Accumulator::new();
                    for m in 0..in_c {
                        for u in 0..k {
                            for v in 0..k {
                                let hh = (i * s + u) as isize - pad;
                                let ww = (j * s + v) as isize - pad;
                                acc.mac(input.get_padded(b, m, hh, ww), kernels.get(n, m, u, v));
                            }
                        }
                    }
                    out.set(b, n, i, j, acc.finish());
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::random_tensor;

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel of value 1 on a single channel.
        let geom = ConvGeometry::new(3, 3, 1, 1, 0).unwrap();
        let input = random_tensor(1, 1, 3, 3, 1);
        let kernel = Tensor::filled(1, 1, 1, 1, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert!(out.approx_eq(&input, 0.0));
    }

    #[test]
    fn box_filter_sums_window() {
        let geom = ConvGeometry::new(4, 4, 2, 2, 0).unwrap();
        let input = Tensor::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f32);
        let kernel = Tensor::filled(1, 1, 2, 2, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        // Windows: {0,1,4,5}=10, {2,3,6,7}=18, {8,9,12,13}=42, {10,11,14,15}=50.
        assert_eq!(out.as_slice(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn channels_accumulate() {
        let geom = ConvGeometry::new(2, 2, 1, 1, 0).unwrap();
        let input = Tensor::filled(1, 3, 2, 2, 2.0f32);
        let kernel = Tensor::filled(1, 3, 1, 1, 1.5f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert!(out.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn padding_uses_zeros() {
        let geom = ConvGeometry::new(2, 2, 3, 1, 1).unwrap();
        let input = Tensor::filled(1, 1, 2, 2, 1.0f32);
        let kernel = Tensor::filled(1, 1, 3, 3, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        // Every output sees exactly the 4 ones (corners of the 3x3 window
        // always cover all four input pixels for a 2x2 input with pad 1).
        assert_eq!(out.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn stride_subsamples() {
        let geom = ConvGeometry::new(5, 5, 1, 2, 0).unwrap();
        let input = Tensor::from_fn(1, 1, 5, 5, |_, _, h, w| (h * 5 + w) as f32);
        let kernel = Tensor::filled(1, 1, 1, 1, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert_eq!(out.shape(), (1, 1, 3, 3));
        assert_eq!(out.get(0, 0, 1, 1), 12.0);
        assert_eq!(out.get(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn batch_dimension_is_independent() {
        let geom = ConvGeometry::new(3, 3, 3, 1, 0).unwrap();
        let mut input = Tensor::zeros(2, 1, 3, 3);
        input.set(0, 0, 1, 1, 1.0f32);
        input.set(1, 0, 1, 1, 2.0f32);
        let kernel = Tensor::filled(1, 1, 3, 3, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert_eq!(out.get(0, 0, 0, 0), 1.0);
        assert_eq!(out.get(1, 0, 0, 0), 2.0);
    }

    #[test]
    fn rejects_wrong_shapes() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 0).unwrap();
        let input = Tensor::<f32>::zeros(1, 2, 4, 4);
        let bad_kernel = Tensor::<f32>::zeros(1, 3, 3, 3); // channel mismatch
        assert!(conv2d(&input, &bad_kernel, geom).is_err());
        let bad_size = Tensor::<f32>::zeros(1, 2, 5, 5); // input size mismatch
        let kernel = Tensor::<f32>::zeros(1, 2, 3, 3);
        assert!(conv2d(&bad_size, &kernel, geom).is_err());
    }

    #[test]
    fn fix16_matches_f32_within_quantization() {
        let geom = ConvGeometry::new(6, 6, 3, 1, 1).unwrap();
        let input = random_tensor(1, 3, 6, 6, 11);
        let kernels = random_tensor(2, 3, 3, 3, 12);
        let f = conv2d(&input, &kernels, geom).unwrap();
        let q = conv2d_fix16(&input.cast(), &kernels.cast(), geom).unwrap();
        // 27 MACs of values in [-1,1): quantization error stays small.
        let qf: Tensor<f32> = q.cast();
        assert!(f.max_abs_diff(&qf).unwrap() < 0.15);
    }

    #[test]
    fn fix16_wide_accumulator_beats_narrow() {
        // Sum 64 products of 1-ulp inputs: narrow per-step rounding in the
        // generic path loses them (each product rounds to 0 at Q8.8 scale
        // only if below half-ulp; here products are 0.25 ulp), the wide
        // accumulator keeps them.
        let geom = ConvGeometry::new(8, 8, 8, 1, 0).unwrap();
        let v = Fix16::from_raw(1); // 1 ulp
        let half = Fix16::from_f32(0.25);
        let input = Tensor::filled(1, 1, 8, 8, v);
        let kernel = Tensor::filled(1, 1, 8, 8, half);
        let wide = conv2d_fix16(&input, &kernel, geom).unwrap();
        let narrow = conv2d(&input, &kernel, geom).unwrap();
        // 64 products of 0.25 ulp = 16 ulp exact.
        assert_eq!(wide.get(0, 0, 0, 0), Fix16::from_raw(16));
        assert_eq!(narrow.get(0, 0, 0, 0), Fix16::ZERO);
    }
}
