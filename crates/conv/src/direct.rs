//! The conventional (direct) convolution algorithm — Eq. (1) of the paper.
//!
//! ```text
//! Y[i,j,n] = Σ_m Σ_u Σ_v  D[i·S+u, j·S+v, m] · G[n,u,v,m]
//! ```
//!
//! This is the general algorithm the paper's framework falls back to for
//! layers where Winograd is inefficient (large kernels, stride > 1), and
//! the reference every other algorithm in this crate is validated against.

use crate::fixed::{Accumulator, Fix16};
use crate::gemm::{BOperand, ConvPhase, ConvStats, GemmBlocking, GemmScratch, PackedA};
use crate::microkernel::KernelChoice;
use crate::tensor::{Scalar, Tensor};
use crate::{ConvError, ConvGeometry};
use std::time::Instant;
use winofuse_runtime::PoolProfiler;

fn check_shapes<T: Scalar>(
    input: &Tensor<T>,
    kernels: &Tensor<T>,
    geom: ConvGeometry,
) -> Result<(), ConvError> {
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("input {}x{}", input.h(), input.w()),
        });
    }
    if kernels.h() != geom.kernel() || kernels.w() != geom.kernel() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel {}x{}", geom.kernel(), geom.kernel()),
            found: format!("kernel {}x{}", kernels.h(), kernels.w()),
        });
    }
    if kernels.c() != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", kernels.c()),
        });
    }
    Ok(())
}

/// Convolves `input` (`N×M×H×W`) with `kernels` (`Nout×M×K×K`) using the
/// conventional sliding-window algorithm with implicit zero padding.
///
/// Works for any [`Scalar`]; accumulation happens in the element type
/// itself (for the bit-faithful fixed-point datapath with a widened
/// accumulator use [`conv2d_fix16`]).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when tensor shapes disagree with
/// `geom`.
///
/// # Examples
///
/// ```
/// use winofuse_conv::{direct, tensor::Tensor, ConvGeometry};
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let geom = ConvGeometry::new(4, 4, 3, 1, 0)?;
/// let input = Tensor::filled(1, 1, 4, 4, 1.0f32);
/// let kernel = Tensor::filled(1, 1, 3, 3, 1.0f32);
/// let out = direct::conv2d(&input, &kernel, geom)?;
/// assert_eq!(out.get(0, 0, 0, 0), 9.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d<T: Scalar>(
    input: &Tensor<T>,
    kernels: &Tensor<T>,
    geom: ConvGeometry,
) -> Result<Tensor<T>, ConvError> {
    check_shapes(input, kernels, geom)?;
    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let (k, s, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    for b in 0..batch {
        for n in 0..out_c {
            for i in 0..oh {
                for j in 0..ow {
                    let mut acc = T::zero();
                    for m in 0..in_c {
                        for u in 0..k {
                            for v in 0..k {
                                let hh = (i * s + u) as isize - pad;
                                let ww = (j * s + v) as isize - pad;
                                let d = input.get_padded(b, m, hh, ww);
                                acc = acc + d * kernels.get(n, m, u, v);
                            }
                        }
                    }
                    out.set(b, n, i, j, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Fixed-point convolution with the hardware-faithful datapath: exact
/// 32-bit products accumulated in a wide register, rounded and saturated
/// once at writeback (see [`Accumulator`]).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when tensor shapes disagree with
/// `geom`.
pub fn conv2d_fix16(
    input: &Tensor<Fix16>,
    kernels: &Tensor<Fix16>,
    geom: ConvGeometry,
) -> Result<Tensor<Fix16>, ConvError> {
    check_shapes(input, kernels, geom)?;
    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let (k, s, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    for b in 0..batch {
        for n in 0..out_c {
            for i in 0..oh {
                for j in 0..ow {
                    let mut acc = Accumulator::new();
                    for m in 0..in_c {
                        for u in 0..k {
                            for v in 0..k {
                                let hh = (i * s + u) as isize - pad;
                                let ww = (j * s + v) as isize - pad;
                                acc.mac(input.get_padded(b, m, hh, ww), kernels.get(n, m, u, v));
                            }
                        }
                    }
                    out.set(b, n, i, j, acc.finish());
                }
            }
        }
    }
    Ok(out)
}

/// im2col rows filled per parallel job in the fixed-point fast path (a
/// tuning constant; results never depend on it).
const PATCH_ROW_CHUNK: usize = 8;
/// Output channels per accumulation job in the fixed-point fast path.
const OUT_C_BLOCK: usize = 16;
/// Output rows owned by one fused job in [`conv2d_fast`]: each job
/// lowers its own rows (im2col), runs one full-output-channel prepacked
/// GEMM, and writes its row band across every output plane — a single
/// pool invocation per call instead of per-batch im2col/GEMM barriers.
/// A tuning constant; results never depend on it.
const DIRECT_ROW_BLOCK: usize = 4;

/// Fills `patches` (length `C·K² × outH·outW`) with the im2col lowering of
/// batch element `bn`, rows ordered `(channel, ku, kv)` — the same order
/// [`crate::im2col::im2col`] produces and the naive kernels accumulate in.
fn fill_patches<T: Scalar + Send + Sync>(
    input: &Tensor<T>,
    geom: ConvGeometry,
    bn: usize,
    patches: &mut [T],
    threads: usize,
    prof: &PoolProfiler,
) -> Result<(), ConvError> {
    let (k, s, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let cols = oh * ow;
    let slices = winofuse_runtime::split_chunks(patches, PATCH_ROW_CHUNK * cols);
    winofuse_runtime::run_sliced_jobs_isolated(
        threads,
        slices,
        prof,
        || (),
        |(), job, slice| {
            let r0 = job * PATCH_ROW_CHUNK;
            for (local, row) in slice.chunks_exact_mut(cols).enumerate() {
                let r = r0 + local;
                let (m, u, v) = (r / (k * k), (r / k) % k, r % k);
                for i in 0..oh {
                    for j in 0..ow {
                        let hh = (i * s + u) as isize - pad;
                        let ww = (j * s + v) as isize - pad;
                        row[i * ow + j] = input.get_padded(bn, m, hh, ww);
                    }
                }
            }
        },
    )?;
    Ok(())
}

/// Fast direct convolution: im2col lowering followed by the blocked GEMM
/// of [`crate::gemm`], parallel over patch rows and output-channel blocks
/// on the shared worker pool. Handles any stride and padding (the cases
/// Winograd rejects). `threads == 0` auto-detects; results are
/// bit-identical for any thread count.
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when tensor shapes disagree with
/// `geom` — the same conditions as [`conv2d`].
pub fn conv2d_fast(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    threads: usize,
    stats: Option<&ConvStats>,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_fast_traced(
        input,
        kernels,
        geom,
        threads,
        stats,
        &PoolProfiler::disabled(),
    )
}

/// [`conv2d_fast`] with worker-lane tracing: fused row-block jobs are
/// emitted as Chrome-trace slices on per-worker lanes via `prof` (scoped
/// to `direct.rowblock`), and when `stats` is supplied, per-phase times
/// and the pack-vs-microkernel split are recorded alongside the exact
/// flop/byte accounting (the im2col lowering lands in
/// [`ConvPhase::Scatter`] — zero flops, pure data movement).
///
/// # Errors
///
/// Same conditions as [`conv2d_fast`].
pub fn conv2d_fast_traced(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
) -> Result<Tensor<f32>, ConvError> {
    conv2d_fast_ext(input, kernels, geom, threads, stats, prof, None)
}

/// Thread-local working set for one fused direct-convolution job: GEMM
/// scratch plus the job's own patch matrix and GEMM result band, sized
/// once for the largest row block so the job loop never allocates.
struct RowBlockScratch {
    gemm: GemmScratch,
    patches: Vec<f32>,
    cbuf: Vec<f32>,
}

/// A direct-path filter bank lowered once into GEMM `A` panels.
///
/// [`conv2d_fast_ext`] packs its filter matrix on every call — fine for
/// whole-image convolution, but the fused runner convolves the same
/// filters dozens of times per frame (once per strip). Build this at
/// plan-lowering time instead and call [`conv2d_fast_packed_ext`]; no
/// strip ever re-packs coefficients (the same hoist
/// `BatchedFilters` applies to the Winograd planes).
pub struct PackedKernels {
    packed: PackedA,
    out_c: usize,
    in_c: usize,
    k: usize,
}

impl PackedKernels {
    /// Packs `kernels` (`Nout×M×K×K`, row-major) into `A` panels.
    pub fn new(kernels: &Tensor<f32>) -> Self {
        let (out_c, in_c, kh, kw) = kernels.shape();
        debug_assert_eq!(kh, kw, "direct kernels are square");
        PackedKernels {
            packed: PackedA::pack(
                kernels.as_slice(),
                out_c,
                in_c * kh * kw,
                GemmBlocking::default(),
            ),
            out_c,
            in_c,
            k: kh,
        }
    }

    /// Heap footprint of the packed panels.
    pub fn bytes(&self) -> u64 {
        self.packed.bytes()
    }
}

/// [`conv2d_fast_traced`] with an explicit microkernel pin — the handle
/// the oracle test matrix uses. Work is partitioned at output-row-block
/// grain: each job owns [`DIRECT_ROW_BLOCK`] output rows of one image,
/// lowers exactly those patch columns thread-locally, and runs one GEMM
/// over all output channels against the filter matrix pre-packed once per
/// call — one pool invocation total, no im2col/GEMM barrier, no per-job
/// re-pack of the `A` operand.
///
/// Results are bit-identical to the former per-batch barrier grain: every
/// output element still accumulates its `C·K²` products in ascending
/// `(channel, ku, kv)` order under the same `KC` blocking.
///
/// # Errors
///
/// Same conditions as [`conv2d_fast`].
pub fn conv2d_fast_ext(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
    kernel: Option<KernelChoice>,
) -> Result<Tensor<f32>, ConvError> {
    check_shapes(input, kernels, geom)?;
    // The filter matrix is packed into GEMM `A` panels exactly once per
    // call; every job reuses the shared panels read-only. Callers that
    // convolve the same filters repeatedly hoist this with
    // [`PackedKernels`].
    let packed = PackedKernels::new(kernels);
    conv2d_fast_packed_ext(input, &packed, geom, threads, stats, prof, kernel)
}

/// [`conv2d_fast_ext`] against a pre-lowered filter bank: identical
/// scheduling, partitioning, and bit-exact results, but the `A`-panel
/// pack is the caller's (one-time) cost.
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when the input or the packed
/// bank disagrees with `geom` — the same conditions as [`conv2d_fast`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_fast_packed_ext(
    input: &Tensor<f32>,
    packed: &PackedKernels,
    geom: ConvGeometry,
    threads: usize,
    stats: Option<&ConvStats>,
    prof: &PoolProfiler,
    kernel: Option<KernelChoice>,
) -> Result<Tensor<f32>, ConvError> {
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("input {}x{}", input.h(), input.w()),
        });
    }
    if packed.k != geom.kernel() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("kernel {0}x{0}", geom.kernel()),
            found: format!("kernel {0}x{0}", packed.k),
        });
    }
    if packed.in_c != input.c() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} kernel channels", input.c()),
            found: format!("{}", packed.in_c),
        });
    }
    let threads = winofuse_runtime::resolve_threads(threads);
    let (batch, in_c, _, _) = input.shape();
    let out_c = packed.out_c;
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let (k, s_stride, pad) = (geom.kernel(), geom.stride(), geom.pad() as isize);
    let (ckk, cols) = (in_c * k * k, oh * ow);
    let micro = kernel.unwrap_or_else(KernelChoice::auto);
    let timed = stats.is_some();
    let packed_k = &packed.packed;

    let row_blocks = oh.div_ceil(DIRECT_ROW_BLOCK);
    let n_jobs = batch * row_blocks;
    let rows_in_block = |blk: usize| DIRECT_ROW_BLOCK.min(oh - blk * DIRECT_ROW_BLOCK);
    let max_bc = DIRECT_ROW_BLOCK * ow;

    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    // Carve the NCHW output into per-job row bands in memory order: each
    // job owns the same row range in every output-channel plane.
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(batch * out_c * row_blocks);
    for bn in 0..batch {
        for _kk in 0..out_c {
            for blk in 0..row_blocks {
                spans.push((bn * row_blocks + blk, rows_in_block(blk) * ow));
            }
        }
    }
    let groups = winofuse_runtime::split_spans(out.as_mut_slice(), &spans, n_jobs);

    let packed_ref = packed_k;
    winofuse_runtime::run_grouped_jobs_isolated(
        threads,
        groups,
        &prof.scoped("direct.rowblock"),
        move || RowBlockScratch {
            gemm: GemmScratch::with_kernel(micro),
            patches: vec![0.0; ckk * max_bc],
            cbuf: vec![0.0; out_c * max_bc],
        },
        |st, job, frags| {
            let bn = job / row_blocks;
            let blk = job % row_blocks;
            let r0 = blk * DIRECT_ROW_BLOCK;
            let rows_here = rows_in_block(blk);
            let bc = rows_here * ow;
            let patches = &mut st.patches[..ckk * bc];
            let cbuf = &mut st.cbuf[..out_c * bc];
            let t_job = stats.map(|_| Instant::now());

            // im2col for exactly this job's output positions, rows ordered
            // (channel, ku, kv) — the order the naive kernels accumulate in.
            for (r, row) in patches.chunks_exact_mut(bc).enumerate() {
                let (m, u, v) = (r / (k * k), (r / k) % k, r % k);
                for i in 0..rows_here {
                    for j in 0..ow {
                        let hh = ((r0 + i) * s_stride + u) as isize - pad;
                        let ww = (j * s_stride + v) as isize - pad;
                        row[i * ow + j] = input.get_padded(bn, m, hh, ww);
                    }
                }
            }
            let t_lowered = stats.map(|_| Instant::now());

            // One GEMM over every output channel for this row band.
            let outcome = crate::gemm::gemm_f32_prepacked(
                &mut st.gemm,
                packed_ref,
                bc,
                BOperand::row_major(patches, bc),
                cbuf,
                timed,
            );
            for (kk, frag) in frags.iter_mut().enumerate() {
                frag.copy_from_slice(&cbuf[kk * bc..(kk + 1) * bc]);
            }
            if let (Some(s), Some(t0), Some(tl)) = (stats, t_job, t_lowered) {
                s.add_gemm(1, outcome.bytes_packed);
                s.add_gemm_split(outcome.pack_ns, outcome.kernel_ns);
                s.add_phase_ns(ConvPhase::Scatter, (tl - t0).as_nanos() as u64);
                s.add_phase_ns(ConvPhase::Gemm, tl.elapsed().as_nanos() as u64);
            }
        },
    )?;
    if let Some(s) = stats {
        // Schedule-invariant analytic accounting, identical to what the
        // former barrier grain reported in total: the im2col lowering is
        // pure data movement; the GEMM reads each operand once and writes
        // the output once, per image.
        s.add_phase(ConvPhase::Scatter, 0, (batch * 8 * ckk * cols) as u64);
        let gemm_flops = (batch * 2 * out_c * ckk * cols) as u64;
        let gemm_bytes = (batch * 4 * (out_c * ckk + ckk * cols + out_c * cols)) as u64;
        s.add_phase(ConvPhase::Gemm, gemm_flops, gemm_bytes);
    }
    Ok(out)
}

/// Fast fixed-point direct convolution: the im2col lowering of
/// [`conv2d_fast`] driven through the wide [`Accumulator`] datapath.
/// Products accumulate in the same `(channel, ku, kv)` order as
/// [`conv2d_fix16`] and integer accumulation is exact, so the output is
/// **bit-identical** to the naive reference at any thread count.
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when tensor shapes disagree with
/// `geom`.
pub fn conv2d_fix16_fast(
    input: &Tensor<Fix16>,
    kernels: &Tensor<Fix16>,
    geom: ConvGeometry,
    threads: usize,
) -> Result<Tensor<Fix16>, ConvError> {
    conv2d_fix16_fast_with_kernel(input, kernels, geom, threads, KernelChoice::auto())
}

/// [`conv2d_fix16_fast`] with an explicit microkernel pin. The inner MAC
/// sweep runs through [`KernelChoice::mac_span_fix16`] — packed 16-bit
/// lanes widened into 64-bit accumulators on AVX2, the scalar span
/// otherwise. Integer accumulation is exact and order-free, so every
/// kernel is bit-identical to the naive reference.
///
/// # Errors
///
/// Same conditions as [`conv2d_fix16_fast`].
pub fn conv2d_fix16_fast_with_kernel(
    input: &Tensor<Fix16>,
    kernels: &Tensor<Fix16>,
    geom: ConvGeometry,
    threads: usize,
    micro: KernelChoice,
) -> Result<Tensor<Fix16>, ConvError> {
    check_shapes(input, kernels, geom)?;
    let threads = winofuse_runtime::resolve_threads(threads);
    let (batch, in_c, _, _) = input.shape();
    let out_c = kernels.n();
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let (ckk, cols) = (in_c * geom.kernel() * geom.kernel(), oh * ow);
    let kflat = kernels.as_slice();

    let mut patches = vec![Fix16::ZERO; ckk * cols];
    let mut out = Tensor::zeros(batch, out_c, oh, ow);
    let k_blocks: Vec<(usize, usize)> = (0..out_c)
        .step_by(OUT_C_BLOCK)
        .map(|k0| (k0, OUT_C_BLOCK.min(out_c - k0)))
        .collect();
    let lengths: Vec<usize> = k_blocks.iter().map(|&(_, kb)| kb * cols).collect();
    for bn in 0..batch {
        fill_patches(
            input,
            geom,
            bn,
            &mut patches,
            threads,
            &PoolProfiler::disabled(),
        )?;
        let out_all = out.as_mut_slice();
        let img = &mut out_all[bn * out_c * cols..(bn + 1) * out_c * cols];
        let slices = winofuse_runtime::split_lengths(img, &lengths);
        let patches_ref = &patches;
        winofuse_runtime::run_sliced_jobs_isolated(
            threads,
            slices,
            &PoolProfiler::disabled(),
            || vec![0i64; cols],
            |accs, job, slice| {
                let (k0, kb) = k_blocks[job];
                for k in k0..k0 + kb {
                    accs.fill(0);
                    // Row-major sweep of the patch matrix keeps the memory
                    // access streaming while every output element still
                    // accumulates its products in ascending row order
                    // (irrelevant for exactness — integer adds commute —
                    // but it mirrors the float path's contract).
                    for (r, &kv) in kflat[k * ckk..(k + 1) * ckk].iter().enumerate() {
                        let row = &patches_ref[r * cols..(r + 1) * cols];
                        micro.mac_span_fix16(accs, row, kv);
                    }
                    let plane = &mut slice[(k - k0) * cols..(k - k0 + 1) * cols];
                    for (dst, &acc) in plane.iter_mut().zip(accs.iter()) {
                        *dst = Accumulator::from_raw(acc).finish();
                    }
                }
            },
        )?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::random_tensor;

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel of value 1 on a single channel.
        let geom = ConvGeometry::new(3, 3, 1, 1, 0).unwrap();
        let input = random_tensor(1, 1, 3, 3, 1);
        let kernel = Tensor::filled(1, 1, 1, 1, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert!(out.approx_eq(&input, 0.0));
    }

    #[test]
    fn box_filter_sums_window() {
        let geom = ConvGeometry::new(4, 4, 2, 2, 0).unwrap();
        let input = Tensor::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f32);
        let kernel = Tensor::filled(1, 1, 2, 2, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        // Windows: {0,1,4,5}=10, {2,3,6,7}=18, {8,9,12,13}=42, {10,11,14,15}=50.
        assert_eq!(out.as_slice(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn channels_accumulate() {
        let geom = ConvGeometry::new(2, 2, 1, 1, 0).unwrap();
        let input = Tensor::filled(1, 3, 2, 2, 2.0f32);
        let kernel = Tensor::filled(1, 3, 1, 1, 1.5f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert!(out.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn padding_uses_zeros() {
        let geom = ConvGeometry::new(2, 2, 3, 1, 1).unwrap();
        let input = Tensor::filled(1, 1, 2, 2, 1.0f32);
        let kernel = Tensor::filled(1, 1, 3, 3, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        // Every output sees exactly the 4 ones (corners of the 3x3 window
        // always cover all four input pixels for a 2x2 input with pad 1).
        assert_eq!(out.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn stride_subsamples() {
        let geom = ConvGeometry::new(5, 5, 1, 2, 0).unwrap();
        let input = Tensor::from_fn(1, 1, 5, 5, |_, _, h, w| (h * 5 + w) as f32);
        let kernel = Tensor::filled(1, 1, 1, 1, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert_eq!(out.shape(), (1, 1, 3, 3));
        assert_eq!(out.get(0, 0, 1, 1), 12.0);
        assert_eq!(out.get(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn batch_dimension_is_independent() {
        let geom = ConvGeometry::new(3, 3, 3, 1, 0).unwrap();
        let mut input = Tensor::zeros(2, 1, 3, 3);
        input.set(0, 0, 1, 1, 1.0f32);
        input.set(1, 0, 1, 1, 2.0f32);
        let kernel = Tensor::filled(1, 1, 3, 3, 1.0f32);
        let out = conv2d(&input, &kernel, geom).unwrap();
        assert_eq!(out.get(0, 0, 0, 0), 1.0);
        assert_eq!(out.get(1, 0, 0, 0), 2.0);
    }

    #[test]
    fn rejects_wrong_shapes() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 0).unwrap();
        let input = Tensor::<f32>::zeros(1, 2, 4, 4);
        let bad_kernel = Tensor::<f32>::zeros(1, 3, 3, 3); // channel mismatch
        assert!(conv2d(&input, &bad_kernel, geom).is_err());
        let bad_size = Tensor::<f32>::zeros(1, 2, 5, 5); // input size mismatch
        let kernel = Tensor::<f32>::zeros(1, 2, 3, 3);
        assert!(conv2d(&bad_size, &kernel, geom).is_err());
    }

    #[test]
    fn fix16_matches_f32_within_quantization() {
        let geom = ConvGeometry::new(6, 6, 3, 1, 1).unwrap();
        let input = random_tensor(1, 3, 6, 6, 11);
        let kernels = random_tensor(2, 3, 3, 3, 12);
        let f = conv2d(&input, &kernels, geom).unwrap();
        let q = conv2d_fix16(&input.cast(), &kernels.cast(), geom).unwrap();
        // 27 MACs of values in [-1,1): quantization error stays small.
        let qf: Tensor<f32> = q.cast();
        assert!(f.max_abs_diff(&qf).unwrap() < 0.15);
    }

    #[test]
    fn fast_path_matches_naive_across_geometries() {
        // Stride/pad general: the cases the Winograd path rejects.
        for &(h, w, k, s, pad, in_c, out_c) in &[
            (7usize, 7usize, 3usize, 1usize, 1usize, 3usize, 4usize),
            (11, 9, 5, 2, 2, 2, 5),
            (8, 8, 1, 1, 0, 6, 3),
            (10, 10, 3, 2, 0, 1, 1),
        ] {
            let geom = ConvGeometry::rect(h, w, k, s, pad).unwrap();
            let x = random_tensor(2, in_c, h, w, (h * 7 + k) as u64);
            let kn = random_tensor(out_c, in_c, k, k, (w + s) as u64);
            let naive = conv2d(&x, &kn, geom).unwrap();
            let fast = conv2d_fast(&x, &kn, geom, 1, None).unwrap();
            let diff = naive.max_abs_diff(&fast).unwrap();
            assert!(diff < 1e-4, "{h}x{w} k{k} s{s} p{pad}: diff {diff}");
        }
    }

    #[test]
    fn fast_path_is_thread_count_invariant() {
        let geom = ConvGeometry::rect(13, 11, 3, 2, 1).unwrap();
        let x = random_tensor(1, 5, 13, 11, 51);
        let k = random_tensor(18, 5, 3, 3, 52);
        let base = conv2d_fast(&x, &k, geom, 1, None).unwrap();
        for threads in [2usize, 4, 8] {
            let y = conv2d_fast(&x, &k, geom, threads, None).unwrap();
            assert_eq!(y, base, "{threads}-thread direct fast path differs");
        }
    }

    #[test]
    fn fast_path_counts_gemms() {
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let x = random_tensor(1, 2, 8, 8, 3);
        let k = random_tensor(20, 2, 3, 3, 4);
        let stats = ConvStats::new();
        conv2d_fast(&x, &k, geom, 2, Some(&stats)).unwrap();
        let (gemm_calls, _, bytes) = stats.snapshot();
        // 8 output rows over row blocks of 4 = 2 fused jobs, one GEMM each.
        assert_eq!(gemm_calls, 2);
        assert!(bytes > 0);
    }

    #[test]
    fn fix16_fast_is_bit_exact_vs_naive() {
        for &(h, w, k, s, pad) in &[
            (7usize, 7usize, 3usize, 1usize, 1usize),
            (9, 11, 5, 2, 2),
            (6, 6, 3, 1, 0),
        ] {
            let geom = ConvGeometry::rect(h, w, k, s, pad).unwrap();
            let x: Tensor<Fix16> = random_tensor(1, 3, h, w, (h + w) as u64).cast();
            let kn: Tensor<Fix16> = random_tensor(4, 3, k, k, (h * w) as u64).cast();
            let naive = conv2d_fix16(&x, &kn, geom).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let fast = conv2d_fix16_fast(&x, &kn, geom, threads).unwrap();
                assert_eq!(fast, naive, "{h}x{w} k{k} s{s} p{pad} @{threads}t");
            }
        }
    }

    #[test]
    fn fix16_wide_accumulator_beats_narrow() {
        // Sum 64 products of 1-ulp inputs: narrow per-step rounding in the
        // generic path loses them (each product rounds to 0 at Q8.8 scale
        // only if below half-ulp; here products are 0.25 ulp), the wide
        // accumulator keeps them.
        let geom = ConvGeometry::new(8, 8, 8, 1, 0).unwrap();
        let v = Fix16::from_raw(1); // 1 ulp
        let half = Fix16::from_f32(0.25);
        let input = Tensor::filled(1, 1, 8, 8, v);
        let kernel = Tensor::filled(1, 1, 8, 8, half);
        let wide = conv2d_fix16(&input, &kernel, geom).unwrap();
        let narrow = conv2d(&input, &kernel, geom).unwrap();
        // 64 products of 0.25 ulp = 16 ulp exact.
        assert_eq!(wide.get(0, 0, 0, 0), Fix16::from_raw(16));
        assert_eq!(narrow.get(0, 0, 0, 0), Fix16::ZERO);
    }
}
