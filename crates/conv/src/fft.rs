//! FFT-based convolution — the third computation structure §1 of the
//! paper lists for convolutional layers ("a straightforward and general
//! approach or other algorithms such as matrix multiplication, FFT").
//!
//! A radix-2 iterative Cooley–Tukey FFT over [`Complex`] computes linear
//! convolution by the convolution theorem; cross-correlation (what CNN
//! "convolution" actually is) falls out by flipping the kernel. FFT
//! convolution amortizes well only for large kernels — the complexity
//! comparison against direct and Winograd is exposed via
//! [`fft_conv_multiplies`] and used by the algorithm ablation bench.

use crate::tensor::Tensor;
use crate::{ConvError, ConvGeometry};

/// A complex number over `f64` (precision for the transform; tensors stay
/// `f32` at the API boundary).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex addition.
    #[allow(clippy::should_implement_trait)] // free fn style keeps Complex Copy-by-value math explicit
    pub fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }

    /// Complex subtraction.
    #[allow(clippy::should_implement_trait)] // free fn style keeps Complex Copy-by-value math explicit
    pub fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }

    /// Complex multiplication.
    #[allow(clippy::should_implement_trait)] // free fn style keeps Complex Copy-by-value math explicit
    pub fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// # Errors
///
/// Returns [`ConvError::InvalidGeometry`] when the length is not a
/// nonzero power of two.
pub fn fft(data: &mut [Complex]) -> Result<(), ConvError> {
    transform(data, false)
}

/// In-place inverse FFT (includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`ConvError::InvalidGeometry`] when the length is not a
/// nonzero power of two.
pub fn ifft(data: &mut [Complex]) -> Result<(), ConvError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(1.0 / n);
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), ConvError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(ConvError::InvalidGeometry(format!(
            "fft length must be a nonzero power of two, got {n}"
        )));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2].mul(w);
                data[start + k] = a.add(b);
                data[start + k + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// 2-D FFT over a row-major `rows × cols` buffer (both dimensions must be
/// powers of two).
///
/// # Errors
///
/// Same conditions as [`fft`], per dimension.
pub fn fft2d(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    inverse: bool,
) -> Result<(), ConvError> {
    if data.len() != rows * cols {
        return Err(ConvError::ShapeMismatch {
            expected: format!("{} elements", rows * cols),
            found: format!("{}", data.len()),
        });
    }
    // Rows.
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        if inverse {
            ifft(row)?;
        } else {
            fft(row)?;
        }
    }
    // Columns (gather/scatter through a scratch buffer).
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        if inverse {
            ifft(&mut col)?;
        } else {
            fft(&mut col)?;
        }
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
    Ok(())
}

/// Convolution (CNN cross-correlation) of `input` with `kernels` via the
/// convolution theorem. Produces the same result as
/// [`crate::direct::conv2d`] for stride 1; strided layers are computed by
/// subsampling the stride-1 result (FFT cannot exploit stride).
///
/// # Errors
///
/// Returns [`ConvError::ShapeMismatch`] when shapes disagree with `geom`.
pub fn conv2d(
    input: &Tensor<f32>,
    kernels: &Tensor<f32>,
    geom: ConvGeometry,
) -> Result<Tensor<f32>, ConvError> {
    if input.h() != geom.height() || input.w() != geom.width() {
        return Err(ConvError::ShapeMismatch {
            expected: format!("input {}x{}", geom.height(), geom.width()),
            found: format!("{}x{}", input.h(), input.w()),
        });
    }
    if kernels.c() != input.c() || kernels.h() != geom.kernel() || kernels.w() != geom.kernel() {
        return Err(ConvError::ShapeMismatch {
            expected: format!(
                "kernels Nx{}x{}x{}",
                input.c(),
                geom.kernel(),
                geom.kernel()
            ),
            found: format!(
                "{}x{}x{}x{}",
                kernels.n(),
                kernels.c(),
                kernels.h(),
                kernels.w()
            ),
        });
    }
    let (h, w, k, s, pad) = (
        geom.height(),
        geom.width(),
        geom.kernel(),
        geom.stride(),
        geom.pad(),
    );
    let (oh, ow) = (geom.output_height(), geom.output_width());
    let ph = (h + k - 1).next_power_of_two();
    let pw = (w + k - 1).next_power_of_two();

    let mut out = Tensor::zeros(input.n(), kernels.n(), oh, ow);
    let mut x_hat = vec![Complex::ZERO; ph * pw];
    let mut k_hat = vec![Complex::ZERO; ph * pw];
    let mut acc = vec![Complex::ZERO; ph * pw];

    for b in 0..input.n() {
        for n in 0..kernels.n() {
            for v in acc.iter_mut() {
                *v = Complex::ZERO;
            }
            for m in 0..input.c() {
                // FFT of the input channel.
                for v in x_hat.iter_mut() {
                    *v = Complex::ZERO;
                }
                for i in 0..h {
                    for j in 0..w {
                        x_hat[i * pw + j] = Complex::new(input.get(b, m, i, j) as f64, 0.0);
                    }
                }
                fft2d(&mut x_hat, ph, pw, false)?;
                // FFT of the *flipped* kernel (correlation = convolution
                // with the flipped filter).
                for v in k_hat.iter_mut() {
                    *v = Complex::ZERO;
                }
                for u in 0..k {
                    for vv in 0..k {
                        k_hat[(k - 1 - u) * pw + (k - 1 - vv)] =
                            Complex::new(kernels.get(n, m, u, vv) as f64, 0.0);
                    }
                }
                fft2d(&mut k_hat, ph, pw, false)?;
                for (a, (x, kk)) in acc.iter_mut().zip(x_hat.iter().zip(&k_hat)) {
                    *a = a.add(x.mul(*kk));
                }
            }
            let mut full = acc.clone();
            fft2d(&mut full, ph, pw, true)?;
            // Linear convolution c = x * flip(k); correlation output
            // out[i][j] = c[i·S + K−1 − pad][j·S + K−1 − pad]. A window
            // entirely inside the zero padding has no linear-convolution
            // index (it would be negative) and is exactly zero.
            for i in 0..oh {
                for j in 0..ow {
                    let (ci, cj) = (i * s + k - 1, j * s + k - 1);
                    // Windows entirely in the padding (left: index would
                    // be negative; right: beyond the linear-conv extent
                    // h+k-1, which the zero padding keeps at exactly 0)
                    // contribute nothing.
                    if ci < pad || cj < pad || ci - pad >= h + k - 1 || cj - pad >= w + k - 1 {
                        continue; // out stays zero
                    }
                    out.set(b, n, i, j, full[(ci - pad) * pw + (cj - pad)].re as f32);
                }
            }
        }
    }
    Ok(out)
}

/// Real multiplications of FFT convolution for one (input channel, output
/// channel) plane pair: `3 · P·P·log₂(P·P) + 4·P·P` (three 2-D transforms
/// amortized + the pointwise product, 4 real mults per complex one),
/// where `P` is the padded power-of-two size.
pub fn fft_conv_multiplies(geom: ConvGeometry) -> u64 {
    let ph = (geom.height() + geom.kernel() - 1).next_power_of_two() as u64;
    let pw = (geom.width() + geom.kernel() - 1).next_power_of_two() as u64;
    let n = ph * pw;
    let log = (64 - n.leading_zeros() - 1) as u64;
    3 * n * log + 4 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use crate::tensor::random_tensor;

    #[test]
    fn fft_roundtrip() {
        let mut data: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64 * 0.5 - 3.0, (i % 3) as f64))
            .collect();
        let original = data.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data).unwrap();
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 12];
        assert!(fft(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft(&mut empty).is_err());
    }

    #[test]
    fn fft2d_roundtrip() {
        let mut data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i * 7 % 13) as f64, 0.0))
            .collect();
        let original = data.clone();
        fft2d(&mut data, 4, 8, false).unwrap();
        fft2d(&mut data, 4, 8, true).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_direct_no_pad() {
        let geom = ConvGeometry::new(8, 8, 3, 1, 0).unwrap();
        let x = random_tensor(1, 2, 8, 8, 1);
        let k = random_tensor(3, 2, 3, 3, 2);
        let a = direct::conv2d(&x, &k, geom).unwrap();
        let b = conv2d(&x, &k, geom).unwrap();
        assert!(
            a.approx_eq(&b, 1e-4),
            "max diff {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn matches_direct_with_padding() {
        let geom = ConvGeometry::new(10, 10, 3, 1, 1).unwrap();
        let x = random_tensor(1, 3, 10, 10, 3);
        let k = random_tensor(2, 3, 3, 3, 4);
        let a = direct::conv2d(&x, &k, geom).unwrap();
        let b = conv2d(&x, &k, geom).unwrap();
        assert!(
            a.approx_eq(&b, 1e-4),
            "max diff {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn matches_direct_with_stride() {
        let geom = ConvGeometry::new(9, 9, 3, 2, 1).unwrap();
        let x = random_tensor(1, 2, 9, 9, 5);
        let k = random_tensor(2, 2, 3, 3, 6);
        let a = direct::conv2d(&x, &k, geom).unwrap();
        let b = conv2d(&x, &k, geom).unwrap();
        assert!(
            a.approx_eq(&b, 1e-4),
            "max diff {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn matches_direct_large_kernel() {
        // The regime where FFT actually pays: 7x7 kernel.
        let geom = ConvGeometry::new(12, 12, 7, 1, 3).unwrap();
        let x = random_tensor(1, 2, 12, 12, 7);
        let k = random_tensor(1, 2, 7, 7, 8);
        let a = direct::conv2d(&x, &k, geom).unwrap();
        let b = conv2d(&x, &k, geom).unwrap();
        assert!(
            a.approx_eq(&b, 1e-3),
            "max diff {}",
            a.max_abs_diff(&b).unwrap()
        );
    }

    #[test]
    fn complexity_crossover() {
        // For 3x3 kernels on 224-wide maps, FFT needs *more* multiplies
        // per plane pair than direct (that's why the paper's framework
        // explores winograd instead); for large kernels it wins.
        let small_k = ConvGeometry::new(56, 56, 3, 1, 1).unwrap();
        let direct_small = small_k.macs_per_channel_pair();
        assert!(fft_conv_multiplies(small_k) > direct_small);

        // Large kernel on a large map (the power-of-two padding must not
        // dominate): 11x11 on 100x100 pads to 128x128.
        let big_k = ConvGeometry::new(100, 100, 11, 1, 5).unwrap();
        let direct_big = big_k.macs_per_channel_pair();
        assert!(fft_conv_multiplies(big_k) < direct_big);
    }
}
