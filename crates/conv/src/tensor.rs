//! A minimal owned 4-D tensor in NCHW layout.
//!
//! The tensor is deliberately simple: dense, row-major, generic over the
//! element type. It exists so that every convolution algorithm in this crate
//! shares one data structure and can be cross-validated element by element.

use std::fmt;
use std::ops::{Add, Mul};

use crate::ConvError;

/// Element trait for tensors: the minimal arithmetic the convolution
/// algorithms need.
///
/// Implemented for `f32`, `f64` and [`crate::fixed::Fix16`].
pub trait Scalar:
    Copy + Clone + PartialEq + fmt::Debug + Add<Output = Self> + Mul<Output = Self> + Default
{
    /// Additive identity.
    fn zero() -> Self;
    /// Conversion from `f32` (possibly lossy, e.g. fixed point).
    fn from_f32(v: f32) -> Self;
    /// Conversion to `f32` (possibly lossy).
    fn to_f32(self) -> f32;
}

impl Scalar for f32 {
    fn zero() -> Self {
        0.0
    }
    fn from_f32(v: f32) -> Self {
        v
    }
    fn to_f32(self) -> f32 {
        self
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn from_f32(v: f32) -> Self {
        v as f64
    }
    fn to_f32(self) -> f32 {
        self as f32
    }
}

/// A dense 4-D tensor in NCHW layout (`n` outermost, `w` innermost).
///
/// For feature maps, `n` is the batch (usually 1 in the paper's inference
/// setting), `c` the channel count, `h`/`w` the spatial size. For
/// convolution kernels the same type is reused with `n` = output channels
/// and `c` = input channels.
///
/// # Examples
///
/// ```
/// use winofuse_conv::tensor::Tensor;
///
/// let mut t = Tensor::zeros(1, 2, 3, 3);
/// t.set(0, 1, 2, 2, 7.0f32);
/// assert_eq!(t.get(0, 1, 2, 2), 7.0);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T = f32> {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the total element count overflows `usize`.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::filled(n, c, h, w, T::zero())
    }

    /// Creates a tensor of the given shape filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the total element count overflows `usize`.
    pub fn filled(n: usize, c: usize, h: usize, w: usize, value: T) -> Self {
        let len = n
            .checked_mul(c)
            .and_then(|x| x.checked_mul(h))
            .and_then(|x| x.checked_mul(w))
            .expect("tensor size overflow");
        Self {
            n,
            c,
            h,
            w,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from an existing flat buffer in NCHW order.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::ShapeMismatch`] when `data.len() != n·c·h·w`.
    pub fn from_vec(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        data: Vec<T>,
    ) -> Result<Self, ConvError> {
        let expected = n * c * h * w;
        if data.len() != expected {
            return Err(ConvError::ShapeMismatch {
                expected: format!("{expected} elements for shape {n}x{c}x{h}x{w}"),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { n, c, h, w, data })
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    pub fn from_fn<F: FnMut(usize, usize, usize, usize) -> T>(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: F,
    ) -> Self {
        let mut t = Self::zeros(n, c, h, w);
        for in_ in 0..n {
            for ic in 0..c {
                for ih in 0..h {
                    for iw in 0..w {
                        let v = f(in_, ic, ih, iw);
                        t.set(in_, ic, ih, iw, v);
                    }
                }
            }
        }
        t
    }

    /// Shape as `(n, c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel dimension.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Reads the element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.index(n, c, h, w)]
    }

    /// Reads the element at `(n, c, h, w)`, returning zero for coordinates
    /// that fall outside the tensor (implicit zero padding). `h` and `w`
    /// are signed so callers can probe the padding border directly.
    #[inline]
    pub fn get_padded(&self, n: usize, c: usize, h: isize, w: isize) -> T {
        if h < 0 || w < 0 || h as usize >= self.h || w as usize >= self.w {
            T::zero()
        } else {
            self.get(n, c, h as usize, w as usize)
        }
    }

    /// Writes the element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: T) {
        let idx = self.index(n, c, h, w);
        self.data[idx] = value;
    }

    /// Flat view of the underlying NCHW buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the underlying NCHW buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat NCHW buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Copies channels `[start, end)` into a new tensor (used for
    /// grouped convolution, where each kernel group sees only its slice).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or empty.
    pub fn slice_channels(&self, start: usize, end: usize) -> Tensor<T> {
        assert!(
            start < end && end <= self.c,
            "invalid channel slice {start}..{end}"
        );
        Tensor::from_fn(self.n, end - start, self.h, self.w, |n, c, h, w| {
            self.get(n, start + c, h, w)
        })
    }

    /// Copies batch/output-channel entries `[start, end)` along the `n`
    /// dimension (for kernel tensors, `n` is the output channel, so this
    /// selects a group's kernels).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or empty.
    pub fn slice_channels_n(&self, start: usize, end: usize) -> Tensor<T> {
        assert!(
            start < end && end <= self.n,
            "invalid n slice {start}..{end}"
        );
        Tensor::from_fn(end - start, self.c, self.h, self.w, |n, c, h, w| {
            self.get(start + n, c, h, w)
        })
    }

    /// Writes `src` into channels `[start, start + src.c())` of `self`
    /// (inverse of [`Tensor::slice_channels`]).
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn write_channels(&mut self, start: usize, src: &Tensor<T>) {
        assert!(start + src.c() <= self.c, "channel write out of bounds");
        assert!(
            src.n() == self.n && src.h() == self.h && src.w() == self.w,
            "shape mismatch in write_channels"
        );
        for n in 0..src.n() {
            for c in 0..src.c() {
                for h in 0..src.h() {
                    for w in 0..src.w() {
                        self.set(n, start + c, h, w, src.get(n, c, h, w));
                    }
                }
            }
        }
    }

    /// Copies one batch entry into a new `1×c×h×w` tensor. NCHW is
    /// `n`-outermost, so this is a single contiguous copy — the cheap
    /// direction for splitting a served batch back into per-request
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of bounds.
    pub fn frame(&self, b: usize) -> Tensor<T> {
        assert!(b < self.n, "frame {b} out of bounds for batch {}", self.n);
        let stride = self.c * self.h * self.w;
        Tensor {
            n: 1,
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data[b * stride..(b + 1) * stride].to_vec(),
        }
    }

    /// Writes a `1×c×h×w` frame into batch entry `b` (inverse of
    /// [`Tensor::frame`]).
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of bounds or `src` does not have this
    /// tensor's per-frame shape with `n == 1`.
    pub fn write_frame(&mut self, b: usize, src: &Tensor<T>) {
        assert!(b < self.n, "frame {b} out of bounds for batch {}", self.n);
        assert!(
            src.n == 1 && src.c == self.c && src.h == self.h && src.w == self.w,
            "frame shape {}x{}x{}x{} does not match batch entry 1x{}x{}x{}",
            src.n,
            src.c,
            src.h,
            src.w,
            self.c,
            self.h,
            self.w
        );
        let stride = self.c * self.h * self.w;
        self.data[b * stride..(b + 1) * stride].copy_from_slice(&src.data);
    }

    /// Stacks single-frame tensors along the batch dimension — how the
    /// dynamic batcher coalesces queued requests into one `n = B`
    /// invocation.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::ShapeMismatch`] when `frames` is empty, any
    /// frame has `n != 1`, or the per-frame shapes disagree.
    pub fn concat_frames(frames: &[Tensor<T>]) -> Result<Tensor<T>, ConvError> {
        let first = frames.first().ok_or_else(|| ConvError::ShapeMismatch {
            expected: "at least one frame".to_string(),
            found: "empty frame list".to_string(),
        })?;
        let mut data = Vec::with_capacity(frames.len() * first.data.len());
        for f in frames {
            if f.n != 1 || (f.c, f.h, f.w) != (first.c, first.h, first.w) {
                return Err(ConvError::ShapeMismatch {
                    expected: format!("1x{}x{}x{} frame", first.c, first.h, first.w),
                    found: format!("{}x{}x{}x{}", f.n, f.c, f.h, f.w),
                });
            }
            data.extend_from_slice(&f.data);
        }
        Ok(Tensor {
            n: frames.len(),
            c: first.c,
            h: first.h,
            w: first.w,
            data,
        })
    }

    /// Replicates this single-frame tensor `copies` times along the batch
    /// dimension (`winofuse run --batch N`'s synthetic batch).
    ///
    /// # Panics
    ///
    /// Panics when `self.n != 1` or `copies == 0`.
    pub fn repeat_frames(&self, copies: usize) -> Tensor<T> {
        assert_eq!(self.n, 1, "repeat_frames requires a single-frame tensor");
        assert!(copies > 0, "cannot build an empty batch");
        let mut data = Vec::with_capacity(copies * self.data.len());
        for _ in 0..copies {
            data.extend_from_slice(&self.data);
        }
        Tensor {
            n: copies,
            c: self.c,
            h: self.h,
            w: self.w,
            data,
        }
    }

    /// Converts every element to a different scalar type.
    pub fn cast<U: Scalar>(&self) -> Tensor<U> {
        Tensor {
            n: self.n,
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data.iter().map(|v| U::from_f32(v.to_f32())).collect(),
        }
    }

    /// Maximum absolute difference against another tensor of the same
    /// shape, in `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32, ConvError> {
        if self.shape() != other.shape() {
            return Err(ConvError::ShapeMismatch {
                expected: format!("{:?}", self.shape()),
                found: format!("{:?}", other.shape()),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0f32, f32::max))
    }

    /// Whether all elements agree with `other` within `tol` (absolute, in
    /// `f32`). Returns `false` when shapes differ.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

impl<T: Scalar> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}x{}x{}]", self.n, self.c, self.h, self.w)
    }
}

/// Builds a tensor with uniformly distributed pseudo-random values in
/// `[-1, 1)` from a deterministic seed (xorshift; no external RNG needed in
/// the library itself).
pub fn random_tensor(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    Tensor::from_fn(n, c, h, w, |_, _, _, _| {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t: Tensor<f32> = Tensor::zeros(2, 3, 4, 5);
        assert_eq!(t.len(), 120);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Tensor::zeros(1, 2, 3, 3);
        t.set(0, 1, 2, 0, 42.0f32);
        assert_eq!(t.get(0, 1, 2, 0), 42.0);
        assert_eq!(t.get(0, 1, 0, 2), 0.0);
    }

    #[test]
    fn nchw_layout_is_w_innermost() {
        let t = Tensor::from_fn(1, 1, 2, 3, |_, _, h, w| (h * 3 + w) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(1, 1, 2, 2, vec![0.0f32; 3]).is_err());
        assert!(Tensor::from_vec(1, 1, 2, 2, vec![0.0f32; 4]).is_ok());
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let t = Tensor::filled(1, 1, 2, 2, 5.0f32);
        assert_eq!(t.get_padded(0, 0, -1, 0), 0.0);
        assert_eq!(t.get_padded(0, 0, 0, 2), 0.0);
        assert_eq!(t.get_padded(0, 0, 1, 1), 5.0);
    }

    #[test]
    fn max_abs_diff_detects_mismatch() {
        let a = Tensor::filled(1, 1, 2, 2, 1.0f32);
        let mut b = a.clone();
        b.set(0, 0, 1, 1, 1.5);
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        assert!(!a.approx_eq(&b, 0.1));
        assert!(a.approx_eq(&b, 0.6));
    }

    #[test]
    fn shape_mismatch_in_diff() {
        let a: Tensor<f32> = Tensor::zeros(1, 1, 2, 2);
        let b: Tensor<f32> = Tensor::zeros(1, 1, 2, 3);
        assert!(a.max_abs_diff(&b).is_err());
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn random_tensor_is_deterministic_and_bounded() {
        let a = random_tensor(1, 2, 4, 4, 7);
        let b = random_tensor(1, 2, 4, 4, 7);
        let c = random_tensor(1, 2, 4, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn channel_slice_roundtrip() {
        let t = random_tensor(1, 6, 3, 3, 9);
        let a = t.slice_channels(0, 3);
        let b = t.slice_channels(3, 6);
        assert_eq!(a.shape(), (1, 3, 3, 3));
        assert_eq!(b.get(0, 0, 1, 1), t.get(0, 3, 1, 1));
        let mut back: Tensor<f32> = Tensor::zeros(1, 6, 3, 3);
        back.write_channels(0, &a);
        back.write_channels(3, &b);
        assert_eq!(back, t);
    }

    #[test]
    fn n_slice_selects_kernels() {
        let t = random_tensor(4, 2, 3, 3, 11);
        let k = t.slice_channels_n(2, 4);
        assert_eq!(k.shape(), (2, 2, 3, 3));
        assert_eq!(k.get(0, 1, 2, 2), t.get(2, 1, 2, 2));
        assert_eq!(k.get(1, 0, 0, 0), t.get(3, 0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "invalid channel slice")]
    fn channel_slice_bounds_checked() {
        let t = random_tensor(1, 2, 2, 2, 1);
        let _ = t.slice_channels(1, 3);
    }

    #[test]
    fn cast_roundtrip_f32_f64() {
        let a = random_tensor(1, 1, 3, 3, 3);
        let d: Tensor<f64> = a.cast();
        let back: Tensor<f32> = d.cast();
        assert!(a.approx_eq(&back, 0.0));
    }

    #[test]
    fn frames_concat_and_split_roundtrip() {
        let a = random_tensor(1, 2, 3, 3, 5);
        let b = random_tensor(1, 2, 3, 3, 6);
        let c = random_tensor(1, 2, 3, 3, 7);
        let batch = Tensor::concat_frames(&[a.clone(), b.clone(), c.clone()]).unwrap();
        assert_eq!(batch.shape(), (3, 2, 3, 3));
        assert_eq!(batch.frame(0), a);
        assert_eq!(batch.frame(1), b);
        assert_eq!(batch.frame(2), c);
    }

    #[test]
    fn write_frame_inverts_frame() {
        let batch = random_tensor(3, 2, 4, 4, 9);
        let mut rebuilt: Tensor<f32> = Tensor::zeros(3, 2, 4, 4);
        for i in 0..3 {
            rebuilt.write_frame(i, &batch.frame(i));
        }
        assert_eq!(rebuilt, batch);
    }

    #[test]
    fn concat_frames_rejects_mismatches() {
        let a = random_tensor(1, 2, 3, 3, 1);
        let b = random_tensor(1, 2, 4, 4, 2);
        assert!(Tensor::concat_frames(&[a.clone(), b]).is_err());
        let multi = random_tensor(2, 2, 3, 3, 3);
        assert!(Tensor::concat_frames(&[a, multi]).is_err());
        assert!(Tensor::<f32>::concat_frames(&[]).is_err());
    }

    #[test]
    fn repeat_frames_replicates_the_frame() {
        let a = random_tensor(1, 2, 3, 3, 4);
        let batch = a.repeat_frames(4);
        assert_eq!(batch.shape(), (4, 2, 3, 3));
        for i in 0..4 {
            assert_eq!(batch.frame(i), a);
        }
    }
}
