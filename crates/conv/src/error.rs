use std::error::Error;
use std::fmt;

/// Errors produced by the convolution substrate.
///
/// Every fallible public function in this crate returns
/// `Result<_, ConvError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvError {
    /// Tensor shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A convolution geometry parameter is invalid (zero dimension, kernel
    /// larger than the padded input, zero stride, ...).
    InvalidGeometry(String),
    /// The Cook–Toom generator cannot produce a transform for the request
    /// (e.g. `m == 0`, `r == 0`, or more interpolation points needed than
    /// the built-in point sequence supplies).
    UnsupportedTransform(String),
    /// The Winograd path only supports stride-1 convolutions; the paper's
    /// framework falls back to the conventional algorithm otherwise.
    StrideUnsupported {
        /// The offending stride.
        stride: usize,
    },
    /// Exact rational arithmetic overflowed `i128` during transform
    /// generation (only possible for very large tile sizes).
    RationalOverflow,
    /// A kernel's worker-pool jobs panicked (or blew the watchdog
    /// deadline): the panic-isolated pool caught the fault and the kernel
    /// surfaced it as a typed error instead of unwinding. Recoverable by
    /// re-running the layer on a different algorithm path — see the
    /// executor's degradation ladder.
    KernelFault {
        /// The pool label the fault surfaced under (e.g. `conv2/wino.gemm`).
        site: String,
        /// One-line fault summary from [`winofuse_runtime::PoolError`].
        detail: String,
    },
}

impl From<winofuse_runtime::PoolError> for ConvError {
    fn from(e: winofuse_runtime::PoolError) -> Self {
        let site = match &e {
            winofuse_runtime::PoolError::JobsPanicked { label, .. }
            | winofuse_runtime::PoolError::DeadlineExceeded { label, .. } => label.clone(),
            _ => String::from("pool"),
        };
        ConvError::KernelFault {
            site,
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            ConvError::InvalidGeometry(msg) => write!(f, "invalid convolution geometry: {msg}"),
            ConvError::UnsupportedTransform(msg) => {
                write!(f, "unsupported winograd transform: {msg}")
            }
            ConvError::StrideUnsupported { stride } => {
                write!(f, "winograd convolution requires stride 1, got {stride}")
            }
            ConvError::RationalOverflow => {
                write!(
                    f,
                    "rational arithmetic overflow during transform generation"
                )
            }
            ConvError::KernelFault { site, detail } => {
                write!(f, "kernel fault at `{site}`: {detail}")
            }
        }
    }
}

impl Error for ConvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConvError::StrideUnsupported { stride: 4 };
        let msg = e.to_string();
        assert!(msg.contains("stride 1"));
        assert!(msg.contains('4'));
        assert!(msg.chars().next().map(char::is_lowercase).unwrap_or(false));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConvError>();
    }
}
