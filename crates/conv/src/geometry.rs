use crate::ConvError;

/// Spatial geometry of a 2-D convolution: input size, kernel size, stride
/// and zero padding.
///
/// The geometry is square in both the feature-map and kernel dimensions,
/// matching the layers of AlexNet/VGG evaluated in the paper (rectangular
/// inputs are supported via [`ConvGeometry::rect`]).
///
/// # Examples
///
/// ```
/// use winofuse_conv::ConvGeometry;
///
/// # fn main() -> Result<(), winofuse_conv::ConvError> {
/// let g = ConvGeometry::new(224, 224, 3, 1, 1)?; // VGG conv layer
/// assert_eq!(g.output_height(), 224);
/// assert_eq!(g.output_width(), 224);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    height: usize,
    width: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl ConvGeometry {
    /// Creates a geometry for a `height × width` input convolved with a
    /// `kernel × kernel` filter at the given `stride` with symmetric zero
    /// `pad`.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::InvalidGeometry`] when any dimension or the
    /// stride is zero, or when the kernel does not fit in the padded input.
    pub fn new(
        height: usize,
        width: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ConvError> {
        Self::rect(height, width, kernel, stride, pad)
    }

    /// Creates a geometry for a possibly non-square input.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConvGeometry::new`].
    pub fn rect(
        height: usize,
        width: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ConvError> {
        if height == 0 || width == 0 {
            return Err(ConvError::InvalidGeometry(format!(
                "input dimensions must be nonzero, got {height}x{width}"
            )));
        }
        if kernel == 0 {
            return Err(ConvError::InvalidGeometry(
                "kernel size must be nonzero".into(),
            ));
        }
        if stride == 0 {
            return Err(ConvError::InvalidGeometry("stride must be nonzero".into()));
        }
        if kernel > height + 2 * pad || kernel > width + 2 * pad {
            return Err(ConvError::InvalidGeometry(format!(
                "kernel {kernel} larger than padded input {}x{}",
                height + 2 * pad,
                width + 2 * pad
            )));
        }
        Ok(Self {
            height,
            width,
            kernel,
            stride,
            pad,
        })
    }

    /// Input feature-map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Input feature-map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Kernel (filter) side length `K`.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Sliding stride `S`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Symmetric zero padding on each border.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Number of output rows: `(H + 2·pad − K)/S + 1`.
    pub fn output_height(&self) -> usize {
        (self.height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Number of output columns: `(W + 2·pad − K)/S + 1`.
    pub fn output_width(&self) -> usize {
        (self.width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Multiply–accumulate operations per input channel per output channel
    /// (one output plane sweep): `outH · outW · K²`.
    pub fn macs_per_channel_pair(&self) -> u64 {
        self.output_height() as u64 * self.output_width() as u64 * (self.kernel as u64).pow(2)
    }

    /// Returns a copy with a different input size (used when propagating
    /// shapes through a network).
    pub fn with_input(&self, height: usize, width: usize) -> Result<Self, ConvError> {
        Self::rect(height, width, self.kernel, self.stride, self.pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_layer_preserves_size() {
        let g = ConvGeometry::new(224, 224, 3, 1, 1).unwrap();
        assert_eq!(g.output_height(), 224);
        assert_eq!(g.output_width(), 224);
    }

    #[test]
    fn alexnet_conv1_shape() {
        // AlexNet conv1: 227x227 input, 11x11 kernel, stride 4, no pad -> 55x55.
        let g = ConvGeometry::new(227, 227, 11, 4, 0).unwrap();
        assert_eq!(g.output_height(), 55);
        assert_eq!(g.output_width(), 55);
    }

    #[test]
    fn rejects_zero_stride() {
        assert!(matches!(
            ConvGeometry::new(8, 8, 3, 0, 0),
            Err(ConvError::InvalidGeometry(_))
        ));
    }

    #[test]
    fn rejects_oversized_kernel() {
        assert!(ConvGeometry::new(4, 4, 7, 1, 1).is_err());
        // ... but padding can make it fit.
        assert!(ConvGeometry::new(4, 4, 7, 1, 2).is_ok());
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(ConvGeometry::new(0, 8, 3, 1, 1).is_err());
        assert!(ConvGeometry::new(8, 0, 3, 1, 1).is_err());
        assert!(ConvGeometry::new(8, 8, 0, 1, 1).is_err());
    }

    #[test]
    fn macs_count() {
        let g = ConvGeometry::new(4, 4, 3, 1, 0).unwrap();
        // 2x2 outputs, 9 MACs each.
        assert_eq!(g.macs_per_channel_pair(), 36);
    }

    #[test]
    fn rect_geometry() {
        let g = ConvGeometry::rect(6, 10, 3, 1, 0).unwrap();
        assert_eq!(g.output_height(), 4);
        assert_eq!(g.output_width(), 8);
    }
}
