//! Trace event sinks: Chrome `trace_event` JSON and JSON-lines.

use crate::json::esc;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// One trace event, in Chrome `trace_event` terms.
///
/// `phase` is the `ph` field: `'X'` for complete slices (with `dur`),
/// `'M'` for metadata. `ts`/`dur` are microseconds for wall-clock spans
/// and raw cycles for simulator slices (the viewer doesn't care).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: String,
    pub category: String,
    pub phase: char,
    pub ts: u64,
    pub dur: Option<u64>,
    pub pid: u64,
    pub tid: u64,
}

impl TraceEvent {
    /// Renders the event as a single JSON object.
    ///
    /// `'M'` events whose name is `thread_name:<label>` become proper
    /// Chrome `thread_name` metadata records.
    pub fn to_json(&self) -> String {
        if self.phase == 'M' {
            let label = self.name.strip_prefix("thread_name:").unwrap_or(&self.name);
            return format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                self.pid,
                self.tid,
                esc(label)
            );
        }
        let mut s = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
            esc(&self.name),
            esc(&self.category),
            self.phase,
            self.ts
        );
        if let Some(dur) = self.dur {
            s.push_str(&format!("\"dur\":{dur},"));
        }
        s.push_str(&format!("\"pid\":{},\"tid\":{}}}", self.pid, self.tid));
        s
    }
}

/// Receives trace events as they happen. Implementations must tolerate
/// `finish` being called exactly once, after the last `event`.
pub trait TraceSink {
    fn event(&mut self, event: &TraceEvent);
    fn finish(&mut self) -> io::Result<()>;
}

/// Buffers events and writes a single `{"traceEvents":[...]}` JSON object
/// on `finish` — the format `chrome://tracing` and Perfetto load directly.
pub struct ChromeTraceSink {
    out: Option<BufWriter<File>>,
    events: Vec<TraceEvent>,
}

/// Creates `path` for writing, first creating any missing parent
/// directories — `--trace-out traces/run/a.json` should not fail with a
/// raw "No such file or directory".
pub(crate) fn create_with_parents(path: &Path) -> io::Result<File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    File::create(path)
}

impl ChromeTraceSink {
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(ChromeTraceSink {
            out: Some(BufWriter::new(create_with_parents(path)?)),
            events: Vec::new(),
        })
    }
}

impl TraceSink for ChromeTraceSink {
    fn event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn finish(&mut self) -> io::Result<()> {
        let Some(mut out) = self.out.take() else {
            return Ok(());
        };
        writeln!(out, "{{\"traceEvents\":[")?;
        for (i, ev) in self.events.iter().enumerate() {
            let comma = if i + 1 == self.events.len() { "" } else { "," };
            writeln!(out, "{}{}", ev.to_json(), comma)?;
        }
        writeln!(out, "],\"displayTimeUnit\":\"ms\"}}")?;
        out.flush()
    }
}

/// Streams one event object per line as it arrives — cheap, append-only,
/// greppable; survives a crash mid-run unlike the buffered Chrome format.
pub struct JsonLinesSink {
    out: BufWriter<File>,
}

impl JsonLinesSink {
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonLinesSink {
            out: BufWriter::new(create_with_parents(path)?),
        })
    }
}

impl TraceSink for JsonLinesSink {
    fn event(&mut self, event: &TraceEvent) {
        let _ = writeln!(self.out, "{}", event.to_json());
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Test-only sink collecting events in memory.
#[derive(Default)]
pub struct VecSink(pub std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>);

impl TraceSink for VecSink {
    fn event(&mut self, event: &TraceEvent) {
        // Recover from poisoning: tests drive sinks from threads that
        // panic deliberately (fault injection), and a push is atomic
        // from the Vec's point of view.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::Telemetry;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("winofuse-telemetry-{}-{name}", std::process::id()))
    }

    #[test]
    fn chrome_trace_file_parses_back() {
        let path = tmp("chrome.json");
        let t = Telemetry::with_sink(Box::new(ChromeTraceSink::create(&path).unwrap()));
        t.name_thread(crate::PID_SIM, 3, "conv1");
        t.slice("sim", "busy", 3, 100, 50);
        {
            let _s = t.span("search", "plan");
        }
        t.finish_sink().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let doc = parse(&text).expect("trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);

        let meta = &events[0];
        assert_eq!(meta.get("ph").and_then(JsonValue::as_str), Some("M"));
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str),
            Some("conv1")
        );

        let slice = &events[1];
        assert_eq!(slice.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(slice.get("ts").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(slice.get("dur").and_then(JsonValue::as_u64), Some(50));
        assert_eq!(
            slice.get("pid").and_then(JsonValue::as_u64),
            Some(crate::PID_SIM)
        );

        let span = &events[2];
        assert_eq!(span.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(span.get("name").and_then(JsonValue::as_str), Some("plan"));
        assert!(span.get("dur").and_then(JsonValue::as_u64).is_some());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_streams_one_object_per_line() {
        let path = tmp("events.jsonl");
        let t = Telemetry::with_sink(Box::new(JsonLinesSink::create(&path).unwrap()));
        t.slice("sim", "a", 1, 0, 5);
        t.slice("sim", "b", 1, 5, 7);
        t.finish_sink().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let obj = parse(line).expect("each line is a JSON object");
            assert_eq!(obj.get("ph").and_then(JsonValue::as_str), Some("X"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn noop_mode_emits_nothing() {
        let path = tmp("noop.jsonl");
        // Sink is attached to an *enabled* context, then compare with a
        // disabled context sharing no sink: the disabled one must write
        // no file and record no events.
        let t = Telemetry::disabled();
        t.slice("sim", "a", 1, 0, 5);
        drop(t.span("x", "y"));
        t.finish_sink().unwrap();
        assert!(!path.exists());
        assert_eq!(t.summary().counters.len(), 0);
    }

    #[test]
    fn sinks_create_missing_parent_directories() {
        let dir = tmp("nested-dir");
        std::fs::remove_dir_all(&dir).ok();
        let chrome = dir.join("a/b/trace.json");
        let t = Telemetry::with_sink(Box::new(ChromeTraceSink::create(&chrome).unwrap()));
        t.slice("sim", "x", 1, 0, 1);
        t.finish_sink().unwrap();
        assert!(chrome.exists());

        let jsonl = dir.join("c/d/events.jsonl");
        let t = Telemetry::with_sink(Box::new(JsonLinesSink::create(&jsonl).unwrap()));
        t.slice("sim", "y", 1, 0, 1);
        t.finish_sink().unwrap();
        assert!(jsonl.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escaped_names_stay_valid_json() {
        let ev = TraceEvent {
            name: "odd\"name\\with\ncontrol".to_string(),
            category: "c".to_string(),
            phase: 'X',
            ts: 1,
            dur: Some(2),
            pid: 1,
            tid: 1,
        };
        let obj = parse(&ev.to_json()).expect("escaped event parses");
        assert_eq!(
            obj.get("name").and_then(JsonValue::as_str),
            Some("odd\"name\\with\ncontrol")
        );
    }
}
