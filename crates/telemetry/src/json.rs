//! Minimal JSON support: an escaper for emission and a small recursive
//! parser used by tests (and downstream consumers) to validate emitted
//! traces. The workspace deliberately has no serde dependency.

use std::collections::BTreeMap;

/// Escapes a string for embedding inside a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; returns `None` on any syntax error or
/// trailing garbage. Numbers are f64 (adequate for trace timestamps).
pub fn parse(text: &str) -> Option<JsonValue> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos).map(JsonValue::String),
        b't' => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_lit(b, pos, "null", JsonValue::Null),
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Option<JsonValue> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if *b.get(*pos)? == b'-' {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse()
        .ok()
        .map(JsonValue::Number)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b']' {
        *pos += 1;
        return Some(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Array(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b'}' {
        *pos += 1;
        return Some(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if *b.get(*pos)? != b'"' {
            return None;
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if *b.get(*pos)? != b':' {
            return None;
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Object(map));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let doc = parse(r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_u64), Some(1));
        let arr = doc.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(
            doc.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_none());
        assert!(parse("[1,]").is_none());
        assert!(parse("{} trailing").is_none());
        assert!(parse("").is_none());
    }

    #[test]
    fn esc_then_parse_is_identity() {
        let nasty = "quote\" slash\\ nl\n tab\t ctrl\u{1} unicode\u{00e9}";
        let wrapped = format!("\"{}\"", esc(nasty));
        assert_eq!(parse(&wrapped).unwrap().as_str(), Some(nasty));
    }
}
