//! Observability layer for the winofuse optimizer and fusion pipeline.
//!
//! The strategy search (Algorithms 1 and 2) and the cycle-approximate
//! fusion simulator are the two black boxes of this codebase; this crate
//! gives them structured runtime visibility without perturbing them:
//!
//! * [`Telemetry`] — a cheaply cloneable handle owning a thread-safe
//!   registry of named [`Counter`]s and [`Histogram`]s plus an optional
//!   [`TraceSink`]. A disabled handle ([`Telemetry::disabled`]) carries no
//!   allocation at all and every operation on it is an inlined null check,
//!   so instrumented hot loops cost nothing when observability is off.
//! * [`Span`] — a scoped wall-clock timer that emits a Chrome
//!   `trace_event` complete slice (`"ph":"X"`) when dropped.
//! * [`TraceSink`] implementations: [`ChromeTraceSink`] writes a
//!   Perfetto / `chrome://tracing`-loadable JSON object, and
//!   [`JsonLinesSink`] streams one event object per line.
//! * [`RunTelemetry`] — an end-of-run snapshot of every counter and
//!   histogram, serializable to JSON for machine-readable run reports.
//!
//! Virtual-time slices (e.g. simulator stage busy intervals measured in
//! cycles rather than nanoseconds) are emitted via [`Telemetry::slice`],
//! which bypasses the wall clock entirely.

pub mod json;
mod sink;

pub use json::JsonValue;
pub use sink::{ChromeTraceSink, JsonLinesSink, TraceEvent, TraceSink, VecSink};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks `m`, recovering from poisoning. Telemetry locks are taken on
/// execution paths that run under `catch_unwind` (the fault-isolated
/// worker pool, the serve engine's batch backstop); a panic on one of
/// those threads must not turn every later counter bump or trace emit
/// into a `PoisonError` panic. Recovery is sound here because each
/// guarded region is a single map/option update with no multi-step
/// invariant a mid-update panic could leave half-applied.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default Chrome-trace process id for wall-clock spans.
pub const PID_WALL: u64 = 1;
/// Chrome-trace process id for virtual-time (simulated-cycle) slices.
pub const PID_SIM: u64 = 2;

// ---------------------------------------------------------------------------
// Counters and histograms
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
///
/// Obtained from [`Telemetry::counter`]; the handle caches the underlying
/// atomic so hot loops pay one null check plus one relaxed atomic add, or
/// only the null check when telemetry is disabled.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter permanently disconnected from any registry.
    pub fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value; 0 for a disconnected counter.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Number of log-linear buckets a histogram distributes samples over.
///
/// Values `0..4` get one exact bucket each; every power-of-two octave
/// above that is split into 4 linear sub-buckets, so a reported
/// percentile is at most one sub-bucket (≤ 12.5 %) above the true
/// sample. 252 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Bucket index for a sample (HDR-style log-linear: 2 sub-bucket bits).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < 4 {
        return value as usize;
    }
    let m = 63 - value.leading_zeros() as usize;
    (m - 2) * 4 + (value >> (m - 2)) as usize
}

/// Largest value that lands in bucket `b` (the reported representative).
fn bucket_upper(b: usize) -> u64 {
    if b < 4 {
        return b as u64;
    }
    let m = b / 4 + 1;
    let top = (b - (m - 2) * 4) as u128;
    let upper = (top + 1) << (m - 2);
    if upper > u64::MAX as u128 {
        u64::MAX
    } else {
        (upper - 1) as u64
    }
}

/// Aggregate statistics for a stream of observed values.
///
/// Tracks count / sum / min / max plus a log-linear bucket array, so it
/// can answer both "how many frontier points per DP cell" style
/// questions and tail-latency percentiles (p50/p95/p99) without storing
/// every sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sample counts per log-linear bucket (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at (or just above) the `p`-th percentile of the recorded
    /// samples, `p` in `[0, 100]`. The result is the upper edge of the
    /// bucket holding the rank, clamped into `[min, max]`, so it is exact
    /// for single-valued streams and at most one sub-bucket (≤ 12.5 %)
    /// above the true order statistic otherwise. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile (see [`HistogramSnapshot::percentile`]).
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile (see [`HistogramSnapshot::percentile`]).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Combines two snapshots as if their samples had been recorded into
    /// one histogram. An empty side contributes nothing (its min is a
    /// placeholder, not an observation).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let mut buckets = self.buckets;
        for (mine, theirs) in buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }
}

struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
        }
    }
}

/// A cached handle onto a named histogram, mirroring [`Counter`].
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    pub fn noop() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.record(value);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map(|c| c.snapshot()).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Telemetry handle
// ---------------------------------------------------------------------------

struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    sink: Mutex<Option<Box<dyn TraceSink + Send>>>,
    named_lanes: Mutex<std::collections::BTreeSet<(u64, u64)>>,
}

/// Shared observability context threaded through the optimizer and
/// simulator. Clone freely; all clones share one registry and sink.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

impl Telemetry {
    /// An active context with no sink attached: counters and histograms
    /// accumulate, spans and slices are dropped.
    pub fn enabled() -> Self {
        Telemetry(Some(Arc::new(Inner {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(None),
            named_lanes: Mutex::new(std::collections::BTreeSet::new()),
        })))
    }

    /// An active context writing trace events to `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink + Send>) -> Self {
        let t = Telemetry::enabled();
        if let Some(inner) = &t.0 {
            *lock_recovering(&inner.sink) = Some(sink);
        }
        t
    }

    /// The zero-cost no-op context: every operation is an inlined null
    /// check, no allocation is held.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Returns the cached handle for the counter named `name`, creating
    /// it on first use. On a disabled context this is a no-op handle.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            None => Counter(None),
            Some(inner) => {
                let mut reg = lock_recovering(&inner.counters);
                let cell = reg
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .clone();
                Counter(Some(cell))
            }
        }
    }

    /// Returns the cached handle for the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.0 {
            None => Histogram(None),
            Some(inner) => {
                let mut reg = lock_recovering(&inner.histograms);
                let cell = reg
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCell::new()))
                    .clone();
                Histogram(Some(cell))
            }
        }
    }

    /// Convenience: bump the named counter by `delta` without caching a
    /// handle. Prefer [`Telemetry::counter`] + [`Counter::add`] in loops.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Opens a wall-clock span; a `"ph":"X"` trace slice is emitted when
    /// the returned guard drops. `category` groups slices in the viewer.
    pub fn span(&self, category: &str, name: &str) -> Span {
        match &self.0 {
            None => Span(None),
            Some(_) => Span(Some(SpanInner {
                telemetry: self.clone(),
                category: category.to_string(),
                name: name.to_string(),
                start: Instant::now(),
            })),
        }
    }

    /// Emits a complete slice with explicit (virtual) timestamps, e.g.
    /// simulator stage busy intervals measured in cycles. `ts` and `dur`
    /// land in the trace's microsecond fields verbatim (1 cycle = 1 us in
    /// the viewer), on process [`PID_SIM`], thread `tid`.
    pub fn slice(&self, category: &str, name: &str, tid: u64, ts: u64, dur: u64) {
        self.emit(TraceEvent {
            name: name.to_string(),
            category: category.to_string(),
            phase: 'X',
            ts,
            dur: Some(dur),
            pid: PID_SIM,
            tid,
        });
    }

    /// Emits a complete wall-clock slice on an explicit `(pid, tid)` lane
    /// with timestamps already measured by the caller (microseconds since
    /// this context's epoch, as returned by [`Telemetry::now_us`]).
    ///
    /// This is how worker-pool jobs land on per-worker lanes: each worker
    /// measures its own start/duration and emits onto its stable tid, which
    /// [`Telemetry::span`] (always lane `(PID_WALL, 1)`) cannot express.
    pub fn slice_at(&self, category: &str, name: &str, pid: u64, tid: u64, ts: u64, dur: u64) {
        self.emit(TraceEvent {
            name: name.to_string(),
            category: category.to_string(),
            phase: 'X',
            ts,
            dur: Some(dur),
            pid,
            tid,
        });
    }

    /// Like [`Telemetry::name_thread`], but emits the metadata record only
    /// the first time this context sees the `(pid, tid)` lane — the worker
    /// pool runs per layer and per phase, and the trace should not repeat
    /// one `thread_name` record per pool invocation.
    pub fn name_thread_once(&self, pid: u64, tid: u64, name: &str) {
        let Some(inner) = &self.0 else { return };
        if lock_recovering(&inner.named_lanes).insert((pid, tid)) {
            self.name_thread(pid, tid, name);
        }
    }

    /// Emits a `"ph":"M"` metadata event naming a virtual thread lane, so
    /// trace viewers label simulator stages by name instead of tid.
    pub fn name_thread(&self, pid: u64, tid: u64, name: &str) {
        self.emit(TraceEvent {
            name: format!("thread_name:{name}"),
            category: String::new(),
            phase: 'M',
            ts: 0,
            dur: None,
            pid,
            tid,
        });
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(inner) = &self.0 {
            if let Some(sink) = lock_recovering(&inner.sink).as_mut() {
                sink.event(&event);
            }
        }
    }

    /// Microseconds since this context was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.epoch.elapsed().as_micros() as u64)
    }

    /// Flushes and closes the sink, if any. Call once at end of run; the
    /// Chrome backend writes its closing bracket here.
    pub fn finish_sink(&self) -> std::io::Result<()> {
        if let Some(inner) = &self.0 {
            if let Some(mut sink) = lock_recovering(&inner.sink).take() {
                sink.finish()?;
            }
        }
        Ok(())
    }

    /// Snapshots every counter and histogram into a serializable report.
    pub fn summary(&self) -> RunTelemetry {
        let mut out = RunTelemetry::default();
        if let Some(inner) = &self.0 {
            for (name, cell) in lock_recovering(&inner.counters).iter() {
                out.counters
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cell) in lock_recovering(&inner.histograms).iter() {
                out.histograms.insert(name.clone(), cell.snapshot());
            }
        }
        out
    }
}

struct SpanInner {
    telemetry: Telemetry,
    category: String,
    name: String,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::span`]; emits its slice on drop.
pub struct Span(Option<SpanInner>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let Some(ctx) = &inner.telemetry.0 else {
                return;
            };
            let ts = inner.start.duration_since(ctx.epoch).as_micros() as u64;
            let dur = inner.start.elapsed().as_micros() as u64;
            inner.telemetry.emit(TraceEvent {
                name: inner.name,
                category: inner.category,
                phase: 'X',
                ts,
                dur: Some(dur),
                pid: PID_WALL,
                tid: 1,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Run summary
// ---------------------------------------------------------------------------

/// End-of-run snapshot of the telemetry registry — the machine-readable
/// companion to a design report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RunTelemetry {
    /// Counter value by name, 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into this summary: counters add, histograms combine
    /// sample-wise. The tool for aggregating per-worker or per-run
    /// snapshots (e.g. benchmark repetitions) into one report.
    pub fn merge(&mut self, other: &RunTelemetry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, snapshot) in &other.histograms {
            let merged = self
                .histograms
                .get(name)
                .map_or(*snapshot, |mine| mine.merge(snapshot));
            self.histograms.insert(name.clone(), merged);
        }
    }

    /// Serializes to a pretty-printed JSON object with `counters` and
    /// `histograms` sections.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\n    \"{}\": {}", json::esc(name), value));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json::esc(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_counts_nothing() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        c.incr();
        c.add(10);
        let h = t.histogram("h");
        h.record(5);
        drop(t.span("cat", "span"));
        t.slice("cat", "s", 1, 0, 10);
        assert!(!t.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(t.summary(), RunTelemetry::default());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let t = Telemetry::enabled();
        let c = t.counter("nodes");
        c.incr();
        c.add(4);
        // A second handle to the same name shares the cell.
        t.counter("nodes").incr();
        let h = t.histogram("sizes");
        h.record(2);
        h.record(10);
        let s = t.summary();
        assert_eq!(s.counter("nodes"), 6);
        assert_eq!(s.counter("untouched"), 0);
        let hs = s.histograms["sizes"];
        assert_eq!((hs.count, hs.sum, hs.min, hs.max), (2, 12, 2, 10));
        assert!((hs.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn summary_json_is_balanced() {
        let t = Telemetry::enabled();
        t.add("a\"quote", 3);
        t.histogram("h").record(7);
        let js = t.summary().to_json();
        let parsed = json::parse(&js).expect("summary JSON must parse");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("a\"quote"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn merge_adds_counters_and_combines_histograms() {
        let a = Telemetry::enabled();
        a.add("shared", 3);
        a.add("only_a", 1);
        a.histogram("h").record(10);
        let b = Telemetry::enabled();
        b.add("shared", 4);
        b.add("only_b", 2);
        b.histogram("h").record(2);
        b.histogram("h").record(20);
        b.histogram("only_b_h").record(5);

        let mut merged = a.summary();
        merged.merge(&b.summary());
        assert_eq!(merged.counter("shared"), 7);
        assert_eq!(merged.counter("only_a"), 1);
        assert_eq!(merged.counter("only_b"), 2);
        let h = merged.histograms["h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 32, 2, 20));
        assert_eq!(merged.histograms["only_b_h"].count, 1);

        // Merging an empty summary is the identity.
        let before = merged.clone();
        merged.merge(&RunTelemetry::default());
        assert_eq!(merged, before);
        // An empty min placeholder never wins.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.merge(&h), h);
        assert_eq!(h.merge(&empty), h);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_invertible() {
        // Every bucket's upper edge maps back into that bucket, and
        // bucket boundaries never go backwards.
        let mut prev = 0u64;
        for b in 0..HISTOGRAM_BUCKETS {
            let upper = bucket_upper(b);
            assert_eq!(bucket_index(upper), b, "bucket {b} upper {upper}");
            assert!(b == 0 || upper > prev, "bucket {b} not monotone");
            prev = upper;
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Small values are exact: one bucket per value below 4, and the
        // first octaves stay one-per-value too.
        for v in 0..8u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn percentiles_are_exact_for_small_values() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat");
        for v in [1u64, 2, 3, 3, 3, 2, 1, 2] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 2);
        assert_eq!(s.percentile(100.0), 3);
        assert_eq!(s.percentile(0.0), 1);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        // A 1..=1000 uniform stream: every reported percentile must sit
        // within one sub-bucket (12.5 %) above the true order statistic,
        // and never below it.
        let t = Telemetry::enabled();
        let h = t.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (p, truth) in [(50.0, 500u64), (95.0, 950), (99.0, 990)] {
            let got = s.percentile(p);
            assert!(got >= truth, "p{p} reported {got} below true {truth}");
            assert!(
                got as f64 <= truth as f64 * 1.125 + 1.0,
                "p{p} reported {got} too far above true {truth}"
            );
        }
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn single_valued_stream_reports_exact_percentiles() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat");
        for _ in 0..17 {
            h.record(123_456);
        }
        let s = h.snapshot();
        assert_eq!((s.p50(), s.p95(), s.p99()), (123_456, 123_456, 123_456));
    }

    #[test]
    fn merged_snapshots_preserve_percentiles() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        for v in 1..=500u64 {
            a.histogram("h").record(v);
        }
        for v in 501..=1000u64 {
            b.histogram("h").record(v);
        }
        let merged = a.summary().histograms["h"].merge(&b.summary().histograms["h"]);
        let whole = Telemetry::enabled();
        for v in 1..=1000u64 {
            whole.histogram("h").record(v);
        }
        assert_eq!(merged, whole.summary().histograms["h"]);
    }

    #[test]
    fn summary_json_carries_percentiles() {
        let t = Telemetry::enabled();
        for v in [1u64, 2, 3] {
            t.histogram("h").record(v);
        }
        let parsed = json::parse(&t.summary().to_json()).expect("summary JSON must parse");
        let h = parsed.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("p50").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(h.get("p99").and_then(JsonValue::as_u64), Some(3));
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let t = Telemetry::enabled();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = t.counter("shared");
                let h = t.histogram("vals");
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        c.incr();
                        h.record(i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = t.summary();
        assert_eq!(s.counter("shared"), threads * per_thread);
        assert_eq!(s.histograms["vals"].count, threads * per_thread);
        assert_eq!(s.histograms["vals"].max, per_thread - 1);
        assert_eq!(s.histograms["vals"].min, 0);
    }
}
