//! The `exp_bench_*` binaries must reject bad command lines with exit
//! status 2 and a usage string on stderr — the same convention as the
//! `winofuse` CLI — rather than panicking (a panic aborts with 101 and
//! a backtrace, which reads as a crash in CI, not an operator error).

use std::process::Command;

fn assert_usage_exit(bin: &str, args: &[&str]) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("spawn bench binary");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} {args:?}: expected exit 2, got {:?}",
        out.status
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("usage:"),
        "{bin} {args:?}: stderr lacks a usage string:\n{err}"
    );
}

#[test]
fn bench_conv_rejects_unknown_flag() {
    assert_usage_exit(
        env!("CARGO_BIN_EXE_exp_bench_conv"),
        &["--definitely-not-a-flag"],
    );
}

#[test]
fn bench_search_rejects_unknown_flag() {
    assert_usage_exit(
        env!("CARGO_BIN_EXE_exp_bench_search"),
        &["--definitely-not-a-flag"],
    );
}

#[test]
fn bench_fused_rejects_unknown_flag() {
    assert_usage_exit(
        env!("CARGO_BIN_EXE_exp_bench_fused"),
        &["--definitely-not-a-flag"],
    );
}

#[test]
fn bench_flag_values_are_validated() {
    let conv = env!("CARGO_BIN_EXE_exp_bench_conv");
    assert_usage_exit(conv, &["--runs", "zero"]);
    assert_usage_exit(conv, &["--runs", "0"]);
    assert_usage_exit(conv, &["--threads"]);
}
