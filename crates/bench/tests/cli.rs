//! The `exp_bench_*` binaries must reject bad command lines with exit
//! status 2 and a usage string on stderr — the same convention as the
//! `winofuse` CLI — rather than panicking (a panic aborts with 101 and
//! a backtrace, which reads as a crash in CI, not an operator error).

use std::process::Command;

fn assert_usage_exit(bin: &str, args: &[&str]) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("spawn bench binary");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} {args:?}: expected exit 2, got {:?}",
        out.status
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("usage:"),
        "{bin} {args:?}: stderr lacks a usage string:\n{err}"
    );
}

#[test]
fn bench_conv_rejects_unknown_flag() {
    assert_usage_exit(
        env!("CARGO_BIN_EXE_exp_bench_conv"),
        &["--definitely-not-a-flag"],
    );
}

#[test]
fn bench_search_rejects_unknown_flag() {
    assert_usage_exit(
        env!("CARGO_BIN_EXE_exp_bench_search"),
        &["--definitely-not-a-flag"],
    );
}

#[test]
fn bench_fused_rejects_unknown_flag() {
    assert_usage_exit(
        env!("CARGO_BIN_EXE_exp_bench_fused"),
        &["--definitely-not-a-flag"],
    );
}

#[test]
fn bench_flag_values_are_validated() {
    let conv = env!("CARGO_BIN_EXE_exp_bench_conv");
    assert_usage_exit(conv, &["--runs", "zero"]);
    assert_usage_exit(conv, &["--runs", "0"]);
    assert_usage_exit(conv, &["--threads"]);
}

#[test]
fn bench_diff_rejects_bad_command_lines() {
    let diff = env!("CARGO_BIN_EXE_bench_diff");
    assert_usage_exit(diff, &[]);
    assert_usage_exit(diff, &["one-path-only"]);
    assert_usage_exit(diff, &["a", "b", "--definitely-not-a-flag"]);
    assert_usage_exit(diff, &["a", "b", "--tolerance-pct", "minus"]);
}

const DIFF_BASELINE: &str = r#"{
  "bench": "conv", "threads": 4, "runs": 5,
  "host": {"cpus": 8, "git_sha": "abc1234", "timestamp": 1},
  "cases": {
    "vgg_e_conv3_1": {
      "median_serial_ms": 100.0,
      "gflops_serial": 10.0,
      "latency_cycles": 5000
    }
  }
}"#;

fn write_diff_pair(dir: &std::path::Path, current_case: &str) -> (String, String) {
    let base = dir.join("BENCH_conv.json");
    let cur = dir.join("current_BENCH_conv.json");
    std::fs::write(&base, DIFF_BASELINE).unwrap();
    std::fs::write(
        &cur,
        format!(r#"{{"cases": {{"vgg_e_conv3_1": {current_case}}}}}"#),
    )
    .unwrap();
    (
        base.to_str().unwrap().to_string(),
        cur.to_str().unwrap().to_string(),
    )
}

/// The regression gate must exit nonzero when a benchmark regressed
/// beyond tolerance, and zero when the report is within tolerance or
/// `--warn-only` downgrades the failure.
#[test]
fn bench_diff_gates_on_regressions() {
    let diff = env!("CARGO_BIN_EXE_bench_diff");
    let dir = std::env::temp_dir().join(format!("bench_diff_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Regressed: serial median doubled (far beyond the 30% tolerance).
    let (base, cur) = write_diff_pair(
        &dir,
        r#"{"median_serial_ms": 200.0, "gflops_serial": 10.0, "latency_cycles": 5000}"#,
    );
    let out = Command::new(diff).args([&base, &cur]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "regressed report must fail the gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "output names the failure:\n{text}");

    // Same regression in warn-only mode passes.
    let out = Command::new(diff)
        .args([&base, &cur, "--warn-only"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    // Within tolerance (10% slower, deterministic metrics unchanged).
    let (base, cur) = write_diff_pair(
        &dir,
        r#"{"median_serial_ms": 110.0, "gflops_serial": 9.5, "latency_cycles": 5000}"#,
    );
    let out = Command::new(diff).args([&base, &cur]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "in-tolerance report must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Deterministic drift fails even inside the timing tolerance.
    let (base, cur) = write_diff_pair(
        &dir,
        r#"{"median_serial_ms": 100.0, "gflops_serial": 10.0, "latency_cycles": 5001}"#,
    );
    let out = Command::new(diff).args([&base, &cur]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}
