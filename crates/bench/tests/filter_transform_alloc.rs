//! Allocation-count contract for the Winograd filter transform.
//!
//! `TransformedFilters::new` must allocate exactly one bank per
//! `(out_c, in_c)` kernel pair plus a constant amount of scratch — the
//! transform scratch is hoisted out of the channel loop, so growing the
//! channel count must not add any per-pair churn.
//!
//! This is the only unsafe code in the workspace: a counting
//! `GlobalAlloc` has to be, and it lives in its own single-test
//! integration binary so no other test's allocations pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use winofuse_conv::cook_toom::f43;
use winofuse_conv::tensor::random_tensor;
use winofuse_conv::winograd::TransformedFilters;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations made by one `TransformedFilters::new` call on an
/// `out_c × in_c` 3×3 kernel bank (inputs built outside the window).
fn allocs_for(out_c: usize, in_c: usize) -> u64 {
    let kernels = random_tensor(out_c, in_c, 3, 3, 7);
    let transform = f43();
    let before = ALLOCS.load(Ordering::Relaxed);
    let filters = TransformedFilters::new(&kernels, &transform).unwrap();
    let after = ALLOCS.load(Ordering::Relaxed);
    drop(filters);
    after - before
}

#[test]
fn filter_transform_allocates_once_per_pair() {
    // Warm up lazily-initialized runtime machinery before measuring.
    let _ = allocs_for(1, 1);

    let small = allocs_for(4, 3); // 12 pairs
    let medium = allocs_for(8, 6); // 48 pairs
    let large = allocs_for(16, 6); // 96 pairs

    // The transform-independent overhead (G, Gᵀ, hoisted scratch, the
    // banks vec itself) is identical across calls, so the growth must be
    // exactly one allocation per extra kernel pair.
    assert_eq!(
        medium - small,
        48 - 12,
        "per-pair allocation churn: 12 pairs cost {small}, 48 pairs cost {medium}"
    );
    assert_eq!(
        large - medium,
        96 - 48,
        "per-pair allocation churn: 48 pairs cost {medium}, 96 pairs cost {large}"
    );
    // And the constant part stays small in absolute terms.
    assert!(
        small < 12 + 32,
        "constant overhead too large: {small} allocations for 12 pairs"
    );
}
