//! Allocation-count contract for the hoisted Winograd GEMM panel pack.
//!
//! `BatchedFilters::new` packs every transform-point plane into GEMM `A`
//! panels exactly once (plan-lowering time). The contract has two
//! halves: `PackedA::pack` makes exactly two allocations (the panel
//! buffer and the block-offset table, both sized up front), and a
//! steady-state `gemm_f32_prepacked` call makes **zero** — so no strip
//! or transform-point job ever re-packs filter coefficients, which is
//! what fixed the fused runner losing to the unfused executor on
//! deep-layer strips.
//!
//! Counting `GlobalAlloc`s live in their own single-test integration
//! binaries so no other test's allocations pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use winofuse_conv::cook_toom::f43;
use winofuse_conv::gemm::{BOperand, GemmBlocking, GemmScratch, PackedA};
use winofuse_conv::tensor::random_tensor;
use winofuse_conv::winograd::BatchedFilters;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    let after = ALLOCS.load(Ordering::Relaxed);
    (after - before, r)
}

#[test]
fn prepacked_panels_are_built_once_and_reused_alloc_free() {
    // Warm up lazily-initialized runtime machinery before measuring.
    let _ = count(|| random_tensor(1, 1, 3, 3, 1));

    // `PackedA::pack` sizes everything up front: exactly two allocations
    // (panel buffer + offset table) for any shape, including shapes that
    // span several KC/MC blocks.
    for &(m, k) in &[(4usize, 8usize), (16, 48), (96, 300), (20, 1200)] {
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.25).collect();
        let (n, _packed) = count(|| PackedA::pack(&a, m, k, GemmBlocking::default()));
        assert_eq!(n, 2, "PackedA::pack({m}x{k}) made {n} allocations");
    }

    // A steady-state prepacked GEMM allocates nothing: the A panels come
    // from the bank, the B panels from the warmed scratch.
    let (m, k, n) = (24usize, 54, 40);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let packed = PackedA::pack(&a, m, k, GemmBlocking::default());
    let mut scratch = GemmScratch::new();
    let mut c = vec![0.0f32; m * n];
    winofuse_conv::gemm::gemm_f32_prepacked(
        &mut scratch,
        &packed,
        n,
        BOperand::row_major(&b, n),
        &mut c,
        false,
    );
    let (steady, _) = count(|| {
        winofuse_conv::gemm::gemm_f32_prepacked(
            &mut scratch,
            &packed,
            n,
            BOperand::row_major(&b, n),
            &mut c,
            false,
        )
    });
    assert_eq!(steady, 0, "steady-state prepacked GEMM allocated {steady}x");

    // `BatchedFilters::new` growth is exactly one allocation per extra
    // kernel pair: the α²-plane overhead — including the 2·α² hoisted
    // panel packs — is constant in the channel counts, so per-strip
    // execution never pays it again.
    let allocs_for = |out_c: usize, in_c: usize| {
        let kernels = random_tensor(out_c, in_c, 3, 3, 7);
        let transform = f43();
        count(|| BatchedFilters::new(&kernels, &transform).unwrap()).0
    };
    let _ = allocs_for(1, 1);
    let small = allocs_for(4, 3); // 12 pairs
    let medium = allocs_for(8, 6); // 48 pairs
    assert_eq!(
        medium - small,
        48 - 12,
        "per-pair allocation churn: 12 pairs cost {small}, 48 pairs cost {medium}"
    );
}
