//! `BENCH_*.json` comparison for the regression gate (`bench_diff`).
//!
//! Compares a current benchmark report against a committed baseline,
//! metric by metric, with direction-aware thresholds:
//!
//! - `median_*_ms`, `p50_*_ms`, `p95_*_ms`, `p99_*_ms` — wall-clock
//!   medians and tail-latency percentiles, lower is better; the current
//!   value may exceed the baseline by at most the timing threshold
//!   (default 30%).
//! - `gflops_*`, `speedup_*`, `throughput_*` — throughput and ratios,
//!   higher is better; the current value may fall below the baseline by
//!   at most the same threshold.
//! - `speedup_parallel_vs_serial` additionally carries an **absolute
//!   floor** (default 2.0): the tile-grain schedule must actually win
//!   on a multicore host. The floor is enforced only when the current
//!   report's host has at least as many CPUs as the benchmark used
//!   threads — a 1-CPU container cannot exhibit parallel speedup, so
//!   there the floor downgrades to an informative note.
//! - `latency_cycles`, `dram_bytes`, `groups`, `plans_computed`,
//!   `menu_dominated`, `dram_reconciled`, `plan_search_once` —
//!   deterministic model outputs; any change is a failure regardless of
//!   threshold.
//! - Everything else (labels, run parameters, host metadata) is
//!   informational.
//!
//! A case or metric present in the baseline but missing from the current
//! report is a failure too — losing coverage silently is how regressions
//! hide.

use std::collections::BTreeMap;

use winofuse_telemetry::json::parse;
use winofuse_telemetry::JsonValue;

/// Tolerance for direction-aware metrics, as a fraction (0.30 = 30%).
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Allowed relative slowdown / throughput loss.
    pub tolerance: f64,
    /// Absolute floor for `speedup_parallel_vs_serial`, enforced only
    /// when the current report's host CPUs cover the benchmark threads.
    pub parallel_speedup_floor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            tolerance: 0.30,
            parallel_speedup_floor: 2.0,
        }
    }
}

/// The one metric that carries an absolute floor on capable hosts.
const PARALLEL_SPEEDUP: &str = "speedup_parallel_vs_serial";

/// Whether the current report was produced on a host that can actually
/// exhibit parallel speedup: `host.cpus >= threads` and the benchmark
/// ran with more than one worker. Reports without host metadata are
/// treated as incapable (floor not enforced) rather than failed.
fn floor_applies(current: &JsonValue) -> bool {
    let threads = current
        .get("threads")
        .and_then(JsonValue::as_u64)
        .unwrap_or(1);
    let cpus = current
        .get("host")
        .and_then(|h| h.get("cpus"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    threads >= 2 && cpus >= threads
}

/// How a metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Wall-clock: current may be at most `(1 + tol) ×` baseline.
    LowerIsBetter,
    /// Throughput/speedup: current may be at least `(1 - tol) ×` baseline.
    HigherIsBetter,
    /// Deterministic quantity: must match exactly.
    Exact,
    /// Not judged (labels, metadata).
    Informational,
}

/// Classifies a metric key into its comparison direction.
pub fn direction_for(key: &str) -> Direction {
    let timing_prefix = ["median_", "p50_", "p95_", "p99_"]
        .iter()
        .any(|p| key.starts_with(p));
    if timing_prefix && key.ends_with("_ms") {
        return Direction::LowerIsBetter;
    }
    if key.starts_with("gflops_") || key.starts_with("speedup_") || key.starts_with("throughput_") {
        return Direction::HigherIsBetter;
    }
    match key {
        "latency_cycles" | "dram_bytes" | "groups" | "plans_computed" | "menu_dominated"
        | "dram_reconciled" | "plan_search_once" => Direction::Exact,
        _ => Direction::Informational,
    }
}

/// One metric's verdict.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// `"case/metric"`.
    pub key: String,
    /// Human-readable comparison line.
    pub detail: String,
    /// Whether this metric regressed.
    pub failed: bool,
}

/// The comparison of one baseline file against one current file.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every judged metric, in case order.
    pub metrics: Vec<MetricDiff>,
}

impl DiffReport {
    /// All regressed metrics.
    pub fn failures(&self) -> impl Iterator<Item = &MetricDiff> {
        self.metrics.iter().filter(|m| m.failed)
    }

    /// Whether any metric regressed.
    pub fn has_failures(&self) -> bool {
        self.metrics.iter().any(|m| m.failed)
    }
}

/// The `cases` map of a report. Accepts both the shared-writer schema
/// (`{"cases": {...}}`) and the legacy flat layout where every top-level
/// object member is a case.
fn cases_of(doc: &JsonValue) -> BTreeMap<String, &JsonValue> {
    if let Some(JsonValue::Object(cases)) = doc.get("cases") {
        return cases.iter().map(|(k, v)| (k.clone(), v)).collect();
    }
    match doc {
        JsonValue::Object(members) => members
            .iter()
            .filter(|(_, v)| matches!(v, JsonValue::Object(_)))
            .filter(|(k, _)| k.as_str() != "host")
            .map(|(k, v)| (k.clone(), v))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn judge(
    key: &str,
    baseline: &JsonValue,
    current: Option<&JsonValue>,
    cfg: &DiffConfig,
    floor_enforced: bool,
) -> MetricDiff {
    let metric = key.rsplit('/').next().unwrap_or(key);
    let direction = direction_for(metric);
    let Some(current) = current else {
        return MetricDiff {
            key: key.to_string(),
            detail: "missing from current report".to_string(),
            failed: direction != Direction::Informational,
        };
    };
    match direction {
        Direction::Informational => MetricDiff {
            key: key.to_string(),
            detail: "informational".to_string(),
            failed: false,
        },
        Direction::Exact => {
            let same = baseline == current;
            MetricDiff {
                key: key.to_string(),
                detail: if same {
                    format!("unchanged ({})", fmt_value(baseline))
                } else {
                    format!(
                        "expected exactly {}, got {}",
                        fmt_value(baseline),
                        fmt_value(current)
                    )
                },
                failed: !same,
            }
        }
        Direction::LowerIsBetter | Direction::HigherIsBetter => {
            let (Some(b), Some(c)) = (baseline.as_f64(), current.as_f64()) else {
                return MetricDiff {
                    key: key.to_string(),
                    detail: "non-numeric value for a numeric metric".to_string(),
                    failed: true,
                };
            };
            let (limit, mut failed, verb) = if direction == Direction::LowerIsBetter {
                let limit = b * (1.0 + cfg.tolerance);
                (limit, c > limit, "≤")
            } else {
                let limit = b * (1.0 - cfg.tolerance);
                (limit, c < limit, "≥")
            };
            let delta_pct = if b != 0.0 { 100.0 * (c - b) / b } else { 0.0 };
            let mut detail = format!(
                "baseline {b:.3}, current {c:.3} ({delta_pct:+.1}%), allowed {verb} {limit:.3}"
            );
            if metric == PARALLEL_SPEEDUP {
                let floor = cfg.parallel_speedup_floor;
                if floor_enforced {
                    if c < floor {
                        failed = true;
                        detail.push_str(&format!("; below the enforced {floor:.1}× floor"));
                    } else {
                        detail.push_str(&format!("; clears the {floor:.1}× floor"));
                    }
                } else {
                    detail.push_str(&format!(
                        "; {floor:.1}× floor not enforced (host cpus < threads)"
                    ));
                }
            }
            MetricDiff {
                key: key.to_string(),
                detail,
                failed,
            }
        }
    }
}

fn fmt_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Number(n) => format!("{n}"),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::String(s) => s.clone(),
        JsonValue::Null => "null".to_string(),
        _ => "<composite>".to_string(),
    }
}

/// Compares two parsed reports. Every metric of every baseline case is
/// judged against the current report; extra cases/metrics in the current
/// report are ignored (new coverage is not a regression).
pub fn diff_reports(baseline: &JsonValue, current: &JsonValue, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    let current_cases = cases_of(current);
    let floor_enforced = floor_applies(current);
    for (case_name, base_case) in cases_of(baseline) {
        let cur_case = current_cases.get(&case_name);
        let JsonValue::Object(base_metrics) = base_case else {
            continue;
        };
        match cur_case {
            None => report.metrics.push(MetricDiff {
                key: case_name.clone(),
                detail: "case missing from current report".to_string(),
                failed: true,
            }),
            Some(cur_case) => {
                for (metric, base_value) in base_metrics {
                    report.metrics.push(judge(
                        &format!("{case_name}/{metric}"),
                        base_value,
                        cur_case.get(metric),
                        cfg,
                        floor_enforced,
                    ));
                }
            }
        }
    }
    report
}

/// Parses two report texts and diffs them.
///
/// # Errors
///
/// Returns a message when either text is not valid JSON.
pub fn diff_texts(baseline: &str, current: &str, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let b = parse(baseline).ok_or("baseline is not valid JSON")?;
    let c = parse(current).ok_or("current report is not valid JSON")?;
    Ok(diff_reports(&b, &c, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "bench": "conv", "threads": 4, "runs": 5,
      "host": {"cpus": 8, "git_sha": "abc", "timestamp": 1},
      "cases": {
        "vgg": {"median_serial_ms": 100.0, "gflops_serial": 10.0,
                "latency_cycles": 5000, "algo": "winograd"}
      }
    }"#;

    fn with(serial_ms: f64, gflops: f64, latency: u64) -> String {
        format!(
            r#"{{"cases": {{"vgg": {{"median_serial_ms": {serial_ms},
                "gflops_serial": {gflops}, "latency_cycles": {latency},
                "algo": "winograd"}}}}}}"#
        )
    }

    #[test]
    fn unchanged_report_passes() {
        let r = diff_texts(BASE, &with(100.0, 10.0, 5000), &DiffConfig::default()).unwrap();
        assert!(!r.has_failures(), "{:?}", r.failures().collect::<Vec<_>>());
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let r = diff_texts(BASE, &with(125.0, 9.0, 5000), &DiffConfig::default()).unwrap();
        assert!(!r.has_failures());
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let r = diff_texts(BASE, &with(140.0, 10.0, 5000), &DiffConfig::default()).unwrap();
        let fails: Vec<_> = r.failures().map(|m| m.key.as_str()).collect();
        assert_eq!(fails, ["vgg/median_serial_ms"]);
    }

    #[test]
    fn throughput_loss_beyond_tolerance_fails() {
        let r = diff_texts(BASE, &with(100.0, 6.0, 5000), &DiffConfig::default()).unwrap();
        assert!(r.failures().any(|m| m.key == "vgg/gflops_serial"));
    }

    #[test]
    fn deterministic_drift_fails_regardless_of_threshold() {
        let cfg = DiffConfig {
            tolerance: 10.0,
            ..DiffConfig::default()
        };
        let r = diff_texts(BASE, &with(100.0, 10.0, 5001), &cfg).unwrap();
        assert!(r.failures().any(|m| m.key == "vgg/latency_cycles"));
    }

    #[test]
    fn missing_case_fails() {
        let r = diff_texts(BASE, r#"{"cases": {}}"#, &DiffConfig::default()).unwrap();
        assert!(r.failures().any(|m| m.key == "vgg"));
    }

    #[test]
    fn missing_metric_fails() {
        let cur = r#"{"cases": {"vgg": {"median_serial_ms": 100.0}}}"#;
        let r = diff_texts(BASE, cur, &DiffConfig::default()).unwrap();
        assert!(r.failures().any(|m| m.key == "vgg/gflops_serial"));
    }

    fn speedup_report(cpus: u64, threads: u64, speedup: f64) -> String {
        format!(
            r#"{{"bench": "conv", "threads": {threads}, "runs": 1,
                "host": {{"cpus": {cpus}, "git_sha": "x", "timestamp": 1}},
                "cases": {{"vgg": {{"speedup_parallel_vs_serial": {speedup}}}}}}}"#
        )
    }

    #[test]
    fn parallel_floor_enforced_on_capable_host() {
        let base = speedup_report(8, 4, 2.5);
        let cur = speedup_report(8, 4, 1.4);
        let cfg = DiffConfig {
            tolerance: 10.0, // relative check wide open: only the floor can fail
            ..DiffConfig::default()
        };
        let r = diff_texts(&base, &cur, &cfg).unwrap();
        let fail: Vec<_> = r.failures().collect();
        assert_eq!(fail.len(), 1, "{:?}", r.metrics);
        assert!(fail[0].detail.contains("below the enforced 2.0× floor"));
    }

    #[test]
    fn parallel_floor_passes_when_cleared() {
        let base = speedup_report(8, 4, 2.5);
        let cur = speedup_report(8, 4, 2.1);
        let r = diff_texts(&base, &cur, &DiffConfig::default()).unwrap();
        assert!(!r.has_failures(), "{:?}", r.failures().collect::<Vec<_>>());
    }

    #[test]
    fn parallel_floor_not_enforced_on_undersized_host() {
        // A 1-CPU container cannot speed up; the floor downgrades to a
        // note and only the relative tolerance applies.
        let base = speedup_report(1, 4, 1.0);
        let cur = speedup_report(1, 4, 1.0);
        let r = diff_texts(&base, &cur, &DiffConfig::default()).unwrap();
        assert!(!r.has_failures(), "{:?}", r.failures().collect::<Vec<_>>());
        assert!(r.metrics.iter().any(|m| m.detail.contains("not enforced")));
    }

    #[test]
    fn sparse_metrics_are_direction_judged() {
        // The sparse Winograd regime's metrics ride the generic prefix
        // rules; pin them so a rename doesn't silently demote them to
        // informational.
        assert_eq!(
            direction_for("median_sparse_serial_ms"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_for("gflops_sparse_serial"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_for("gflops_sparse_parallel"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_for("speedup_sparse_vs_dense"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_for("sparse_density_pm"), Direction::Informational);
    }

    #[test]
    fn serve_metrics_are_direction_judged() {
        assert_eq!(direction_for("p99_request_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_for("p50_batched_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_for("throughput_rps"), Direction::HigherIsBetter);
        assert_eq!(direction_for("plan_search_once"), Direction::Exact);
        let base = r#"{"cases": {"serve": {"p99_request_ms": 10.0,
            "throughput_rps": 100.0, "plan_search_once": true}}}"#;
        // Tail latency blown past tolerance, throughput collapsed, and a
        // second strategy search ran: all three must fail.
        let cur = r#"{"cases": {"serve": {"p99_request_ms": 20.0,
            "throughput_rps": 50.0, "plan_search_once": false}}}"#;
        let r = diff_texts(base, cur, &DiffConfig::default()).unwrap();
        let fails: Vec<_> = r.failures().map(|m| m.key.as_str()).collect();
        assert_eq!(
            fails,
            [
                "serve/p99_request_ms",
                "serve/plan_search_once",
                "serve/throughput_rps"
            ]
        );
    }

    #[test]
    fn legacy_flat_layout_is_accepted() {
        let legacy_base = r#"{"threads": 4, "runs": 5, "vgg": {"median_serial_ms": 100.0}}"#;
        let legacy_cur = r#"{"threads": 4, "runs": 5, "vgg": {"median_serial_ms": 150.0}}"#;
        let r = diff_texts(legacy_base, legacy_cur, &DiffConfig::default()).unwrap();
        assert!(r.has_failures());
    }
}
