//! Shared `BENCH_*.json` writer for the `exp_bench_*` binaries.
//!
//! Every benchmark used to hand-format its own JSON; this module gives
//! them one writer so the files share a schema the `bench_diff`
//! regression gate can rely on:
//!
//! ```json
//! {
//!   "bench": "search",
//!   "threads": 4,
//!   "runs": 5,
//!   "host": { "cpus": 8, "threads": 4, "simd": "avx2",
//!             "git_sha": "abc1234", "timestamp": 1754650000 },
//!   "cases": { "vgg_e": { "median_serial_ms": 123.4, ... }, ... }
//! }
//! ```
//!
//! The `host` block stamps where the numbers came from — thread count,
//! CPU count, and the active SIMD microkernel bound how comparable two
//! files are, the git sha and timestamp say what was measured when.

use std::io;
use std::path::PathBuf;

use winofuse_telemetry::json::esc;

use crate::BenchOptions;

/// One metric value inside a case.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Fractional quantity (milliseconds, GFLOP/s, speedups); printed
    /// with three decimals.
    Float(f64),
    /// Exact count (cycles, bytes, groups).
    Int(u64),
    /// Flag (e.g. `dram_reconciled`).
    Bool(bool),
    /// Label (e.g. the algorithm a case ran).
    Text(String),
}

impl Metric {
    fn to_json(&self) -> String {
        match self {
            Metric::Float(v) => format!("{v:.3}"),
            Metric::Int(v) => v.to_string(),
            Metric::Bool(v) => v.to_string(),
            Metric::Text(s) => format!("\"{}\"", esc(s)),
        }
    }
}

/// One named case and its metrics, in insertion order.
#[derive(Debug, Clone, Default)]
pub struct BenchCase {
    metrics: Vec<(String, Metric)>,
}

impl BenchCase {
    /// Adds a fractional metric.
    #[must_use]
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_string(), Metric::Float(value)));
        self
    }

    /// Adds an exact-count metric.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.metrics.push((key.to_string(), Metric::Int(value)));
        self
    }

    /// Adds a flag metric.
    #[must_use]
    pub fn flag(mut self, key: &str, value: bool) -> Self {
        self.metrics.push((key.to_string(), Metric::Bool(value)));
        self
    }

    /// Adds a label metric.
    #[must_use]
    pub fn text(mut self, key: &str, value: &str) -> Self {
        self.metrics
            .push((key.to_string(), Metric::Text(value.to_string())));
        self
    }
}

/// Builder for one `BENCH_<id>.json` file.
#[derive(Debug, Clone)]
pub struct BenchReport {
    id: String,
    threads: usize,
    runs: usize,
    cases: Vec<(String, BenchCase)>,
}

impl BenchReport {
    /// Starts a report for `BENCH_<id>.json` with the run parameters.
    pub fn new(id: &str, opts: &BenchOptions) -> Self {
        BenchReport {
            id: id.to_string(),
            threads: opts.threads,
            runs: opts.runs,
            cases: Vec::new(),
        }
    }

    /// Appends a named case.
    pub fn case(&mut self, name: &str, case: BenchCase) -> &mut Self {
        self.cases.push((name.to_string(), case));
        self
    }

    /// Serializes the report, stamping the host-metadata block.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", esc(&self.id)));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"runs\": {},\n", self.runs));
        s.push_str(&format!(
            "  \"host\": {{\"cpus\": {}, \"threads\": {}, \"simd\": \"{}\", \"git_sha\": \"{}\", \"timestamp\": {}}},\n",
            host_cpus(),
            self.threads,
            esc(winofuse_conv::microkernel::active_kernel_name()),
            esc(&git_sha()),
            unix_timestamp()
        ));
        s.push_str("  \"cases\": {\n");
        for (ci, (name, case)) in self.cases.iter().enumerate() {
            s.push_str(&format!("    \"{}\": {{\n", esc(name)));
            for (mi, (key, value)) in case.metrics.iter().enumerate() {
                s.push_str(&format!(
                    "      \"{}\": {}{}\n",
                    esc(key),
                    value.to_json(),
                    if mi + 1 < case.metrics.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!(
                "    }}{}\n",
                if ci + 1 < self.cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Writes `BENCH_<id>.json` to the current directory and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Logical CPU count of the machine the benchmark ran on.
///
/// `available_parallelism` alone under-reports inside containers whose
/// affinity mask is narrower than the machine (and the seed baselines
/// were stamped with `"cpus": 1` that way), so take the larger of it and
/// the `/proc/cpuinfo` processor count when that is readable.
pub fn host_cpus() -> usize {
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    available.max(proc_cpuinfo_cpus().unwrap_or(0)).max(1)
}

/// Processor entries in `/proc/cpuinfo`; `None` off Linux or when the
/// file is unreadable.
fn proc_cpuinfo_cpus() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let n = text
        .lines()
        .filter(|l| l.split(':').next().map(str::trim) == Some("processor"))
        .count();
    (n > 0).then_some(n)
}

/// The commit the benchmark measured: `git rev-parse --short HEAD`,
/// falling back to the `GITHUB_SHA` environment variable (CI checkouts
/// without a working `.git`), then `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    "unknown".to_string()
}

/// Seconds since the Unix epoch at the time of writing.
pub fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use winofuse_telemetry::json::parse;
    use winofuse_telemetry::JsonValue;

    #[test]
    fn host_cpus_covers_available_parallelism() {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert!(host_cpus() >= available);
    }

    #[test]
    fn report_serializes_host_block_and_cases() {
        let opts = BenchOptions {
            runs: 3,
            threads: 2,
        };
        let mut r = BenchReport::new("unit", &opts);
        r.case(
            "case_a",
            BenchCase::default()
                .float("median_serial_ms", 12.3456)
                .int("latency_cycles", 42)
                .flag("dram_reconciled", true)
                .text("algo", "winograd"),
        );
        let doc = parse(&r.to_json()).expect("writer emits valid JSON");
        assert_eq!(doc.get("bench").and_then(JsonValue::as_str), Some("unit"));
        assert_eq!(doc.get("threads").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(doc.get("runs").and_then(JsonValue::as_u64), Some(3));
        let host = doc.get("host").expect("host block");
        assert!(host.get("cpus").and_then(JsonValue::as_u64).unwrap() >= 1);
        assert_eq!(host.get("threads").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            host.get("simd").and_then(JsonValue::as_str),
            Some(winofuse_conv::microkernel::active_kernel_name())
        );
        assert!(host.get("git_sha").and_then(JsonValue::as_str).is_some());
        assert!(host.get("timestamp").and_then(JsonValue::as_u64).is_some());
        let case = doc
            .get("cases")
            .and_then(|c| c.get("case_a"))
            .expect("case_a");
        assert_eq!(
            case.get("median_serial_ms").and_then(JsonValue::as_f64),
            Some(12.346)
        );
        assert_eq!(
            case.get("latency_cycles").and_then(JsonValue::as_u64),
            Some(42)
        );
        assert_eq!(
            case.get("algo").and_then(JsonValue::as_str),
            Some("winograd")
        );
    }
}
