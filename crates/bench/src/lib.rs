//! # winofuse-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§7), plus
//! ablation studies (see DESIGN.md §4 for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_fig1_roofline` | Fig. 1 — roofline motivation (A, B, B′, C) |
//! | `exp_fig5_vgg` | Fig. 5 — VGG prefix latency vs transfer constraint, ours vs Alwani \[1\] |
//! | `exp_table1_vgg_detail` | Table 1 — detailed comparison at T = 2 MB |
//! | `exp_table2_alexnet` | Table 2 — AlexNet per-layer implementation details |
//! | `exp_energy` | §7.2 prose — transfer/compute energy savings |
//! | `exp_ablation_hetero` | heterogeneous vs homogeneous algorithm policies |
//! | `exp_ablation_linebuffer` | line-buffer vs tile-based fusion costs |
//! | `exp_ablation_tile` | Winograd tile-size choice m ∈ {2,3,4,6} |
//! | `exp_bench_search` | strategy-search wall clock, serial vs `--threads N` (writes `BENCH_search.json`) |
//!
//! Criterion benches (`cargo bench`): convolution kernels, Cook–Toom
//! transform generation, the optimizer ("returns the optimal solutions
//! within seconds", §7.1) and the behavioral simulator.

use winofuse_fpga::device::FpgaDevice;
use winofuse_model::network::Network;

pub mod diff;
pub mod report;

pub use report::{BenchCase, BenchReport};

/// One mebibyte, the unit of the paper's transfer-constraint axis.
pub const MB: u64 = 1024 * 1024;

/// The transfer-constraint sweep used for Fig. 5-style experiments. The
/// fully fused VGG prefix needs ~1.82 MB, so the sweep starts at 2 MB
/// (five points, like the paper's figure).
pub const FIG5_SWEEP_MB: [u64; 5] = [2, 3, 4, 5, 6];

/// Shared CLI options for the `exp_bench_*` binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Timed runs per case (median reported).
    pub runs: usize,
    /// Worker threads for the parallel variant.
    pub threads: usize,
}

/// Parses the shared `--smoke` / `--runs N` / `--threads N` flags of the
/// `exp_bench_*` binaries. An unknown flag or malformed value prints a
/// usage string to stderr and exits with status 2 (the same convention
/// as the `winofuse` CLI) instead of panicking.
pub fn parse_bench_args(bin: &str, args: impl Iterator<Item = String>) -> BenchOptions {
    fn usage(bin: &str, msg: &str) -> ! {
        eprintln!("{bin}: {msg}");
        eprintln!("usage: {bin} [--smoke] [--runs N] [--threads N]");
        eprintln!("  --smoke      single timed run per case (CI smoke test)");
        eprintln!("  --runs N     timed runs per case, median reported (default 5)");
        eprintln!("  --threads N  worker threads for the parallel variant (default 4)");
        std::process::exit(2);
    }
    let mut args = args;
    let mut opts = BenchOptions {
        runs: 5,
        threads: 4,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.runs = 1,
            "--runs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.runs = n,
                _ => usage(bin, "--runs needs a positive integer"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => usage(bin, "--threads needs a positive integer"),
            },
            other => usage(bin, &format!("unknown flag `{other}`")),
        }
    }
    opts
}

/// Wall-clock sample recorder backed by the telemetry histogram, so the
/// `exp_bench_*` binaries report medians and tail percentiles through
/// the same log-linear buckets as the serving engine (no per-binary
/// sort-and-index math). Microsecond samples; ≤12.5% bucket-relative
/// error, exact for repeated identical values.
pub struct LatencySamples {
    hist: winofuse_telemetry::Histogram,
}

impl Default for LatencySamples {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySamples {
    /// An empty recorder with its own private histogram.
    pub fn new() -> Self {
        LatencySamples {
            hist: winofuse_telemetry::Telemetry::enabled().histogram("bench.sample_us"),
        }
    }

    /// Records one sample in microseconds.
    pub fn record_us(&self, us: u64) {
        self.hist.record(us);
    }

    /// Times one invocation of `f`, records it, returns its result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record_us(start.elapsed().as_micros() as u64);
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.hist.snapshot().count
    }

    /// Median of the recorded samples, in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.hist.snapshot().p50() as f64 / 1e3
    }

    /// 95th percentile, in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.hist.snapshot().p95() as f64 / 1e3
    }

    /// 99th percentile, in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.hist.snapshot().p99() as f64 / 1e3
    }
}

/// Formats a cycle count with thousands separators.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Effective GOPS of `ops` work finished in `cycles` on `device`.
pub fn gops(device: &FpgaDevice, ops: u64, cycles: u64) -> f64 {
    device.effective_gops(ops, cycles)
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str, net: Option<&Network>) {
    println!("================================================================");
    println!("{id}: {what}");
    if let Some(n) = net {
        println!("network: {n}");
    }
    println!("================================================================");
}

/// Writes experiment data as CSV under `experiment-results/` next to the
/// workspace (the raw numbers behind a figure, for plotting elsewhere).
/// Returns the path written.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_results_csv(
    name: &str,
    header: &str,
    rows: &[String],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("experiment-results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut contents = String::with_capacity(rows.len() * 32 + header.len() + 1);
    contents.push_str(header);
    contents.push('\n');
    for r in rows {
        contents.push_str(r);
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Writes a [`RunTelemetry`] summary as JSON next to the experiment's
/// CSV (`experiment-results/<name>.telemetry.json`), so a figure's raw
/// numbers travel with the search/simulator counters that produced
/// them. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem failures.
///
/// [`RunTelemetry`]: winofuse_telemetry::RunTelemetry
pub fn write_telemetry_json(
    name: &str,
    run: &winofuse_telemetry::RunTelemetry,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("experiment-results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.telemetry.json"));
    std::fs::write(&path, run.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_formatting() {
        assert_eq!(fmt_cycles(0), "0");
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(1000), "1,000");
        assert_eq!(fmt_cycles(12_345_678), "12,345,678");
    }

    #[test]
    fn csv_writer_roundtrips() {
        let path =
            write_results_csv("unit-test", "a,b", &["1,2".to_string(), "3,4".to_string()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn telemetry_writer_roundtrips() {
        let tele = winofuse_telemetry::Telemetry::enabled();
        tele.add("unit.test.counter", 7);
        let path = write_telemetry_json("unit-test", &tele.summary()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = winofuse_telemetry::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("unit.test.counter"))
                .and_then(winofuse_telemetry::JsonValue::as_u64),
            Some(7)
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn latency_samples_report_percentiles() {
        let s = LatencySamples::new();
        for v in [1000, 2000, 3000] {
            s.record_us(v);
        }
        assert_eq!(s.count(), 3);
        let m = s.median_ms();
        assert!((2.0..=2.25).contains(&m), "median {m} outside bucket bound");
        assert!(s.p99_ms() >= s.median_ms());
    }

    #[test]
    fn sweep_is_sorted_and_feasible() {
        assert!(FIG5_SWEEP_MB.windows(2).all(|w| w[0] < w[1]));
        // Every point must exceed the fused prefix minimum (~1.82 MB).
        use winofuse_model::shape::DataType;
        let net = winofuse_model::zoo::vgg_e_fused_prefix();
        let min = net
            .fused_transfer_bytes(0..net.len(), DataType::Fixed16)
            .unwrap();
        assert!(FIG5_SWEEP_MB[0] * MB >= min);
    }
}
