//! **Bench regression gate** — compares current `BENCH_*.json` reports
//! against committed baselines and fails on regressions.
//!
//! ```text
//! bench_diff <baseline> <current> [--warn-only] [--tolerance-pct N]
//!   <baseline>         baseline BENCH_*.json file, or a directory of them
//!   <current>          current file (or directory) to judge
//!   --warn-only        print regressions but exit 0 (first-landing mode)
//!   --tolerance-pct N  allowed slowdown / throughput loss (default 30)
//! ```
//!
//! Direction-aware rules (see `winofuse_bench::diff`): `median_*_ms`
//! (including the sparse regime's `median_sparse_*_ms`) may rise at
//! most N%, `gflops_*` / `speedup_*` (including `gflops_sparse_*` and
//! `speedup_sparse_vs_dense`) may fall at most N%, and deterministic
//! quantities (`latency_cycles`, `dram_bytes`, `groups`,
//! `plans_computed`, `menu_dominated`, `dram_reconciled`) must match
//! exactly. Missing cases or metrics fail too. Exit status: 0 clean
//! (or `--warn-only`), 1 regressed, 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use winofuse_bench::diff::{diff_texts, DiffConfig};

fn usage(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    eprintln!("usage: bench_diff <baseline> <current> [--warn-only] [--tolerance-pct N]");
    std::process::exit(2);
}

/// The `BENCH_*.json` files under `path` (or `path` itself when a file).
fn bench_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    if !path.is_dir() {
        return Err(format!(
            "`{}` is neither a file nor a directory",
            path.display()
        ));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("reading `{}`: {e}", path.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files in `{}`", path.display()));
    }
    Ok(files)
}

fn run(baseline: &Path, current: &Path, cfg: &DiffConfig) -> Result<bool, String> {
    let mut any_failure = false;
    for base_file in bench_files(baseline)? {
        let name = base_file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("BENCH.json")
            .to_string();
        let cur_file = if current.is_dir() {
            current.join(&name)
        } else {
            current.to_path_buf()
        };
        println!("== {name}");
        if !cur_file.is_file() {
            println!("  FAIL  current report `{}` is missing", cur_file.display());
            any_failure = true;
            continue;
        }
        let base_text = std::fs::read_to_string(&base_file)
            .map_err(|e| format!("reading `{}`: {e}", base_file.display()))?;
        let cur_text = std::fs::read_to_string(&cur_file)
            .map_err(|e| format!("reading `{}`: {e}", cur_file.display()))?;
        let report = diff_texts(&base_text, &cur_text, cfg).map_err(|e| format!("{name}: {e}"))?;
        for m in &report.metrics {
            if m.detail == "informational" {
                continue;
            }
            println!(
                "  {}  {:<40} {}",
                if m.failed { "FAIL" } else { "  ok" },
                m.key,
                m.detail
            );
        }
        any_failure |= report.has_failures();
    }
    Ok(any_failure)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut warn_only = false;
    let mut cfg = DiffConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--warn-only" => warn_only = true,
            "--tolerance-pct" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => cfg.tolerance = pct / 100.0,
                _ => usage("--tolerance-pct needs a non-negative number"),
            },
            other if other.starts_with("--") => usage(&format!("unknown flag `{other}`")),
            _ => paths.push(PathBuf::from(a)),
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two paths: <baseline> <current>");
    }
    match run(&paths[0], &paths[1], &cfg) {
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
        Ok(true) if warn_only => {
            println!("\nregressions found (warn-only mode, not failing the build)");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            println!("\nregressions found");
            ExitCode::FAILURE
        }
        Ok(false) => {
            println!("\nall benchmarks within tolerance");
            ExitCode::SUCCESS
        }
    }
}
