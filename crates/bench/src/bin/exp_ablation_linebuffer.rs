//! **Ablation: line-buffer vs tile-based fusion** — the architecture
//! choice of §4.2. The paper replaces Alwani et al.'s tile-based reuse
//! buffers ("complex operations [...] due to mutative boundary
//! conditions. Besides, these buffers occupy additional BRAMs") with
//! circular line buffers. This experiment quantifies both costs:
//!
//! 1. BRAM: tile-pyramid buffers vs `K+S`-row line buffers, per tile size,
//! 2. compute: the recomputation a tile-based design *without* reuse
//!    buffers would pay (the trade-off \[1\] studied).

use winofuse_bench::{banner, MB};
use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::engine::{Algorithm, EngineConfig};
use winofuse_fusion::baseline;
use winofuse_fusion::pipeline::{group_timing, LayerConfig};
use winofuse_fusion::pyramid::Pyramid;
use winofuse_model::zoo;

fn main() {
    let net = zoo::vgg_e_fused_prefix();
    let device = FpgaDevice::zc706();
    banner(
        "Ablation",
        "line-buffer vs tile-based fusion on the VGG-E prefix",
        Some(&net),
    );

    // Our line-buffer group (modest uniform engines — architecture only).
    let configs: Vec<LayerConfig> = (0..net.len())
        .map(|i| {
            LayerConfig::build(
                &net,
                i,
                EngineConfig {
                    algorithm: Algorithm::Conventional,
                    parallelism: 16,
                },
            )
            .expect("conventional p=16 always builds")
        })
        .collect();
    let line = group_timing(&configs, &device).expect("line-buffer group");
    println!(
        "line-buffer fusion: {} BRAM18K for all buffers/FIFOs (no recomputation by construction)",
        line.resources.bram_18k
    );

    // Tile-based designs across tile sizes.
    let pyramid = Pyramid::for_network(&net, 0, net.len()).unwrap();
    let out = net.output_shape().unwrap();
    println!(
        "\n{:>6} {:>16} {:>18} {:>14}",
        "tile", "pyramid base", "recompute ratio", "(if no reuse)"
    );
    for tile in [1usize, 2, 4, 8, 14, 28] {
        let base = pyramid.required_input(tile);
        let ratio = pyramid.recompute_ratio(tile, out.height);
        println!("{tile:>6} {base:>13} px {ratio:>17.2}x {:>14}", "");
    }
    println!("(reuse buffers avoid the recompute but pay BRAM instead — below)");

    let alwani = baseline::design(&net, 0, net.len(), &device).expect("baseline fits");
    println!(
        "\ntile-based fusion (tile {}): {} BRAM18K total ({} more than line buffers)",
        alwani.tile,
        alwani.resources.bram_18k,
        alwani
            .resources
            .bram_18k
            .saturating_sub(line.resources.bram_18k)
    );
    println!(
        "boundary-management throughput derating: {:.0}%",
        (1.0 - baseline::BOUNDARY_EFFICIENCY) * 100.0
    );

    // Smaller BRAM budgets hurt the tile design first.
    println!("\nBRAM sensitivity:");
    println!(
        "{:>12} {:>12} {:>16}",
        "BRAM budget", "tile chosen", "latency (cyc)"
    );
    for bram in [1090u64, 700, 500, 400] {
        let dev =
            device.with_resources(winofuse_fpga::ResourceVec::new(bram, 900, 437_200, 218_600));
        match baseline::design(&net, 0, net.len(), &dev) {
            Ok(d) => println!("{bram:>12} {:>12} {:>16}", d.tile, d.latency),
            Err(_) => println!("{bram:>12} {:>12} {:>16}", "-", "infeasible"),
        }
    }

    assert!(
        alwani.resources.bram_18k > line.resources.bram_18k,
        "tile buffers must cost more BRAM than line buffers"
    );
    assert!(
        pyramid.recompute_ratio(1, out.height) > pyramid.recompute_ratio(8, out.height),
        "smaller tiles must recompute more"
    );
    let _ = MB;
}
