//! **Serving benchmark** — throughput and tail latency of the plan-cached
//! serving engine against the one-shot-per-request CLI baseline.
//!
//! Three execution regimes over the same conv body and weights:
//!
//! 1. **one-shot** — every request pays strategy search, filter
//!    transforms, and weight prepacking before running a single frame,
//!    exactly like invoking `winofuse run` per request;
//! 2. **serve (seq)** — a warm [`ServeEngine`] answering one frame per
//!    batch: the plan cache amortizes search and transforms, batching
//!    adds nothing;
//! 3. **serve (batched)** — the same engine at `--max-batch 8`,
//!    coalescing eight frames per invocation.
//!
//! Outputs of all three regimes are cross-checked bit-identical, a
//! queued load phase (client threads × submit/wait) populates the
//! request-latency percentiles, and the plan cache is pinned to exactly
//! one strategy search across every regime (`plan_search_once`). Writes
//! `BENCH_serve.json` for `bench_diff` to gate.
//!
//! ```text
//! exp_bench_serve [--smoke] [--runs N] [--threads N]
//!   --smoke      one run per regime (CI sanity mode)
//!   --runs N     timed repetitions per regime     [default 5]
//!   --threads N  executor worker threads          [default 4]
//! ```

use std::sync::Arc;
use std::time::Instant;

use winofuse::{ServeConfig, ServeEngine};
use winofuse_bench::{banner, BenchCase, BenchReport, LatencySamples};
use winofuse_conv::tensor::{random_tensor, Tensor};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::runtime::NetworkWeights;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;
use winofuse_telemetry::Telemetry;

const MAX_BATCH: usize = 8;
const BUDGET_BYTES: u64 = 8 * 1024 * 1024;

fn frame(seed: u64) -> Tensor<f32> {
    random_tensor(1, 3, 32, 32, seed)
}

/// The one-shot baseline: a fresh plan build (strategy search + filter
/// transforms + prepacking) followed by a single-frame run, per request —
/// the cost structure of `winofuse run` invoked once per inference.
fn oneshot_request(
    threads: usize,
    net: &Arc<winofuse_model::network::Network>,
    weights: &Arc<NetworkWeights>,
    x: &Tensor<f32>,
) -> Tensor<f32> {
    let fw = Framework::new(FpgaDevice::zc706()).with_threads(threads);
    let entry = fw
        .plan_entry(
            Arc::clone(net),
            Arc::clone(weights),
            BUDGET_BYTES,
            DataType::Fixed16,
        )
        .expect("one-shot plan builds");
    entry
        .executor()
        .expect("executor from prepared banks")
        .with_threads(threads)
        .run(x)
        .expect("one-shot run")
}

fn main() {
    let opts = winofuse_bench::parse_bench_args("exp_bench_serve", std::env::args().skip(1));
    let (runs, threads) = (opts.runs, opts.threads);

    banner(
        "BENCH serve",
        &format!(
            "plan-cached serving vs one-shot per request, batch {MAX_BATCH}, {threads} threads, median of {runs}"
        ),
        None,
    );

    let net = Arc::new(zoo::small_test_net().conv_body().expect("conv body"));
    let weights = Arc::new(NetworkWeights::random(&net, 7).expect("weights"));

    let telemetry = Telemetry::enabled();
    let fw = Framework::new(FpgaDevice::zc706())
        .with_threads(threads)
        .with_telemetry(telemetry.clone());
    let eng = ServeEngine::start(
        fw,
        (*net).clone(),
        (*weights).clone(),
        telemetry.clone(),
        ServeConfig {
            max_batch: MAX_BATCH,
            ..ServeConfig::default()
        },
    )
    .expect("engine starts");
    eng.warm().expect("plan warms");
    let searches_after_warm = telemetry.summary().counter("bnb.plans_computed");

    // --- regime 1: one-shot per request -------------------------------
    let oneshot = LatencySamples::new();
    let mut oneshot_out = None;
    for i in 0..runs {
        let x = frame(i as u64);
        let out = oneshot.time(|| oneshot_request(threads, &net, &weights, &x));
        if i == 0 {
            oneshot_out = Some(out);
        }
    }

    // --- regime 2: warm serve, one frame per batch ---------------------
    let seq = LatencySamples::new();
    let mut seq_out = None;
    for i in 0..runs {
        let frames = [frame(i as u64)];
        let mut out = seq.time(|| eng.run_batch_now(&frames).expect("serve seq"));
        if i == 0 {
            seq_out = Some(out.remove(0));
        }
    }

    // --- regime 3: warm serve, coalesced batches of MAX_BATCH ----------
    let batched = LatencySamples::new();
    let mut batched_out = None;
    let batch_started = Instant::now();
    for r in 0..runs {
        let frames: Vec<Tensor<f32>> = (0..MAX_BATCH).map(|i| frame(i as u64)).collect();
        let started = Instant::now();
        let outs = eng.run_batch_now(&frames).expect("serve batched");
        // Per-request latency: the batch amortizes over MAX_BATCH frames.
        batched.record_us(started.elapsed().as_micros() as u64 / MAX_BATCH as u64);
        if r == 0 {
            batched_out = Some(outs);
        }
    }
    let batch_elapsed = batch_started.elapsed();
    let throughput_rps = (runs * MAX_BATCH) as f64 / batch_elapsed.as_secs_f64();

    // All three regimes must agree bit-for-bit on frame 0.
    let reference = oneshot_out.expect("one-shot ran");
    assert_eq!(
        reference.as_slice(),
        seq_out.expect("seq ran").as_slice(),
        "serve(seq) diverged from the one-shot baseline"
    );
    let batched_out = batched_out.expect("batched ran");
    assert_eq!(
        reference.as_slice(),
        batched_out[0].as_slice(),
        "serve(batched) frame 0 diverged from the one-shot baseline"
    );

    // --- queued load phase: client threads through submit/wait ---------
    let total_requests: u64 = (runs as u64) * MAX_BATCH as u64;
    let concurrency = 4;
    let queued = LatencySamples::new();
    std::thread::scope(|scope| {
        let eng = &eng;
        let queued = &queued;
        for c in 0..concurrency {
            scope.spawn(move || {
                let mut i = c as u64;
                while i < total_requests {
                    let started = Instant::now();
                    match eng.submit(frame(i)) {
                        Ok(ticket) => {
                            ticket.wait().expect("queued request completes");
                            queued.record_us(started.elapsed().as_micros() as u64);
                            i += concurrency as u64;
                        }
                        Err(_) => std::thread::sleep(std::time::Duration::from_micros(200)),
                    }
                }
            });
        }
    });

    let searches_after_traffic = telemetry.summary().counter("bnb.plans_computed");
    let plan_search_once = searches_after_traffic == searches_after_warm && eng.plan_misses() == 1;
    let (hits, misses) = (eng.plan_hits(), eng.plan_misses());
    eng.shutdown().expect("clean shutdown");

    let speedup = oneshot.median_ms() / batched.median_ms();
    println!(
        "one-shot {:8.2} ms | serve seq {:8.2} ms | serve batched {:8.2} ms/req ({:4.2}x over one-shot)",
        oneshot.median_ms(),
        seq.median_ms(),
        batched.median_ms(),
        speedup,
    );
    println!(
        "throughput {throughput_rps:8.1} req/s | queued p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms | plan cache {hits} hit(s), {misses} miss(es)",
        queued.median_ms(),
        queued.p95_ms(),
        queued.p99_ms(),
    );
    assert!(
        plan_search_once,
        "strategy search ran more than once across the serving regimes"
    );

    let mut report = BenchReport::new("serve", &opts);
    report.case(
        "small_net",
        BenchCase::default()
            .float("median_oneshot_ms", oneshot.median_ms())
            .float("median_serve_seq_ms", seq.median_ms())
            .float("median_serve_batched_ms", batched.median_ms())
            .float("speedup_batched_vs_oneshot", speedup)
            .float("throughput_rps", throughput_rps)
            .float("p50_request_ms", queued.median_ms())
            .float("p95_request_ms", queued.p95_ms())
            .float("p99_request_ms", queued.p99_ms())
            .flag("plan_search_once", plan_search_once),
    );
    let path = report.write().expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
