//! **Ablation: convolution algorithm arithmetic complexity** — §1 of the
//! paper lists the computation structures available for convolutional
//! layers: the conventional approach, matrix multiplication, FFT, and
//! Winograd. This experiment tabulates real multiplication counts per
//! (input-channel, output-channel) plane pair for every convolutional
//! layer of the evaluated networks, showing why the framework explores
//! conventional + Winograd and not FFT: CNN kernels are too small for
//! FFT to amortize.

use winofuse_bench::banner;
use winofuse_conv::cook_toom::WinogradTransform;
use winofuse_conv::fft::fft_conv_multiplies;
use winofuse_conv::ConvGeometry;
use winofuse_model::layer::LayerKind;
use winofuse_model::network::Network;
use winofuse_model::zoo;

fn wino_multiplies(geom: ConvGeometry, m: usize) -> Option<u64> {
    let t = WinogradTransform::generate(m, geom.kernel()).ok()?;
    if geom.stride() != 1 {
        return None;
    }
    let tiles_h = geom.output_height().div_ceil(m) as u64;
    let tiles_w = geom.output_width().div_ceil(m) as u64;
    Some(tiles_h * tiles_w * t.multiplies_2d() as u64)
}

fn print_network(net: &Network) {
    println!("\n=== {} ===", net.name());
    println!(
        "{:<12} {:>9} {:>6} {:>14} {:>14} {:>14} {:>10}",
        "layer", "fmap", "K/S", "direct", "winograd F4", "fft", "best"
    );
    let shapes = net.shapes().expect("validated network");
    for (i, layer) in net.layers().iter().enumerate() {
        let LayerKind::Conv(c) = &layer.kind else {
            continue;
        };
        let input = shapes[i];
        let geom = ConvGeometry::rect(input.height, input.width, c.kernel, c.stride, c.pad)
            .expect("validated geometry");
        let direct = geom.macs_per_channel_pair();
        let wino = wino_multiplies(geom, 4);
        let fft = fft_conv_multiplies(geom);
        let best = [
            ("direct", Some(direct)),
            ("winograd", wino),
            ("fft", Some(fft)),
        ]
        .iter()
        .filter_map(|(n, v)| v.map(|v| (*n, v)))
        .min_by_key(|(_, v)| *v)
        .map(|(n, _)| n)
        .unwrap_or("-");
        println!(
            "{:<12} {:>9} {:>3}/{:<2} {:>14} {:>14} {:>14} {:>10}",
            layer.name,
            format!("{}x{}", input.height, input.width),
            c.kernel,
            c.stride,
            direct,
            wino.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
            fft,
            best
        );
    }
}

fn main() {
    banner(
        "Ablation",
        "real multiplications per channel pair: direct vs winograd vs fft",
        None,
    );
    print_network(&zoo::vgg_e_fused_prefix());
    print_network(&zoo::alexnet().conv_body().expect("alexnet body"));

    // Paper-shape assertions: winograd wins on every 3x3/s1 layer; FFT
    // never wins on these CNN kernel sizes.
    let net = zoo::vgg_e_fused_prefix();
    let shapes = net.shapes().unwrap();
    for (i, layer) in net.layers().iter().enumerate() {
        let LayerKind::Conv(c) = &layer.kind else {
            continue;
        };
        let input = shapes[i];
        let geom =
            ConvGeometry::rect(input.height, input.width, c.kernel, c.stride, c.pad).unwrap();
        let direct = geom.macs_per_channel_pair();
        let fft = fft_conv_multiplies(geom);
        assert!(
            fft > direct / 4,
            "fft should not dominate on {}",
            layer.name
        );
        if let Some(w) = wino_multiplies(geom, 4) {
            assert!(w < direct, "winograd must beat direct on {}", layer.name);
            assert!(w < fft, "winograd must beat fft on {}", layer.name);
        }
    }
    println!("\nwinograd F(4x4,3x3) dominates on every stride-1 small-kernel layer;");
    println!("fft never amortizes at CNN kernel sizes — matching the paper's choice");
    println!("to explore {{conventional, winograd}} only.");
}
