//! **Figure 1** — roofline motivation on the Virtex-7 485T (4.5 GB/s).
//!
//! Reproduces the four design points of §2.2 for the second convolutional
//! layer of VGGNet ("64 input feature maps with size 224×224 and 64
//! kernels with 64 channels and size 3×3"):
//!
//! * **A** — conventional algorithm (compute bound),
//! * **B** — Winograd algorithm clipped by the bandwidth roof,
//! * **B′** — Winograd's ideal performance without the bandwidth roof,
//! * **C** — Winograd inside a fusion group (higher CTC ratio, so the
//!   bandwidth roof no longer binds).

use winofuse_bench::banner;
use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::engine::{computational_roof_gops, Algorithm};
use winofuse_fpga::roofline::Roofline;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;

fn main() {
    let device = FpgaDevice::virtex7_485t();
    let net = zoo::vgg_e();
    banner(
        "Figure 1",
        "roofline motivation (VGG conv2 on Virtex-7 485T, 4.5 GB/s)",
        None,
    );

    // The motivating layer: index 1 of VGG-E (conv1_2 = "2nd conv layer").
    let layer_idx = 1;
    let input = net.input_shape_of(layer_idx).unwrap();
    let output = net.output_shape_of(layer_idx).unwrap();
    let layer = &net.layers()[layer_idx];
    let ops = layer.ops(input);
    println!(
        "layer: {} — input {input}, output {output}, {:.2} Gops",
        layer.name,
        ops as f64 / 1e9
    );

    let dtype = DataType::Fixed16;
    // Single-layer CTC: ops over (input + output feature maps), the
    // paper's simplification ("only the input feature maps are considered
    // for bandwidth consumption" — we include both and report each).
    let fmap_bytes = (input.bytes(dtype) + output.bytes(dtype)) as u64;
    let ctc_single = ops as f64 / fmap_bytes as f64;
    let ctc_input_only = ops as f64 / input.bytes(dtype) as f64;

    let conv_roof = computational_roof_gops(&device, Algorithm::Conventional, 3);
    let wino_roof = computational_roof_gops(&device, Algorithm::winograd_f43(), 3);
    println!("\ncomputational roof (conventional): {conv_roof:>8.1} GOPS");
    println!(
        "computational roof (winograd)    : {wino_roof:>8.1} GOPS  ({:.2}x)",
        wino_roof / conv_roof
    );
    println!(
        "bandwidth roof slope             : {:>8.1} GB/s",
        device.bandwidth_bytes_per_sec() as f64 / 1e9
    );

    let roofline = Roofline::for_device(&device);
    let a = roofline.evaluate("A  (conventional)", ctc_single, conv_roof);
    let b = roofline.evaluate("B  (winograd)", ctc_single, wino_roof);
    let b_input_only = roofline.evaluate("B  (input-only CTC)", ctc_input_only, wino_roof);

    // C: fuse conv1_2 with its neighbors (conv1_1 .. pool2): the same
    // DRAM transfer now carries several layers' work, raising CTC.
    let prefix = zoo::vgg_e_fused_prefix();
    let fused_ops = prefix.total_ops();
    let fused_bytes = prefix.fused_transfer_bytes(0..prefix.len(), dtype).unwrap();
    let ctc_fused = fused_ops as f64 / fused_bytes as f64;
    let c = roofline.evaluate("C  (winograd + fusion)", ctc_fused, wino_roof);

    println!(
        "\n{:<24} {:>12} {:>14} {:>14}  bound",
        "point", "CTC (op/B)", "roof (GOPS)", "attainable"
    );
    for p in [&a, &b, &b_input_only, &c] {
        println!(
            "{:<24} {:>12.1} {:>14.1} {:>14.1}  {}",
            p.label,
            p.ctc_ops_per_byte,
            p.computational_roof_gops,
            p.attainable_gops,
            if p.bandwidth_bound {
                "bandwidth"
            } else {
                "compute"
            }
        );
    }
    println!(
        "{:<24} {:>12} {:>14.1} {:>14.1}  (no bandwidth roof)",
        "B' (winograd ideal)", "-", wino_roof, wino_roof
    );

    println!("\npaper shape checks:");
    let ok1 = !a.bandwidth_bound;
    let ok2 =
        b_input_only.bandwidth_bound || b.attainable_gops < wino_roof * 0.99 || b.bandwidth_bound;
    let ok3 = c.attainable_gops >= b.attainable_gops;
    let ok4 = (3.5..=4.0).contains(&(wino_roof / conv_roof));
    println!("  [{}] A is compute bound", tick(ok1));
    println!(
        "  [{}] B loses performance to the bandwidth roof (B < B')",
        tick(ok2)
    );
    println!("  [{}] fusion (C) recovers performance: C >= B", tick(ok3));
    println!("  [{}] winograd/conventional roof ratio ~ 4x", tick(ok4));
    assert!(ok1 && ok3 && ok4, "figure-1 shape must hold");
}

fn tick(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        " "
    }
}
