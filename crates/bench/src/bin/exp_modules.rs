//! **§7.1 extension: module coarsening for very deep CNNs** — "Very deep
//! CNNs such as GoogleNet are usually based on modules and highly
//! structured. To further improve the efficiency of our algorithm, we can
//! treat every module as a single layer."
//!
//! On a GoogleNet-like 23-layer network this experiment compares the
//! full layer-granularity optimization against the module-granularity
//! restriction: optimizer wall-clock shrinks while the strategy quality
//! stays close (module boundaries are where feature maps are smallest,
//! so they are where the unrestricted optimizer usually cuts anyway).

use std::time::Instant;

use winofuse_bench::{banner, fmt_cycles, MB};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::zoo;

fn main() {
    let modular = zoo::googlenet_like();
    let net = &modular.network;
    let device = FpgaDevice::zc706();
    banner(
        "§7.1 modules",
        "GoogleNet-like network: layer vs module granularity",
        Some(net),
    );
    println!(
        "{} layers in {} modules, {:.2} Gops/frame",
        net.len(),
        modular.modules.len(),
        net.total_ops() as f64 / 1e9
    );

    let fw = Framework::new(device.clone());
    println!(
        "\n{:>8} | {:<9} {:>14} {:>9} {:>7} {:>10}",
        "T (MB)", "mode", "latency (cyc)", "GOPS", "groups", "time (ms)"
    );
    for t_mb in [4u64, 16, 64] {
        let t0 = Instant::now();
        let full = fw.optimize(net, t_mb * MB).expect("feasible");
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let coarse = fw.optimize_modular(&modular, t_mb * MB).expect("feasible");
        let coarse_ms = t0.elapsed().as_secs_f64() * 1e3;

        for (mode, d, ms) in [("layers", &full, full_ms), ("modules", &coarse, coarse_ms)] {
            println!(
                "{:>8} | {:<9} {:>14} {:>9.1} {:>7} {:>10.1}",
                t_mb,
                mode,
                fmt_cycles(d.timing.latency),
                d.timing.effective_gops,
                d.partition.groups.len(),
                ms
            );
        }
        // Coarsening restricts the search: never faster than the optimum,
        // and close to it (within 25% here).
        assert!(coarse.timing.latency >= full.timing.latency);
        let gap = coarse.timing.latency as f64 / full.timing.latency as f64;
        assert!(gap < 1.25, "module coarsening lost too much: {gap:.2}x");
        // Every group boundary sits on a module boundary.
        let ends: Vec<usize> = modular.modules.iter().map(|m| m.end).collect();
        for g in &coarse.partition.groups {
            assert!(ends.contains(&g.end), "group end {} off-module", g.end);
        }
    }
    println!("\nmodule granularity preserves strategy quality while shrinking the");
    println!("partition search — the paper's suggested treatment of module-based CNNs.");
}
