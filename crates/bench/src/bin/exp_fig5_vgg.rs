//! **Figure 5** — latency of the first five convolutional (+ two pooling)
//! layers of VGGNet-E under five feature-map transfer constraints:
//! our framework vs the fused-layer accelerator of Alwani et al. \[1\].
//!
//! Paper result: 1.42×–3.85× (average 1.99×) speedup; with the
//! constraint fully relaxed ("34 MB"), each layer forms its own group and
//! the design reaches 660 GOPS effective performance.

use winofuse_bench::{
    banner, fmt_cycles, write_results_csv, write_telemetry_json, FIG5_SWEEP_MB, MB,
};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_fusion::baseline;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;
use winofuse_telemetry::Telemetry;

fn main() {
    let net = zoo::vgg_e_fused_prefix();
    let device = FpgaDevice::zc706();
    banner(
        "Figure 5",
        "VGG-E first 5 conv + 2 pool layers: latency vs transfer constraint",
        Some(&net),
    );
    let total_ops = net.total_ops();
    let min_transfer = net
        .fused_transfer_bytes(0..net.len(), DataType::Fixed16)
        .unwrap();
    println!(
        "work: {:.2} Gops/frame; fully-fused transfer floor: {:.2} MB",
        total_ops as f64 / 1e9,
        min_transfer as f64 / MB as f64
    );

    // [1]: one fixed design — no transfer/performance trade-off knob.
    let alwani = baseline::design(&net, 0, net.len(), &device).expect("baseline fits zc706");
    println!(
        "\nAlwani et al. [1] (tile {}): {} cycles ({:.1} GOPS), fmap transfer {:.2} MB",
        alwani.tile,
        fmt_cycles(alwani.latency),
        alwani.effective_gops(total_ops, &device),
        alwani.dram_fmap_bytes as f64 / MB as f64,
    );

    let tele = Telemetry::enabled();
    let fw = Framework::new(device.clone()).with_telemetry(tele.clone());
    println!(
        "\n{:>7} | {:>14} {:>8} | {:>14} | {:>8} {:>6} {:>5}",
        "T (MB)", "ours (cycles)", "GOPS", "[1] (cycles)", "speedup", "groups", "wino"
    );
    let mut speedups = Vec::new();
    let mut csv_rows = Vec::new();
    for t_mb in FIG5_SWEEP_MB {
        let ours = fw.optimize(&net, t_mb * MB).expect("budget feasible");
        let s = alwani.latency as f64 / ours.timing.latency as f64;
        speedups.push(s);
        csv_rows.push(format!(
            "{t_mb},{},{},{s:.4}",
            ours.timing.latency, alwani.latency
        ));
        println!(
            "{:>7} | {:>14} {:>8.1} | {:>14} | {:>7.2}x {:>6} {:>5}",
            t_mb,
            fmt_cycles(ours.timing.latency),
            ours.timing.effective_gops,
            fmt_cycles(alwani.latency),
            s,
            ours.partition.groups.len(),
            ours.partition.strategy.winograd_layer_count(),
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let (lo, hi) = speedups
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &s| (l.min(s), h.max(s)));
    if let Ok(path) = write_results_csv(
        "fig5_vgg",
        "transfer_mb,ours_cycles,alwani_cycles,speedup",
        &csv_rows,
    ) {
        println!("\n(raw data written to {})", path.display());
    }
    if let Ok(path) = write_telemetry_json("fig5_vgg", &tele.summary()) {
        println!("(search/DP telemetry written to {})", path.display());
    }
    println!("\nspeedup over [1]: {lo:.2}x - {hi:.2}x (average {avg:.2}x)");
    println!("paper reports   : 1.42x - 3.85x (average 1.99x)");

    // The relaxed point: unlimited transfer -> singleton groups.
    let relaxed = fw.optimize(&net, 64 * MB).expect("relaxed budget feasible");
    println!(
        "\nrelaxed constraint ({} groups): {} cycles = {:.1} GOPS effective",
        relaxed.partition.groups.len(),
        fmt_cycles(relaxed.timing.latency),
        relaxed.timing.effective_gops
    );
    println!("paper reports at 34 MB: 660 GOPS effective");

    assert!(
        speedups.iter().all(|&s| s > 1.0),
        "must beat [1] at every constraint"
    );
    assert!(
        relaxed.timing.latency <= fw.optimize(&net, 2 * MB).unwrap().timing.latency,
        "relaxing the constraint must help"
    );
}
