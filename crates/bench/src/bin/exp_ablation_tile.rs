//! **Ablation: Winograd tile size** — §2.1: "There are multiple tile size
//! choices for Winograd algorithm. In this paper, we use a uniform size
//! F(4×4, 3×3)." This experiment shows why: per tile size m, the DSP
//! efficiency, transform adder cost, numerical constants and the achieved
//! end-to-end latency when the whole framework is forced to that tile.

use winofuse_bench::{banner, fmt_cycles, MB};
use winofuse_conv::cook_toom::WinogradTransform;
use winofuse_core::bnb::AlgoPolicy;
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::zoo;

fn main() {
    banner(
        "Ablation",
        "Winograd output tile size m for r = 3 kernels",
        None,
    );

    println!(
        "{:>3} {:>6} {:>11} {:>12} {:>12} {:>12} {:>14}",
        "m", "alpha", "mults/tile", "DSP-eff", "in-adds", "out-adds", "odd constants"
    );
    for m in [1usize, 2, 3, 4, 6] {
        let t = WinogradTransform::generate(m, 3).expect("small tiles generate");
        println!(
            "{:>3} {:>6} {:>11} {:>11.2}x {:>12} {:>12} {:>14}",
            m,
            t.alpha(),
            t.multiplies_2d(),
            t.dsp_efficiency(),
            t.input_transform_adds(),
            t.output_transform_adds(),
            t.nontrivial_constants()
        );
    }
    println!("(DSP efficiency grows with m, but so do adder networks and constant");
    println!(" precision pressure — the paper settles on m = 4.)");

    // End-to-end: force the framework to each tile size on the VGG prefix.
    let net = zoo::vgg_e_fused_prefix();
    let device = FpgaDevice::zc706();
    let ops = net.total_ops();
    println!("\nVGG-E prefix at 2 MB, Winograd tile forced to m:");
    println!(
        "{:>3} {:>14} {:>9} {:>6}",
        "m", "latency (cyc)", "GOPS", "wino"
    );
    let mut results = Vec::new();
    for m in [2usize, 3, 4, 6] {
        let policy = AlgoPolicy {
            winograd_m: m,
            ..AlgoPolicy::default()
        };
        let fw = Framework::new(device.clone()).with_policy(policy);
        let d = fw.optimize(&net, 2 * MB).expect("feasible");
        println!(
            "{:>3} {:>14} {:>9.1} {:>6}",
            m,
            fmt_cycles(d.timing.latency),
            device.effective_gops(ops, d.timing.latency),
            d.partition.strategy.winograd_layer_count()
        );
        results.push((m, d.timing.latency));
    }
    let best = results.iter().min_by_key(|(_, l)| *l).unwrap();
    println!(
        "\nbest tile on this workload: m = {} (paper uses m = 4)",
        best.0
    );
    // m=1 is degenerate (no saving); bigger tiles must beat it.
    let t1 = WinogradTransform::generate(1, 3).unwrap();
    assert_eq!(t1.dsp_efficiency(), 1.0);
    assert!(
        WinogradTransform::generate(4, 3).unwrap().dsp_efficiency() == 4.0,
        "F(4,3) efficiency is exactly 4"
    );
}
