//! **Table 1** — detailed comparison under the 2 MB transfer constraint:
//! resources, power and energy efficiency of our strategy vs the
//! fused-layer accelerator of Alwani et al. \[1\], on the VGG-E prefix.
//!
//! Paper values for reference (ours / \[1\]): BRAM18K 909/818, DSP 824/...,
//! FF 120,957/90,854, LUT 155,xxx/118,400, power ≈9.4 W, with a large
//! energy-efficiency advantage for the heterogeneous design.

use winofuse_bench::{banner, fmt_cycles, write_telemetry_json, MB};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::energy::EnergyModel;
use winofuse_fpga::ResourceVec;
use winofuse_fusion::baseline;
use winofuse_model::zoo;

fn main() {
    let net = zoo::vgg_e_fused_prefix();
    let device = FpgaDevice::zc706();
    banner(
        "Table 1",
        "detailed comparison under the 2 MB transfer constraint",
        Some(&net),
    );
    let total_ops = net.total_ops();
    let energy = EnergyModel::new();

    let fw = Framework::new(device.clone());
    let (ours, run) = fw.optimize_traced(&net, 2 * MB).expect("2 MB is feasible");
    if let Ok(path) = write_telemetry_json("table1_vgg_detail", &run) {
        println!("(search/DP telemetry written to {})\n", path.display());
    }
    // Peak-group resources: groups execute sequentially, so the busiest
    // group defines instantaneous utilization (here there is one group).
    let ours_res: ResourceVec = ours
        .partition
        .groups
        .iter()
        .map(|g| g.timing.resources)
        .max_by_key(|r| r.dsp)
        .unwrap_or(ResourceVec::ZERO);
    let ours_secs = device.cycles_to_seconds(ours.timing.latency);
    let ours_power = energy.power_watts(&ours_res);
    let ours_eff = energy.energy_efficiency_gops_per_watt(&ours_res, total_ops, ours_secs);

    let alwani = baseline::design(&net, 0, net.len(), &device).expect("baseline fits");
    let alw_secs = device.cycles_to_seconds(alwani.latency);
    let alw_power = energy.power_watts(&alwani.resources);
    let alw_eff = energy.energy_efficiency_gops_per_watt(&alwani.resources, total_ops, alw_secs);

    println!("{:<28} {:>14} {:>14}", "", "Ours", "[1]");
    let row = |label: &str, a: String, b: String| {
        println!("{label:<28} {a:>14} {b:>14}");
    };
    row(
        "BRAM18K",
        ours_res.bram_18k.to_string(),
        alwani.resources.bram_18k.to_string(),
    );
    row(
        "DSP48E",
        ours_res.dsp.to_string(),
        alwani.resources.dsp.to_string(),
    );
    row(
        "FF",
        ours_res.ff.to_string(),
        alwani.resources.ff.to_string(),
    );
    row(
        "LUT",
        ours_res.lut.to_string(),
        alwani.resources.lut.to_string(),
    );
    row(
        "Power (W)",
        format!("{ours_power:.2}"),
        format!("{alw_power:.2}"),
    );
    row(
        "Latency (cycles)",
        fmt_cycles(ours.timing.latency),
        fmt_cycles(alwani.latency),
    );
    row(
        "Effective perf (GOPS)",
        format!("{:.1}", ours.timing.effective_gops),
        format!("{:.1}", alwani.effective_gops(total_ops, &device)),
    );
    row(
        "Energy eff (GOPS/W)",
        format!("{ours_eff:.1}"),
        format!("{alw_eff:.1}"),
    );

    println!(
        "\nspeedup: {:.2}x | power ratio: {:.2}x | energy-efficiency gain: {:.2}x",
        alwani.latency as f64 / ours.timing.latency as f64,
        ours_power / alw_power,
        ours_eff / alw_eff
    );
    println!("paper: \"similar amount of resource and power but [...] much better performance\"");

    // Shape assertions.
    assert!(
        ours.timing.latency < alwani.latency,
        "ours must be faster at 2 MB"
    );
    assert!(
        (0.5..2.0).contains(&(ours_power / alw_power)),
        "power must be comparable (got ratio {:.2})",
        ours_power / alw_power
    );
    assert!(ours_eff > alw_eff, "energy efficiency must improve");
}
