//! **Convolution benchmark** — throughput of the fast execution backends
//! (batched Winograd-as-GEMM, blocked im2col+GEMM, and sparse Winograd
//! CSR GEMM) against the naive reference kernels, serial and threaded.
//!
//! Three layers spanning the paper's workload spectrum: VGG-E `conv3_1`
//! (many tiles, mid channels), VGG-E `conv5_1` (few tiles, deep
//! channels), and AlexNet `conv2` (5×5 grouped — the shape Winograd
//! never sees, exercising the direct path). Reports the median of
//! `--runs` repetitions as effective GFLOP/s (direct-convolution FLOP
//! count, the usual Winograd convention), cross-checks the fast outputs
//! against the naive ones, and writes `BENCH_conv.json` for CI to
//! archive.
//!
//! ```text
//! exp_bench_conv [--smoke] [--runs N] [--threads N]
//!   --smoke      one run per configuration (CI sanity mode)
//!   --runs N     repetitions per kernel        [default 5]
//!   --threads N  parallel worker count         [default 4]
//! ```

use winofuse_bench::{banner, BenchCase, BenchReport, LatencySamples};
use winofuse_conv::cook_toom::f43;
use winofuse_conv::sparse::SparseFilters;
use winofuse_conv::tensor::{random_tensor, Tensor};
use winofuse_conv::winograd::{self, BatchedFilters};
use winofuse_conv::{direct, ConvGeometry};

/// Transform-domain density of the sparse regime, matching the CLI's
/// `--exec-algo sparse` default.
const SPARSE_DENSITY_PM: u16 = 250;

struct Case {
    name: &'static str,
    in_c: usize,
    out_c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    pad: usize,
    groups: usize,
    /// Whether the fast path under test is the batched Winograd (3×3
    /// stride-1 layers) or the blocked direct GEMM.
    winograd: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "vgg_e_conv3_1",
            in_c: 128,
            out_c: 256,
            h: 56,
            w: 56,
            kernel: 3,
            pad: 1,
            groups: 1,
            winograd: true,
        },
        Case {
            name: "vgg_e_conv5_1",
            in_c: 512,
            out_c: 512,
            h: 14,
            w: 14,
            kernel: 3,
            pad: 1,
            groups: 1,
            winograd: true,
        },
        Case {
            name: "alexnet_conv2",
            in_c: 96,
            out_c: 256,
            h: 27,
            w: 27,
            kernel: 5,
            pad: 2,
            groups: 2,
            winograd: false,
        },
    ]
}

impl Case {
    fn geometry(&self) -> ConvGeometry {
        ConvGeometry::rect(self.h, self.w, self.kernel, 1, self.pad)
            .expect("benchmark geometries are valid")
    }

    /// Direct-convolution FLOPs (multiply + add), the denominator for
    /// every algorithm's "effective" GFLOP/s.
    fn flops(&self) -> f64 {
        let geom = self.geometry();
        let per_group_c = self.in_c / self.groups;
        2.0 * (self.out_c * per_group_c * self.kernel * self.kernel) as f64
            * (geom.output_height() * geom.output_width()) as f64
    }
}

/// Runs `f` once to warm caches, then `runs` timed repetitions; returns
/// (median milliseconds via the shared histogram, last output).
fn median_ms<F: FnMut() -> Tensor<f32>>(runs: usize, mut f: F) -> (f64, Tensor<f32>) {
    let samples = LatencySamples::new();
    let mut out = f();
    for _ in 0..runs {
        out = samples.time(&mut f);
    }
    (samples.median_ms(), out)
}

struct Measurement {
    naive_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
    /// Sparse-Winograd regime (serial, parallel), 3×3 stride-1 cases only.
    sparse_ms: Option<(f64, f64)>,
}

/// Applies `conv` group by group, concatenating the per-group outputs —
/// the same decomposition the network executor performs.
fn grouped<F: FnMut(&Tensor<f32>, &Tensor<f32>) -> Tensor<f32>>(
    x: &Tensor<f32>,
    kernels: &Tensor<f32>,
    case: &Case,
    mut conv: F,
) -> Tensor<f32> {
    if case.groups <= 1 {
        return conv(x, kernels);
    }
    let geom = case.geometry();
    let cg = case.in_c / case.groups;
    let ng = case.out_c / case.groups;
    let mut out = Tensor::zeros(x.n(), case.out_c, geom.output_height(), geom.output_width());
    for g in 0..case.groups {
        let xs = x.slice_channels(g * cg, (g + 1) * cg);
        let ks = kernels.slice_channels_n(g * ng, (g + 1) * ng);
        out.write_channels(g * ng, &conv(&xs, &ks));
    }
    out
}

fn run_case(case: &Case, threads: usize, runs: usize) -> Measurement {
    let geom = case.geometry();
    let x = random_tensor(1, case.in_c, case.h, case.w, 11);
    let kernels = random_tensor(
        case.out_c,
        case.in_c / case.groups,
        case.kernel,
        case.kernel,
        13,
    );
    let transform = f43();

    let (naive_ms, naive_out) = median_ms(runs, || {
        grouped(&x, &kernels, case, |xs, ks| {
            if case.winograd {
                winograd::conv2d_f43(xs, ks, geom).expect("naive winograd")
            } else {
                direct::conv2d(xs, ks, geom).expect("naive direct")
            }
        })
    });

    let fast = |threads: usize| {
        median_ms(runs, || {
            grouped(&x, &kernels, case, |xs, ks| {
                if case.winograd {
                    let banks = BatchedFilters::new(ks, &transform).expect("filter transform");
                    winograd::conv2d_batched(xs, &banks, geom, &transform, threads, None)
                        .expect("batched winograd")
                } else {
                    direct::conv2d_fast(xs, ks, geom, threads, None).expect("fast direct")
                }
            })
        })
    };
    let (serial_ms, serial_out) = fast(1);
    let (parallel_ms, parallel_out) = fast(threads);

    // The fast paths must reproduce the naive results, and threading must
    // not change a single bit.
    let tol = 1e-4 * (case.in_c * case.kernel * case.kernel) as f32;
    assert!(
        serial_out.approx_eq(&naive_out, tol),
        "{}: fast output diverged from naive by {}",
        case.name,
        serial_out.max_abs_diff(&naive_out).unwrap()
    );
    assert_eq!(
        serial_out, parallel_out,
        "{}: thread count changed the result",
        case.name
    );

    // Sparse Winograd regime: same layers, transform domain pruned to
    // SPARSE_DENSITY_PM. Filter pruning runs inside the timed closure,
    // mirroring the dense path's in-loop filter transform.
    let sparse_ms = case.winograd.then(|| {
        let sparse = |threads: usize| {
            median_ms(runs, || {
                grouped(&x, &kernels, case, |xs, ks| {
                    let bank = SparseFilters::new(ks, &transform, SPARSE_DENSITY_PM)
                        .expect("sparse pruning");
                    winograd::conv2d_batched_sparse(xs, &bank, geom, &transform, threads, None)
                        .expect("sparse winograd")
                })
            })
        };
        let (sparse_serial_ms, sparse_serial_out) = sparse(1);
        let (sparse_parallel_ms, sparse_parallel_out) = sparse(threads);
        // Thread invariance holds at pruned density too.
        assert_eq!(
            sparse_serial_out, sparse_parallel_out,
            "{}: thread count changed the sparse result",
            case.name
        );
        // At density 1000 nothing is pruned: the CSR path must be
        // bit-identical to the dense batched Winograd output.
        let full = grouped(&x, &kernels, case, |xs, ks| {
            let bank = SparseFilters::new(ks, &transform, 1000).expect("sparse pruning");
            winograd::conv2d_batched_sparse(xs, &bank, geom, &transform, 1, None)
                .expect("sparse winograd")
        });
        assert_eq!(
            full, serial_out,
            "{}: full-density sparse diverged from dense",
            case.name
        );
        (sparse_serial_ms, sparse_parallel_ms)
    });

    Measurement {
        naive_ms,
        serial_ms,
        parallel_ms,
        sparse_ms,
    }
}

fn main() {
    let opts = winofuse_bench::parse_bench_args("exp_bench_conv", std::env::args().skip(1));
    let (runs, threads) = (opts.runs, opts.threads);

    banner(
        "BENCH conv",
        &format!("convolution kernel throughput, naive vs fast, 1 vs {threads} threads, median of {runs}"),
        None,
    );

    let mut report = BenchReport::new("conv", &opts);
    for case in cases() {
        let m = run_case(&case, threads, runs);
        let gf = case.flops() / 1e6; // ms → GFLOP/s divisor
        let (g_naive, g_serial, g_parallel) =
            (gf / m.naive_ms, gf / m.serial_ms, gf / m.parallel_ms);
        println!(
            "{:<16} naive {:7.2} GF/s | serial {:7.2} GF/s ({:5.1}x) | {} threads {:7.2} GF/s ({:4.2}x over serial)",
            case.name,
            g_naive,
            g_serial,
            m.naive_ms / m.serial_ms,
            threads,
            g_parallel,
            m.serial_ms / m.parallel_ms,
        );
        let mut bench_case = BenchCase::default()
            .text("algo", if case.winograd { "winograd" } else { "direct" })
            .float("median_naive_ms", m.naive_ms)
            .float("median_serial_ms", m.serial_ms)
            .float("median_parallel_ms", m.parallel_ms)
            .float("gflops_naive", g_naive)
            .float("gflops_serial", g_serial)
            .float("gflops_parallel", g_parallel)
            .float("speedup_serial_vs_naive", m.naive_ms / m.serial_ms)
            .float("speedup_parallel_vs_serial", m.serial_ms / m.parallel_ms);
        if let Some((sparse_serial_ms, sparse_parallel_ms)) = m.sparse_ms {
            let (g_ss, g_sp) = (gf / sparse_serial_ms, gf / sparse_parallel_ms);
            println!(
                "{:<16} sparse {}‰: serial {:7.2} GF/s | {} threads {:7.2} GF/s | {:4.2}x vs dense serial",
                "", SPARSE_DENSITY_PM, g_ss, threads, g_sp, m.serial_ms / sparse_serial_ms,
            );
            bench_case = bench_case
                .float("sparse_density_pm", SPARSE_DENSITY_PM as f64)
                .float("median_sparse_serial_ms", sparse_serial_ms)
                .float("median_sparse_parallel_ms", sparse_parallel_ms)
                .float("gflops_sparse_serial", g_ss)
                .float("gflops_sparse_parallel", g_sp)
                .float("speedup_sparse_vs_dense", m.serial_ms / sparse_serial_ms);
        }
        report.case(case.name, bench_case);
    }
    let path = report.write().expect("write BENCH_conv.json");
    println!("wrote {}", path.display());
}
