//! **§7.2 energy claims** — "Our fusion architecture leads to 94% to 20%
//! (average 68.2%) transfer energy saving for different transfer
//! constraints [...]. Besides, our heterogeneous algorithms exploration
//! improves the performance by 99% on average, leading to another 50%
//! energy saving for the computing part."
//!
//! We measure (a) the DRAM transfer-energy saving of fusion versus
//! unfused layer-by-layer execution across the Fig. 5 sweep, and (b) the
//! compute-energy saving of heterogeneous over conventional-only
//! strategies.

use winofuse_bench::{banner, FIG5_SWEEP_MB, MB};
use winofuse_core::bnb::AlgoPolicy;
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::energy::EnergyModel;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;

fn main() {
    let net = zoo::vgg_e_fused_prefix();
    let device = FpgaDevice::zc706();
    let energy = EnergyModel::new();
    banner(
        "§7.2 energy",
        "transfer & compute energy savings on the VGG-E prefix",
        Some(&net),
    );

    // Unfused reference: every layer loads and stores its feature maps.
    let unfused_bytes = net
        .unfused_transfer_bytes(0..net.len(), DataType::Fixed16)
        .unwrap();
    let unfused_energy = energy.transfer_energy_joules(unfused_bytes);
    println!(
        "unfused feature-map traffic: {:.1} MB -> {:.2} mJ per frame",
        unfused_bytes as f64 / MB as f64,
        unfused_energy * 1e3
    );

    let fw = Framework::new(device.clone());
    println!(
        "\n{:>7} {:>12} {:>14} {:>14}",
        "T (MB)", "fmap (MB)", "transfer (mJ)", "saving"
    );
    let mut savings = Vec::new();
    for t_mb in FIG5_SWEEP_MB {
        let d = fw.optimize(&net, t_mb * MB).expect("feasible");
        let e = energy.transfer_energy_joules(d.timing.fmap_transfer_bytes);
        let saving = 1.0 - e / unfused_energy;
        savings.push(saving);
        println!(
            "{:>7} {:>12.2} {:>14.3} {:>13.1}%",
            t_mb,
            d.timing.fmap_transfer_bytes as f64 / MB as f64,
            e * 1e3,
            saving * 100.0
        );
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64 * 100.0;
    println!("\naverage transfer-energy saving: {avg:.1}%  (paper: 20%-94%, avg 68.2%)");

    // Compute energy: heterogeneous vs conventional-only at 2 MB.
    let hetero = fw.optimize(&net, 2 * MB).unwrap();
    let conv = Framework::new(device.clone())
        .with_policy(AlgoPolicy::conventional_only())
        .optimize(&net, 2 * MB)
        .unwrap();
    let compute_energy = |d: &winofuse_core::framework::OptimizedDesign| -> f64 {
        d.partition
            .groups
            .iter()
            .map(|g| {
                energy.compute_energy_joules(
                    &g.timing.resources,
                    device.cycles_to_seconds(g.timing.latency),
                )
            })
            .sum()
    };
    let (eh, ec) = (compute_energy(&hetero), compute_energy(&conv));
    let perf_gain = conv.timing.latency as f64 / hetero.timing.latency as f64 - 1.0;
    println!(
        "\nheterogeneous vs conventional-only at 2 MB:\n  performance: +{:.0}%  (paper: +99% average)\n  compute energy: {:.2} mJ vs {:.2} mJ = {:.0}% saving  (paper: ~50%)",
        perf_gain * 100.0,
        eh * 1e3,
        ec * 1e3,
        (1.0 - eh / ec) * 100.0
    );

    assert!(
        savings.iter().all(|&s| s > 0.0),
        "fusion must always save transfer energy"
    );
    assert!(eh < ec, "heterogeneous must save compute energy");
}
