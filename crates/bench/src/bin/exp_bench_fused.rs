//! **Fused-execution benchmark** — whole-network throughput of the
//! plan-faithful fused runner against the layer-by-layer executor.
//!
//! For each network the strategy framework optimizes under the paper's
//! transfer budget, then one frame streams through the resulting fusion
//! groups (fast kernels, line-buffer windows, weights streamed once) and
//! one frame runs through `NetworkExecutor`. Outputs are cross-checked,
//! per-group measured DRAM traffic must reconcile exactly with the DP's
//! analytic budget, and the medians land in `BENCH_fused.json` for CI to
//! archive.
//!
//! ```text
//! exp_bench_fused [--smoke] [--runs N] [--threads N]
//!   --smoke      one run per configuration (CI sanity mode)
//!   --runs N     repetitions per network        [default 5]
//!   --threads N  parallel worker count          [default 4]
//! ```

use winofuse_bench::{banner, BenchCase, BenchReport, LatencySamples};
use winofuse_conv::tensor::random_tensor;
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::network::Network;
use winofuse_model::runtime::{ExecAlgo, NetworkExecutor, NetworkWeights};
use winofuse_model::zoo;

struct Case {
    name: &'static str,
    net: Network,
    /// Feature-map transfer budget handed to the optimizer.
    budget_bytes: u64,
    /// Group-size cap (§7.3 fuses AlexNet's whole 10-layer body).
    max_group: usize,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "alexnet_body",
            net: zoo::alexnet().conv_body().expect("alexnet body"),
            // §7.3: 340 KB fuses the whole body into one group.
            budget_bytes: 340 * 1024,
            max_group: 10,
        },
        Case {
            name: "vgg_e_prefix",
            net: zoo::vgg_e_fused_prefix(),
            budget_bytes: 2 * 1024 * 1024,
            max_group: 8,
        },
    ]
}

/// Runs `f` once to warm caches, then `runs` timed repetitions; returns
/// the median milliseconds via the shared histogram recorder.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let samples = LatencySamples::new();
    f();
    for _ in 0..runs {
        samples.time(&mut f);
    }
    samples.median_ms()
}

struct Measurement {
    fused_ms: f64,
    executor_ms: f64,
    groups: usize,
    dram_bytes: u64,
}

fn run_case(case: &Case, threads: usize, runs: usize) -> Measurement {
    let net = &case.net;
    let fw = Framework::new(FpgaDevice::zc706())
        .with_max_group_layers(case.max_group)
        .with_threads(threads);
    let design = fw.optimize(net, case.budget_bytes).expect("optimize");
    let weights = NetworkWeights::random(net, 11).expect("weights");
    let shape = net.input_shape();
    let x = random_tensor(1, shape.channels, shape.height, shape.width, 13);

    let runner = fw
        .fused_runner(net, &design, &weights)
        .expect("fused runner")
        .strict_dram(true);
    let exec = NetworkExecutor::with_algo(net, &weights, ExecAlgo::Auto)
        .expect("executor")
        .with_threads(threads);

    // Strict mode makes every timed frame a reconciliation check too.
    let mut fused_out = None;
    let fused_ms = median_ms(runs, || {
        fused_out = Some(runner.run(&x).expect("fused run"));
    });
    let mut exec_out = None;
    let executor_ms = median_ms(runs, || {
        exec_out = Some(exec.run(&x).expect("executor run"));
    });
    let report = fused_out.expect("at least one fused frame");
    let reference = exec_out.expect("at least one executor frame");

    let err = report
        .output
        .max_abs_diff(&reference)
        .expect("comparable outputs");
    assert!(
        err <= 1e-3,
        "{}: fused output diverged from the executor by {err}",
        case.name
    );
    assert_eq!(
        report.max_dram_delta(),
        0,
        "{}: measured DRAM traffic does not reconcile with the DP budget",
        case.name
    );

    Measurement {
        fused_ms,
        executor_ms,
        groups: report.groups.len(),
        dram_bytes: report.measured_dram_bytes(),
    }
}

fn main() {
    let opts = winofuse_bench::parse_bench_args("exp_bench_fused", std::env::args().skip(1));
    let (runs, threads) = (opts.runs, opts.threads);

    banner(
        "BENCH fused",
        &format!(
            "plan-faithful fused runner vs layer-by-layer executor, {threads} threads, median of {runs}"
        ),
        None,
    );

    let mut report = BenchReport::new("fused", &opts);
    for case in cases() {
        let m = run_case(&case, threads, runs);
        println!(
            "{:<16} fused {:8.1} ms | executor {:8.1} ms ({:4.2}x) | {} group(s), {:.2} MiB DRAM, reconciled ✓",
            case.name,
            m.fused_ms,
            m.executor_ms,
            m.executor_ms / m.fused_ms,
            m.groups,
            m.dram_bytes as f64 / (1024.0 * 1024.0),
        );
        report.case(
            case.name,
            BenchCase::default()
                .float("median_fused_ms", m.fused_ms)
                .float("median_executor_ms", m.executor_ms)
                .float("speedup_vs_executor", m.executor_ms / m.fused_ms)
                .int("groups", m.groups as u64)
                .int("dram_bytes", m.dram_bytes)
                .flag("dram_reconciled", true),
        );
    }
    let path = report.write().expect("write BENCH_fused.json");
    println!("wrote {}", path.display());
}
