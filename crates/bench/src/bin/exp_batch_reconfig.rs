//! **Extension: batch pipelining and reconfiguration cost** — the paper's
//! accounting is single-frame and ignores the cost of moving the FPGA
//! between fusion groups (each group gets the whole device, so a
//! multi-group design must time-share the fabric). This experiment makes
//! that cost explicit and shows the batch trade-off:
//!
//! * with **free** reconfiguration (the paper's implicit assumption),
//!   splitting into more groups is always at least as fast;
//! * with a **realistic** full-bitstream reload (~25 ms ≈ 2.5 M cycles at
//!   100 MHz), single-frame inference strongly favors one fused group —
//!   and batching frames restores the split design's advantage by
//!   amortizing the reloads.

use winofuse_bench::{banner, fmt_cycles, MB};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::zoo;

const RECONFIG_CYCLES: u64 = 2_500_000;

fn main() {
    let net = zoo::vgg_e_fused_prefix();
    banner(
        "Extension",
        "batch pipelining vs reconfiguration cost on the VGG-E prefix",
        Some(&net),
    );

    let free = FpgaDevice::zc706();
    let costly = free.with_reconfig_cycles(RECONFIG_CYCLES);

    // One fused group (tight budget) vs the 3-group split (loose budget).
    let fw_free = Framework::new(free);
    let fused = fw_free.optimize(&net, 2 * MB).expect("fused design");
    let split = fw_free.optimize(&net, 64 * MB).expect("split design");
    println!(
        "designs: fused = {} group(s), split = {} group(s)",
        fused.partition.groups.len(),
        split.partition.groups.len()
    );
    assert!(split.partition.groups.len() > fused.partition.groups.len());

    let fw_costly = Framework::new(costly);
    println!(
        "\nreconfig = {} cycles per group switch",
        fmt_cycles(RECONFIG_CYCLES)
    );
    println!(
        "{:>7} | {:>18} {:>18} | {:>8}",
        "frames", "fused (cyc/frame)", "split (cyc/frame)", "winner"
    );
    let mut gaps = Vec::new();
    for frames in [1u64, 2, 4, 8, 16, 64] {
        let bf = fw_costly.batch_timing(&fused, frames).expect("batch");
        let bs = fw_costly.batch_timing(&split, frames).expect("batch");
        let winner = if bs.cycles_per_frame < bf.cycles_per_frame {
            "split"
        } else {
            "fused"
        };
        gaps.push(bs.cycles_per_frame / bf.cycles_per_frame);
        println!(
            "{:>7} | {:>18.0} {:>18.0} | {:>8}",
            frames, bf.cycles_per_frame, bs.cycles_per_frame, winner
        );
    }

    // Shape assertions. At frames = 1 the reconfig tax makes the fused
    // design win decisively; batching amortizes the tax so the gap
    // shrinks monotonically — but on this workload the split design's
    // steady-state advantage is too small to ever flip the ordering:
    // under realistic reconfiguration, *full fusion dominates at every
    // batch size*, strengthening the paper's case for fusion beyond its
    // own free-reconfiguration accounting.
    let f1_fused = fw_costly.batch_timing(&fused, 1).unwrap();
    let f1_split = fw_costly.batch_timing(&split, 1).unwrap();
    assert!(
        f1_fused.cycles_per_frame < f1_split.cycles_per_frame,
        "single-frame with reconfig must favor full fusion"
    );
    assert!(
        gaps.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "batching must monotonically amortize the reconfig tax: {gaps:?}"
    );
    println!(
        "\nsplit/fused per-frame ratio falls from {:.2}x (frame batch 1) to {:.2}x (batch 64):",
        gaps.first().unwrap(),
        gaps.last().unwrap()
    );
    println!("under realistic reconfiguration cost, full fusion wins at every batch size —");
    println!("a stronger argument for the fusion architecture than the paper's own accounting.");

    // Free reconfiguration recovers the paper's accounting.
    let free_fused = fw_free.batch_timing(&fused, 1).unwrap();
    let free_split = fw_free.batch_timing(&split, 1).unwrap();
    assert!(
        free_split.cycles_per_frame <= free_fused.cycles_per_frame,
        "with free reconfig the split design is at least as fast (paper's setting)"
    );
    println!(
        "with free reconfiguration (paper's accounting): split {} vs fused {} cycles/frame",
        fmt_cycles(free_split.total_cycles),
        fmt_cycles(free_fused.total_cycles)
    );
}
