//! **Search benchmark** — wall-clock speedup of the multi-threaded plan
//! table over the serial strategy search ("returns the optimal solutions
//! within seconds", §7.1, now at any core count).
//!
//! Times `Framework::optimize` at 1 thread and at `--threads N` on the
//! two hardest zoo configurations (the VGG-E body under the paper's
//! 8-layer cap, and the Table-2 AlexNet body fully fused), reports the
//! median of `--runs` repetitions, cross-checks that both thread counts
//! reach identical latencies, and writes `BENCH_search.json` to the
//! current directory for CI to archive.
//!
//! ```text
//! exp_bench_search [--smoke] [--runs N] [--threads N]
//!   --smoke      one run per configuration (CI sanity mode)
//!   --runs N     repetitions per configuration  [default 5]
//!   --threads N  parallel worker count          [default 4]
//! ```

use winofuse_bench::{banner, fmt_cycles, BenchCase, BenchReport, LatencySamples};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::network::Network;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;
use winofuse_telemetry::RunTelemetry;

const MB: u64 = 1024 * 1024;

struct Case {
    name: &'static str,
    net: Network,
    budget: u64,
    max_group_layers: usize,
}

struct Measurement {
    median_serial_ms: f64,
    median_parallel_ms: f64,
    latency: u64,
    telemetry: RunTelemetry,
}

fn cases() -> Vec<Case> {
    let vgg = zoo::vgg_e().conv_body().expect("vgg-e has a conv body");
    let alex = zoo::alexnet().conv_body().expect("alexnet has a conv body");
    let alex_budget = alex
        .fused_transfer_bytes(0..alex.len(), DataType::Fixed16)
        .expect("alexnet fuses");
    vec![
        Case {
            name: "vgg_e",
            net: vgg,
            budget: 8 * MB,
            max_group_layers: winofuse_core::MAX_FUSION_LAYERS,
        },
        Case {
            name: "alexnet",
            net: alex,
            budget: alex_budget,
            max_group_layers: 10,
        },
    ]
}

/// Median of `runs` timed optimizations at `threads` workers. Returns
/// the median milliseconds, the design latency, and the merged telemetry
/// of every run.
fn measure(case: &Case, threads: usize, runs: usize, merged: &mut RunTelemetry) -> (f64, u64) {
    let fw = Framework::new(FpgaDevice::zc706())
        .with_max_group_layers(case.max_group_layers)
        .with_threads(threads);
    let samples = LatencySamples::new();
    let mut latency = 0;
    for _ in 0..runs {
        let (design, run) = samples.time(|| {
            fw.optimize_traced(&case.net, case.budget)
                .expect("benchmark configurations are feasible")
        });
        latency = design.timing.latency;
        merged.merge(&run);
    }
    (samples.median_ms(), latency)
}

fn run_case(case: &Case, threads: usize, runs: usize) -> Measurement {
    let mut telemetry = RunTelemetry::default();
    let (serial_ms, serial_latency) = measure(case, 1, runs, &mut telemetry);
    let (parallel_ms, parallel_latency) = measure(case, threads, runs, &mut telemetry);
    assert_eq!(
        serial_latency, parallel_latency,
        "{}: thread counts disagree on the optimum",
        case.name
    );
    println!(
        "{:<10} serial {serial_ms:9.1} ms | {threads} threads {parallel_ms:9.1} ms | \
         speedup {:.2}x | latency {} cycles",
        case.name,
        serial_ms / parallel_ms,
        fmt_cycles(serial_latency),
    );
    Measurement {
        median_serial_ms: serial_ms,
        median_parallel_ms: parallel_ms,
        latency: serial_latency,
        telemetry,
    }
}

fn main() {
    let opts = winofuse_bench::parse_bench_args("exp_bench_search", std::env::args().skip(1));
    let (runs, threads) = (opts.runs, opts.threads);

    banner(
        "BENCH search",
        &format!("strategy-search wall clock, 1 vs {threads} threads, median of {runs}"),
        None,
    );

    let mut report = BenchReport::new("search", &opts);
    for case in cases() {
        let m = run_case(&case, threads, runs);
        report.case(
            case.name,
            BenchCase::default()
                .float("median_serial_ms", m.median_serial_ms)
                .float("median_parallel_ms", m.median_parallel_ms)
                .float("speedup", m.median_serial_ms / m.median_parallel_ms)
                .int("latency_cycles", m.latency)
                .int("plans_computed", m.telemetry.counter("bnb.plans_computed"))
                .int("menu_dominated", m.telemetry.counter("bnb.menu_dominated")),
        );
    }
    let path = report.write().expect("write BENCH_search.json");
    println!("wrote {}", path.display());
}
