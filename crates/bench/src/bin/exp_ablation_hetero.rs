//! **Ablation: algorithm heterogeneity** — the design choice the paper is
//! named for. For each network and transfer budget, compare the paper's
//! heterogeneous exploration against both homogeneous policies
//! (conventional-only and Winograd-preferred) and break down where the
//! win comes from.

use winofuse_bench::{banner, fmt_cycles, write_telemetry_json, MB};
use winofuse_core::bnb::AlgoPolicy;
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::network::Network;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;
use winofuse_telemetry::Telemetry;

fn run_case(tele: &Telemetry, name: &str, net: &Network, budget: u64, max_group: usize) {
    let device = FpgaDevice::zc706();
    println!(
        "\n--- {name} (budget {:.2} MB) ---",
        budget as f64 / MB as f64
    );
    println!(
        "{:<20} {:>14} {:>9} {:>7} {:>6}",
        "policy", "latency (cyc)", "GOPS", "groups", "wino"
    );
    let mut hetero_latency = 0;
    for (label, policy) in [
        ("heterogeneous", AlgoPolicy::heterogeneous()),
        ("conventional-only", AlgoPolicy::conventional_only()),
        ("winograd-preferred", AlgoPolicy::winograd_preferred()),
    ] {
        let fw = Framework::new(device.clone())
            .with_policy(policy)
            .with_max_group_layers(max_group)
            .with_telemetry(tele.clone());
        match fw.optimize(net, budget) {
            Ok(d) => {
                if label == "heterogeneous" {
                    hetero_latency = d.timing.latency;
                } else {
                    assert!(
                        hetero_latency <= d.timing.latency,
                        "heterogeneous must dominate {label}"
                    );
                }
                println!(
                    "{:<20} {:>14} {:>9.1} {:>7} {:>6}",
                    label,
                    fmt_cycles(d.timing.latency),
                    d.timing.effective_gops,
                    d.partition.groups.len(),
                    d.partition.strategy.winograd_layer_count()
                );
            }
            Err(e) => println!("{label:<20} infeasible: {e}"),
        }
    }
}

fn main() {
    banner(
        "Ablation",
        "heterogeneous vs homogeneous algorithm policies",
        None,
    );

    // One context across every policy/budget run: the summary shows how
    // much tree the whole ablation explored.
    let tele = Telemetry::enabled();

    let vgg = zoo::vgg_e_fused_prefix();
    for budget in [2 * MB, 4 * MB, 16 * MB] {
        run_case(&tele, "VGG-E prefix", &vgg, budget, 8);
    }

    let alex = zoo::alexnet().conv_body().expect("alexnet body");
    let alex_budget = alex
        .fused_transfer_bytes(0..alex.len(), DataType::Fixed16)
        .unwrap();
    run_case(&tele, "AlexNet body", &alex, alex_budget, alex.len());
    run_case(&tele, "AlexNet body", &alex, 4 * MB, alex.len());

    // Bandwidth sensitivity: when DRAM is scarce, Winograd's pressure
    // shows and the heterogeneous optimizer shifts back toward the
    // conventional algorithm.
    println!("\n--- bandwidth sensitivity (VGG-E prefix, 2 MB budget) ---");
    println!(
        "{:<12} {:>14} {:>9} {:>6}",
        "bandwidth", "latency (cyc)", "GOPS", "wino"
    );
    let mut last_wino = usize::MAX;
    for gbps in [42u64, 21, 8, 2] {
        let dev = FpgaDevice::zc706().with_bandwidth(gbps * 100_000_000);
        let fw = Framework::new(dev);
        let d = fw.optimize(&vgg, 2 * MB).expect("feasible");
        let wino = d.partition.strategy.winograd_layer_count();
        println!(
            "{:>7.1} GB/s {:>14} {:>9.1} {:>6}",
            gbps as f64 / 10.0,
            fmt_cycles(d.timing.latency),
            d.timing.effective_gops,
            wino
        );
        assert!(
            wino <= last_wino || wino == 0 || last_wino == usize::MAX,
            "winograd use should not grow as bandwidth shrinks"
        );
        last_wino = wino.min(last_wino);
    }

    if let Ok(path) = write_telemetry_json("ablation_hetero", &tele.summary()) {
        println!("\n(search/DP telemetry written to {})", path.display());
    }
}
