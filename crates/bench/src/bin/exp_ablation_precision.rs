//! **Ablation: fixed-point precision of the Winograd transform domain** —
//! the numeric side of the tile-size choice. The paper runs everything in
//! 16-bit fixed point (§7.1); Winograd's input/output transforms amplify
//! quantization noise by constants that grow with the tile size `m`, so
//! the arithmetic savings of large tiles trade against accuracy. This
//! experiment measures the end-to-end error of the bit-faithful Q8.8
//! Winograd datapath against (a) the f32 reference and (b) the direct
//! Q8.8 datapath, per tile size — supporting the paper's moderate
//! `F(4×4, 3×3)` from the precision side as well.

use winofuse_bench::banner;
use winofuse_conv::cook_toom::WinogradTransform;
use winofuse_conv::fixed::Fix16;
use winofuse_conv::tensor::{random_tensor, Tensor};
use winofuse_conv::{direct, winograd, ConvGeometry};

fn main() {
    banner(
        "Ablation",
        "Q8.8 Winograd transform-domain error vs tile size (3x3 kernels)",
        None,
    );
    let geom = ConvGeometry::new(32, 32, 3, 1, 1).expect("valid geometry");
    let xf = random_tensor(1, 8, 32, 32, 101);
    let kf = random_tensor(8, 8, 3, 3, 102);
    let xq: Tensor<Fix16> = xf.cast();
    let kq: Tensor<Fix16> = kf.cast();

    let float_ref = direct::conv2d(&xf, &kf, geom).expect("f32 reference");
    let fixed_direct: Tensor<f32> = direct::conv2d_fix16(&xq, &kq, geom)
        .expect("fixed direct")
        .cast();
    let base_err = float_ref.max_abs_diff(&fixed_direct).unwrap();
    println!("direct Q8.8 vs f32 reference: max |err| = {base_err:.4} (quantization floor)\n");

    println!(
        "{:>3} {:>6} {:>10} {:>14} {:>16}",
        "m", "alpha", "DSP-eff", "max|err| (f32)", "extra vs direct"
    );
    let mut errs = Vec::new();
    for m in [2usize, 3, 4, 6] {
        let t = WinogradTransform::generate(m, 3).expect("transform");
        let y: Tensor<f32> = winograd::conv2d_fix16_with(&xq, &kq, geom, &t)
            .expect("fixed winograd")
            .cast();
        let err = float_ref.max_abs_diff(&y).unwrap();
        errs.push((m, err));
        println!(
            "{:>3} {:>6} {:>9.2}x {:>14.4} {:>15.2}x",
            m,
            t.alpha(),
            t.dsp_efficiency(),
            err,
            err / base_err
        );
    }
    println!("\n(all runs use the power-of-two rebalanced transforms; the naive");
    println!(" Cook-Toom scaling is ~20x worse — see winofuse_conv::cook_toom)");

    // Shape assertions: error grows monotonically with tile size, and
    // the small tiles stay near the direct quantization floor. (At Q8.8
    // even F(4,3) is already ~36x the floor over an 8-channel
    // accumulation — real Winograd designs rescale per layer or widen
    // the transform-domain format, which is exactly the knob this
    // experiment quantifies.)
    let e = |m: usize| errs.iter().find(|(mm, _)| *mm == m).unwrap().1;
    assert!(
        e(2) < e(3) && e(3) < e(4) && e(4) < e(6),
        "error must grow with m: {errs:?}"
    );
    assert!(
        e(2) < 4.0 * base_err.max(1e-3),
        "F(2,3) should sit near the floor"
    );
    println!("\nprecision degrades monotonically with m while DSP efficiency grows —");
    println!("another reason the paper settles on the moderate F(4x4,3x3).");
}
