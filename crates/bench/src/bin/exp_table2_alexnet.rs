//! **Table 2** — implementation details of AlexNet fused into one group
//! under its minimal transfer constraint (§7.3): per-layer algorithm,
//! parallelism and resources, resource totals, utilization percentages
//! and total latency.
//!
//! Paper reference rows: conv1 conventional, conv2/conv3/conv5 Winograd,
//! conv4 conventional; totals 839 BRAM / 808 DSP / ~155k FF / ~149k LUT;
//! utilization ~77/90/35/68 %; latency 1,862,148 cycles.

use winofuse_bench::{banner, fmt_cycles, write_telemetry_json};
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::engine::Algorithm;
use winofuse_model::shape::DataType;
use winofuse_model::zoo;

fn main() {
    let net = zoo::alexnet().conv_body().expect("alexnet has a conv body");
    let device = FpgaDevice::zc706();
    banner(
        "Table 2",
        "AlexNet fused into one group (minimal transfer budget)",
        Some(&net),
    );

    // §7.3's budget = input of the first layer + output of the last.
    let budget = net
        .fused_transfer_bytes(0..net.len(), DataType::Fixed16)
        .unwrap();
    println!("transfer constraint: {} KB", budget / 1024);

    // The body is 10 layers; the paper fuses them all (its 8-layer cap
    // notwithstanding) — raise the cap accordingly.
    let fw = Framework::new(device.clone()).with_max_group_layers(net.len());
    let (design, run) = fw
        .optimize_traced(&net, budget)
        .expect("fusing the whole body is feasible");
    if let Ok(path) = write_telemetry_json("table2_alexnet", &run) {
        println!("(search/DP telemetry written to {})", path.display());
    }
    assert_eq!(
        design.partition.groups.len(),
        1,
        "all layers fuse into one group"
    );

    print!("{}", fw.report(&net, &design));
    println!("latency (paper): 1,862,148 cycles");
    println!(
        "latency (ours) : {} cycles",
        fmt_cycles(design.timing.latency)
    );

    // Paper-shape assertions.
    let algos = Framework::conv_algorithms(&net, &design);
    assert_eq!(algos.len(), 5);
    assert_eq!(
        algos[0].1,
        Algorithm::Conventional,
        "conv1 (11x11 stride 4) must be conventional"
    );
    let wino = algos
        .iter()
        .filter(|(_, a)| matches!(a, Algorithm::Winograd { .. }))
        .count();
    assert!(
        (2..=4).contains(&wino),
        "a heterogeneous mix is expected (paper: 3 winograd layers), got {wino}"
    );
    let plan = &design.partition.groups[0];
    let (b, d, f, l) = plan
        .timing
        .resources
        .utilization_percent(device.resources());
    println!(
        "\nutilization ours (paper): BRAM {b:.0}% (77%), DSP {d:.0}% (90%), FF {f:.0}% (35%), LUT {l:.0}% (68%)"
    );
    assert!(d > 60.0, "DSPs should be the nearly exhausted resource");
    assert!(
        plan.timing.resources.fits_within(device.resources()),
        "the fused design must fit the device"
    );
    // Same order of magnitude as the paper's 1.86M cycles (our pipeline
    // model and theirs won't agree absolutely).
    let m_cycles = design.timing.latency as f64 / 1e6;
    assert!(
        (0.2..20.0).contains(&m_cycles),
        "latency {m_cycles:.2} M-cycles out of plausible range"
    );
}
