//! Criterion: optimizer runtime — the paper claims "our algorithm returns
//! the optimal solutions within seconds" (§7.1). The branch-and-bound +
//! DP here should comfortably clear that bar.

use criterion::{criterion_group, criterion_main, Criterion};
use winofuse_core::bnb::{AlgoPolicy, GroupPlanner};
use winofuse_core::dp;
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::zoo;

const MB: u64 = 1024 * 1024;

fn bench_group_search(c: &mut Criterion) {
    let net = zoo::vgg_e_fused_prefix();
    let dev = FpgaDevice::zc706();
    c.bench_function("bnb_plan_7layer_group", |b| {
        b.iter(|| {
            // Fresh planner each iteration: measure the search, not the memo.
            let mut planner =
                GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
            planner.plan(0..net.len()).unwrap()
        })
    });
}

fn bench_full_optimize(c: &mut Criterion) {
    let dev = FpgaDevice::zc706();
    let vgg = zoo::vgg_e_fused_prefix();
    c.bench_function("optimize_vgg_prefix_2MB", |b| {
        b.iter(|| Framework::new(dev.clone()).optimize(&vgg, 2 * MB).unwrap())
    });

    let alex = zoo::alexnet().conv_body().unwrap();
    let budget = alex
        .fused_transfer_bytes(0..alex.len(), winofuse_model::DataType::Fixed16)
        .unwrap();
    c.bench_function("optimize_alexnet_body_minT", |b| {
        b.iter(|| {
            Framework::new(dev.clone())
                .with_max_group_layers(alex.len())
                .optimize(&alex, budget)
                .unwrap()
        })
    });

    // Full VGG-E body (21 fusable layers) — the big instance.
    let full = zoo::vgg_e().conv_body().unwrap();
    c.bench_function("optimize_vgg_e_body_64MB", |b| {
        b.iter(|| Framework::new(dev.clone()).optimize(&full, 64 * MB).unwrap())
    });
}

fn bench_unit_dp(c: &mut Criterion) {
    let dev = FpgaDevice::zc706();
    let vgg = zoo::vgg_e_fused_prefix();
    c.bench_function("unit_dp_vgg_prefix_2MB", |b| {
        let mut planner = GroupPlanner::new(&vgg, &dev, AlgoPolicy::heterogeneous()).unwrap();
        // Warm the fusion[i][j] cache (the paper generates it offline).
        let _ = dp::optimize_units(&mut planner, &vgg, 2 * MB).unwrap();
        b.iter(|| dp::optimize_units(&mut planner, &vgg, 2 * MB).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_group_search, bench_full_optimize, bench_unit_dp
}
criterion_main!(benches);
