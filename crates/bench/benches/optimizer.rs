//! Criterion: optimizer runtime — the paper claims "our algorithm returns
//! the optimal solutions within seconds" (§7.1). The branch-and-bound +
//! DP here should comfortably clear that bar.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use winofuse_core::bnb::{AlgoPolicy, GroupPlanner};
use winofuse_core::dp;
use winofuse_core::framework::Framework;
use winofuse_fpga::device::FpgaDevice;
use winofuse_model::zoo;
use winofuse_telemetry::Telemetry;

const MB: u64 = 1024 * 1024;

fn bench_group_search(c: &mut Criterion) {
    let net = zoo::vgg_e_fused_prefix();
    let dev = FpgaDevice::zc706();
    c.bench_function("bnb_plan_7layer_group", |b| {
        b.iter(|| {
            // Fresh planner each iteration: measure the search, not the memo.
            let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
            planner.plan(0..net.len()).unwrap()
        })
    });
}

fn bench_full_optimize(c: &mut Criterion) {
    let dev = FpgaDevice::zc706();
    let vgg = zoo::vgg_e_fused_prefix();
    c.bench_function("optimize_vgg_prefix_2MB", |b| {
        b.iter(|| Framework::new(dev.clone()).optimize(&vgg, 2 * MB).unwrap())
    });

    let alex = zoo::alexnet().conv_body().unwrap();
    let budget = alex
        .fused_transfer_bytes(0..alex.len(), winofuse_model::DataType::Fixed16)
        .unwrap();
    c.bench_function("optimize_alexnet_body_minT", |b| {
        b.iter(|| {
            Framework::new(dev.clone())
                .with_max_group_layers(alex.len())
                .optimize(&alex, budget)
                .unwrap()
        })
    });

    // Full VGG-E body (21 fusable layers) — the big instance.
    let full = zoo::vgg_e().conv_body().unwrap();
    c.bench_function("optimize_vgg_e_body_64MB", |b| {
        b.iter(|| {
            Framework::new(dev.clone())
                .optimize(&full, 64 * MB)
                .unwrap()
        })
    });
}

fn bench_unit_dp(c: &mut Criterion) {
    let dev = FpgaDevice::zc706();
    let vgg = zoo::vgg_e_fused_prefix();
    c.bench_function("unit_dp_vgg_prefix_2MB", |b| {
        let mut planner = GroupPlanner::new(&vgg, &dev, AlgoPolicy::heterogeneous()).unwrap();
        // Warm the fusion[i][j] cache (the paper generates it offline).
        let _ = dp::optimize_units(&mut planner, &vgg, 2 * MB).unwrap();
        b.iter(|| dp::optimize_units(&mut planner, &vgg, 2 * MB).unwrap())
    });
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The search paths are permanently instrumented, so the contract is
    // that *disabled* telemetry costs nothing measurable. A cached
    // disabled handle is one null check — assert its per-op cost is
    // within noise before timing the search itself.
    let disabled = Telemetry::disabled();
    let counter = disabled.counter("bench.noop");
    const N: u64 = 10_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..N {
        black_box(&counter).incr();
    }
    let per_op_ns = t0.elapsed().as_nanos() as f64 / N as f64;
    assert!(
        per_op_ns < 10.0,
        "disabled counter incr costs {per_op_ns:.2} ns/op — not within noise"
    );
    println!("disabled counter incr: {per_op_ns:.3} ns/op");

    // Side-by-side: the same search with telemetry off (the default for
    // every hot path) and on (counters live, no sink attached).
    let net = zoo::vgg_e_fused_prefix();
    let dev = FpgaDevice::zc706();
    c.bench_function("bnb_plan_telemetry_disabled", |b| {
        b.iter(|| {
            let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
            planner.plan(0..net.len()).unwrap()
        })
    });
    c.bench_function("bnb_plan_telemetry_enabled", |b| {
        b.iter(|| {
            let mut planner = GroupPlanner::new(&net, &dev, AlgoPolicy::heterogeneous()).unwrap();
            planner.set_telemetry(Telemetry::enabled());
            planner.plan(0..net.len()).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_group_search, bench_full_optimize, bench_unit_dp, bench_telemetry_overhead
}
criterion_main!(benches);
