//! Criterion: Cook–Toom transform generation (exact rational arithmetic)
//! and filter-bank transformation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use winofuse_conv::cook_toom::WinogradTransform;
use winofuse_conv::tensor::random_tensor;
use winofuse_conv::winograd::TransformedFilters;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cook_toom_generate");
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (4, 5)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("F({m},{r})")),
            &(m, r),
            |b, &(m, r)| b.iter(|| WinogradTransform::generate(m, r).unwrap()),
        );
    }
    group.finish();
}

fn bench_filter_transform(c: &mut Criterion) {
    let t = winofuse_conv::cook_toom::f43();
    let mut group = c.benchmark_group("filter_transform_GgGt");
    for ch in [8usize, 32] {
        let k = random_tensor(ch, ch, 3, 3, ch as u64);
        group.bench_with_input(BenchmarkId::from_parameter(ch * ch), &ch, |b, _| {
            b.iter(|| TransformedFilters::new(&k, &t).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_generation, bench_filter_transform
}
criterion_main!(benches);
