//! Criterion: throughput of the three convolution algorithms on a
//! VGG-shaped layer slice (the numeric substrate itself, not the FPGA
//! model). Winograd should need ~4x fewer multiplies than direct; im2col
//! trades memory movement for GEMM regularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use winofuse_conv::cook_toom::f23;
use winofuse_conv::tensor::random_tensor;
use winofuse_conv::{direct, im2col, winograd, ConvGeometry};

fn bench_conv_algorithms(c: &mut Criterion) {
    // A slice of a VGG-like layer: 8 channels of 32x32, 8 output maps.
    let geom = ConvGeometry::new(32, 32, 3, 1, 1).unwrap();
    let x = random_tensor(1, 8, 32, 32, 1);
    let k = random_tensor(8, 8, 3, 3, 2);
    let macs = (8 * 32 * 32 * 8 * 9) as u64;

    let mut group = c.benchmark_group("conv2d_32x32x8");
    group.throughput(Throughput::Elements(macs));
    group.bench_function("direct", |b| {
        b.iter(|| direct::conv2d(&x, &k, geom).unwrap())
    });
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| im2col::conv2d(&x, &k, geom).unwrap())
    });
    group.bench_function("winograd_f43", |b| {
        b.iter(|| winograd::conv2d_f43(&x, &k, geom).unwrap())
    });
    group.bench_function("winograd_f23", |b| {
        b.iter(|| winograd::conv2d_with(&x, &k, geom, &f23()).unwrap())
    });
    group.finish();
}

fn bench_pretransformed_filters(c: &mut Criterion) {
    // Offline filter transform vs reusing a transformed bank — the reason
    // hardware ships transformed weights.
    let geom = ConvGeometry::new(16, 16, 3, 1, 1).unwrap();
    let x = random_tensor(1, 4, 16, 16, 3);
    let k = random_tensor(4, 4, 3, 3, 4);
    let t = winofuse_conv::cook_toom::f43();
    let bank = winograd::TransformedFilters::new(&k, &t).unwrap();

    let mut group = c.benchmark_group("winograd_filter_reuse");
    group.bench_function("transform_every_call", |b| {
        b.iter(|| winograd::conv2d_with(&x, &k, geom, &t).unwrap())
    });
    group.bench_function("pretransformed_bank", |b| {
        b.iter(|| winograd::conv2d_pretransformed(&x, &bank, geom, &t).unwrap())
    });
    group.finish();
}

fn bench_fixed_point(c: &mut Criterion) {
    let geom = ConvGeometry::new(16, 16, 3, 1, 1).unwrap();
    let xf = random_tensor(1, 4, 16, 16, 5);
    let kf = random_tensor(4, 4, 3, 3, 6);
    let xq = xf.cast::<winofuse_conv::fixed::Fix16>();
    let kq = kf.cast::<winofuse_conv::fixed::Fix16>();

    let mut group = c.benchmark_group("datapath");
    group.bench_function("f32_direct", |b| {
        b.iter(|| direct::conv2d(&xf, &kf, geom).unwrap())
    });
    group.bench_function("fix16_wide_accumulator", |b| {
        b.iter(|| direct::conv2d_fix16(&xq, &kq, geom).unwrap())
    });
    group.finish();

    // Scaling with channel count.
    let mut group = c.benchmark_group("direct_channel_scaling");
    for ch in [1usize, 4, 16] {
        let x = random_tensor(1, ch, 16, 16, ch as u64);
        let k = random_tensor(4, ch, 3, 3, ch as u64 + 1);
        group.bench_with_input(BenchmarkId::from_parameter(ch), &ch, |b, _| {
            b.iter(|| direct::conv2d(&x, &k, geom).unwrap())
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    // FFT convolution pays off only for big kernels; measure both regimes.
    let mut group = c.benchmark_group("fft_conv");
    for (h, k, pad) in [(16usize, 3usize, 1usize), (16, 7, 3)] {
        let geom = ConvGeometry::new(h, h, k, 1, pad).unwrap();
        let x = random_tensor(1, 2, h, h, 9);
        let kr = random_tensor(2, 2, k, k, 10);
        group.bench_function(format!("fft_{h}x{h}_k{k}"), |b| {
            b.iter(|| winofuse_conv::fft::conv2d(&x, &kr, geom).unwrap())
        });
        group.bench_function(format!("direct_{h}x{h}_k{k}"), |b| {
            b.iter(|| direct::conv2d(&x, &kr, geom).unwrap())
        });
    }
    group.finish();
}

fn bench_fixed_winograd(c: &mut Criterion) {
    let geom = ConvGeometry::new(16, 16, 3, 1, 1).unwrap();
    let x = random_tensor(1, 4, 16, 16, 11).cast::<winofuse_conv::fixed::Fix16>();
    let k = random_tensor(4, 4, 3, 3, 12).cast::<winofuse_conv::fixed::Fix16>();
    let t = winofuse_conv::cook_toom::f43();
    c.bench_function("winograd_fix16_f43", |b| {
        b.iter(|| winograd::conv2d_fix16_with(&x, &k, geom, &t).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv_algorithms, bench_pretransformed_filters, bench_fixed_point,
              bench_fft, bench_fixed_winograd
}
criterion_main!(benches);
