//! Criterion: behavioral fusion simulator throughput, and the analytic
//! pipeline model it is cross-checked against.

use criterion::{criterion_group, criterion_main, Criterion};
use winofuse_conv::tensor::random_tensor;
use winofuse_fpga::device::FpgaDevice;
use winofuse_fpga::engine::{Algorithm, EngineConfig};
use winofuse_fusion::pipeline::{group_timing, LayerConfig};
use winofuse_fusion::simulator::FusedGroupSim;
use winofuse_model::runtime::NetworkWeights;
use winofuse_model::zoo;

fn bench_simulator(c: &mut Criterion) {
    let net = zoo::small_test_net();
    let dev = FpgaDevice::zc706();
    let weights = NetworkWeights::random(&net, 1).unwrap();
    let x = random_tensor(1, 3, 32, 32, 2);
    let configs: Vec<LayerConfig> = (0..net.len())
        .map(|i| {
            LayerConfig::build(
                &net,
                i,
                EngineConfig {
                    algorithm: Algorithm::Conventional,
                    parallelism: 8,
                },
            )
            .unwrap()
        })
        .collect();

    c.bench_function("fused_sim_small_net_frame", |b| {
        b.iter(|| {
            let mut sim = FusedGroupSim::new(&net, 0, &configs, &weights, &dev).unwrap();
            sim.run(&x).unwrap()
        })
    });

    c.bench_function("analytic_group_timing", |b| {
        b.iter(|| group_timing(&configs, &dev).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
