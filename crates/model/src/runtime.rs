//! Reference execution of a network, layer by layer, with no fusion.
//!
//! This is the numerical gold standard the fusion simulator
//! (`winofuse-fusion`) is validated against, and it can run each
//! convolutional layer with any of the algorithms the paper's framework
//! chooses between — so a heterogeneous strategy can be checked for
//! functional equivalence end to end.

use winofuse_conv::ops::{self, LrnParams};
use winofuse_conv::tensor::{random_tensor, Tensor};
use winofuse_conv::{direct, im2col, winograd, ConvGeometry};

use crate::layer::LayerKind;
use crate::network::Network;
use crate::ModelError;

/// Which algorithm executes a convolutional layer in the reference runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefAlgo {
    /// Conventional sliding-window convolution (Eq. 1).
    #[default]
    Direct,
    /// im2col + GEMM lowering.
    Im2col,
    /// Winograd `F(4×4, 3×3)` (falls back to an error for non-3×3 or
    /// strided layers; the optimizer never assigns those).
    WinogradF43,
}

/// Per-layer weights for a network (synthetic, seeded).
#[derive(Debug, Clone)]
pub struct NetworkWeights {
    entries: Vec<LayerWeights>,
}

/// Weights of one layer.
#[derive(Debug, Clone)]
pub enum LayerWeights {
    /// Convolution kernels, `N×C×K×K`.
    Conv(Tensor<f32>),
    /// Fully connected weight matrix (row-major `out×in`) and bias.
    Fc {
        /// Row-major `out_features × in_features` matrix.
        weights: Vec<f32>,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// The layer has no parameters.
    None,
}

impl NetworkWeights {
    /// Generates deterministic pseudo-random weights for every
    /// parameterized layer. Values are scaled by `1/√fan_in` so activations
    /// stay in a numerically friendly range through deep networks.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures (impossible for a validated
    /// network).
    pub fn random(net: &Network, seed: u64) -> Result<Self, ModelError> {
        let shapes = net.shapes()?;
        let mut entries = Vec::with_capacity(net.len());
        for (i, layer) in net.layers().iter().enumerate() {
            let input = shapes[i];
            let w = match &layer.kind {
                LayerKind::Conv(c) => {
                    let ch_per_group = c.channels_per_group(input.channels);
                    let fan_in = (ch_per_group * c.kernel * c.kernel) as f32;
                    let scale = fan_in.sqrt().recip();
                    let mut t = random_tensor(
                        c.num_output,
                        ch_per_group,
                        c.kernel,
                        c.kernel,
                        seed.wrapping_add(i as u64 * 7919),
                    );
                    for v in t.as_mut_slice() {
                        *v *= scale;
                    }
                    LayerWeights::Conv(t)
                }
                LayerKind::Fc(fc) => {
                    let in_f = input.elements();
                    let scale = (in_f as f32).sqrt().recip();
                    let flat = random_tensor(
                        1,
                        1,
                        fc.num_output,
                        in_f,
                        seed.wrapping_add(i as u64 * 104729),
                    );
                    let weights = flat.as_slice().iter().map(|v| v * scale).collect();
                    LayerWeights::Fc {
                        weights,
                        bias: vec![0.0; fc.num_output],
                    }
                }
                _ => LayerWeights::None,
            };
            entries.push(w);
        }
        Ok(NetworkWeights { entries })
    }

    /// Weights of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn layer(&self, index: usize) -> &LayerWeights {
        &self.entries[index]
    }

    /// Number of layer entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Runs the network with the conventional algorithm everywhere, returning
/// the output of every layer (`result[i]` = output of layer `i`).
///
/// # Errors
///
/// Returns [`ModelError::Execution`] when the input tensor does not match
/// the network's input shape or a numeric kernel rejects its arguments.
pub fn forward(
    net: &Network,
    weights: &NetworkWeights,
    input: &Tensor<f32>,
) -> Result<Vec<Tensor<f32>>, ModelError> {
    forward_with(net, weights, input, |_| RefAlgo::Direct)
}

/// Runs the network choosing a convolution algorithm per layer index.
///
/// # Errors
///
/// Same conditions as [`forward`]; additionally
/// [`ModelError::Execution`] when `WinogradF43` is requested for a layer it
/// cannot implement (kernel ≠ 3×3 or stride ≠ 1).
pub fn forward_with<F: FnMut(usize) -> RefAlgo>(
    net: &Network,
    weights: &NetworkWeights,
    input: &Tensor<f32>,
    mut algo_for: F,
) -> Result<Vec<Tensor<f32>>, ModelError> {
    let in_shape = net.input_shape();
    if input.c() != in_shape.channels || input.h() != in_shape.height || input.w() != in_shape.width
    {
        return Err(ModelError::Execution(format!(
            "input tensor {}x{}x{} does not match network input {}",
            input.c(),
            input.h(),
            input.w(),
            in_shape
        )));
    }
    let mut outputs = Vec::with_capacity(net.len());
    let mut cur = input.clone();
    for (i, layer) in net.layers().iter().enumerate() {
        let next = match &layer.kind {
            LayerKind::Conv(c) => {
                let LayerWeights::Conv(kernels) = weights.layer(i) else {
                    return Err(ModelError::Execution(format!(
                        "missing conv weights for layer {i} `{}`",
                        layer.name
                    )));
                };
                let geom = ConvGeometry::rect(cur.h(), cur.w(), c.kernel, c.stride, c.pad)?;
                let algo = algo_for(i);
                let run = |x: &Tensor<f32>, k: &Tensor<f32>| -> Result<Tensor<f32>, ModelError> {
                    Ok(match algo {
                        RefAlgo::Direct => direct::conv2d(x, k, geom)?,
                        RefAlgo::Im2col => im2col::conv2d(x, k, geom)?,
                        RefAlgo::WinogradF43 => winograd::conv2d_f43(x, k, geom)?,
                    })
                };
                let mut y = if c.groups <= 1 {
                    run(&cur, kernels)?
                } else {
                    // Grouped convolution: each group's kernels see only
                    // their channel slice.
                    let cg = c.channels_per_group(cur.c());
                    let ng = c.num_output / c.groups;
                    let out_shape = layer.output_shape(crate::shape::FmShape::new(
                        cur.c(),
                        cur.h(),
                        cur.w(),
                    ))?;
                    let mut out =
                        Tensor::zeros(cur.n(), c.num_output, out_shape.height, out_shape.width);
                    for g in 0..c.groups {
                        let x = cur.slice_channels(g * cg, (g + 1) * cg);
                        let k = kernels.slice_channels_n(g * ng, (g + 1) * ng);
                        out.write_channels(g * ng, &run(&x, &k)?);
                    }
                    out
                };
                if c.relu {
                    y = ops::relu(&y);
                }
                y
            }
            LayerKind::Pool(p) => {
                let geom = ConvGeometry::rect(cur.h(), cur.w(), p.kernel, p.stride, p.pad)?;
                ops::pool(&cur, geom, p.kind)?
            }
            LayerKind::Lrn(spec) => ops::lrn(
                &cur,
                LrnParams {
                    local_size: spec.local_size,
                    alpha: spec.alpha,
                    beta: spec.beta,
                    k: spec.k,
                },
            )?,
            LayerKind::Relu => ops::relu(&cur),
            LayerKind::Fc(fc) => {
                let LayerWeights::Fc { weights: w, bias } = weights.layer(i) else {
                    return Err(ModelError::Execution(format!(
                        "missing fc weights for layer {i} `{}`",
                        layer.name
                    )));
                };
                let mut y = ops::fully_connected(&cur, w, bias, fc.num_output)?;
                if fc.relu {
                    y = ops::relu(&y);
                }
                y
            }
            LayerKind::Softmax => ops::softmax(&cur)?,
        };
        outputs.push(next.clone());
        cur = next;
    }
    Ok(outputs)
}

// Re-exported so downstream crates can build inputs without importing
// winofuse-conv directly.
pub use winofuse_conv::tensor::random_tensor as random_input;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn forward_small_net_shapes() {
        let net = zoo::small_test_net();
        let w = NetworkWeights::random(&net, 1).unwrap();
        let x = random_tensor(1, 3, 32, 32, 2);
        let outs = forward(&net, &w, &x).unwrap();
        assert_eq!(outs.len(), net.len());
        let shapes = net.shapes().unwrap();
        for (i, out) in outs.iter().enumerate() {
            let s = shapes[i + 1];
            assert_eq!((out.c(), out.h(), out.w()), (s.channels, s.height, s.width));
        }
    }

    #[test]
    fn relu_fold_makes_outputs_nonnegative() {
        let net = zoo::small_test_net();
        let w = NetworkWeights::random(&net, 3).unwrap();
        let x = random_tensor(1, 3, 32, 32, 4);
        let outs = forward(&net, &w, &x).unwrap();
        // Every conv in the small net has relu folded.
        assert!(outs[0].as_slice().iter().all(|&v| v >= 0.0));
        assert!(outs[1].as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn heterogeneous_algorithms_agree() {
        let net = zoo::small_test_net();
        let w = NetworkWeights::random(&net, 5).unwrap();
        let x = random_tensor(1, 3, 32, 32, 6);
        let a = forward(&net, &w, &x).unwrap();
        // conv1 is stride-2 (direct only); conv2/conv3 are 3x3 s1.
        let b = forward_with(&net, &w, &x, |i| match i {
            0 => RefAlgo::Im2col,
            1 => RefAlgo::WinogradF43,
            3 => RefAlgo::WinogradF43,
            _ => RefAlgo::Direct,
        })
        .unwrap();
        for (ya, yb) in a.iter().zip(&b) {
            assert!(
                ya.approx_eq(yb, 1e-2),
                "diff {}",
                ya.max_abs_diff(yb).unwrap()
            );
        }
    }

    #[test]
    fn winograd_on_strided_layer_is_an_error() {
        let net = zoo::small_test_net();
        let w = NetworkWeights::random(&net, 7).unwrap();
        let x = random_tensor(1, 3, 32, 32, 8);
        let r = forward_with(&net, &w, &x, |_| RefAlgo::WinogradF43);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let net = zoo::small_test_net();
        let w = NetworkWeights::random(&net, 9).unwrap();
        let x = random_tensor(1, 3, 16, 16, 10);
        assert!(forward(&net, &w, &x).is_err());
    }

    #[test]
    fn full_alexnet_runs_to_softmax() {
        let net = zoo::alexnet();
        let w = NetworkWeights::random(&net, 11).unwrap();
        let x = random_tensor(1, 3, 227, 227, 12);
        let outs = forward(&net, &w, &x).unwrap();
        let prob = outs.last().unwrap();
        assert_eq!(prob.c(), 1000);
        let sum: f32 = prob.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sum {sum}");
    }

    #[test]
    fn weights_are_deterministic() {
        let net = zoo::small_test_net();
        let a = NetworkWeights::random(&net, 42).unwrap();
        let b = NetworkWeights::random(&net, 42).unwrap();
        match (a.layer(0), b.layer(0)) {
            (LayerWeights::Conv(x), LayerWeights::Conv(y)) => assert_eq!(x, y),
            _ => panic!("expected conv weights"),
        }
    }
}
